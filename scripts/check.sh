#!/usr/bin/env sh
# Repo health gate: domain lint + tier-1 tests. Run from the repo root.
#
#   scripts/check.sh              lint src/repro, then the full test suite
#   scripts/check.sh --lint-only  just the linter (fast, <2 s)
#
# Both checks are the same ones CI treats as tier-1; a clean exit here
# means the tree is mergeable.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="${PWD}/src${PYTHONPATH:+:}${PYTHONPATH:-}"
export PYTHONPATH

echo "== repro.devtools.lint src/repro =="
python -m repro.devtools.lint src/repro

if [ "${1:-}" = "--lint-only" ]; then
    exit 0
fi

echo "== tier-1 pytest =="
python -m pytest -x -q
