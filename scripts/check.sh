#!/usr/bin/env sh
# Repo health gate: domain lint, the runner test modules, a 2-worker
# smoke sweep (exercises the process pool end to end), then the full
# tier-1 test suite. Run from the repo root.
#
#   scripts/check.sh              lint + runner tests + smoke sweep + suite
#   scripts/check.sh --lint-only  just the linter (fast, <2 s)
#
# Both checks are the same ones CI treats as tier-1; a clean exit here
# means the tree is mergeable.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="${PWD}/src${PYTHONPATH:+:}${PYTHONPATH:-}"
export PYTHONPATH

echo "== repro.devtools.lint src/repro =="
python -m repro.devtools.lint src/repro

if [ "${1:-}" = "--lint-only" ]; then
    exit 0
fi

echo "== runner test modules =="
python -m pytest -x -q \
    tests/test_runner_executor.py \
    tests/test_runner_cache.py \
    tests/test_model_properties.py

echo "== 2-worker smoke sweep =="
python -m repro sweep --types colla-filt --rates 60 --window 10 --workers 2

echo "== tier-1 pytest =="
python -m pytest -x -q
