#!/usr/bin/env sh
# Repo health gate: domain lint, the runner test modules, a 2-worker
# smoke sweep and a 2-worker chaos smoke (exercise the process pool and
# the fault-injection layer end to end), then the full tier-1 test
# suite. Run from the repo root.
#
#   scripts/check.sh              lint + runner tests + smoke sweep + suite
#   scripts/check.sh --lint-only  just the full REP001-REP012 rule set
#                                 (fast, well under 10 s)
#   scripts/check.sh --ci         the same gate, non-interactive: junit
#                                 XML under test-reports/, plus the
#                                 smoke bench + baseline comparison
#
# The GitHub workflow (.github/workflows/ci.yml) runs this script with
# --ci, so the hosted gate and the local gate are one recipe; a clean
# exit here means the tree is mergeable.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="${PWD}/src${PYTHONPATH:+:}${PYTHONPATH:-}"
export PYTHONPATH

MODE="${1:-}"
PYTEST_ARGS="-x -q"
JUNIT_RUNNER=""
JUNIT_TIER1=""
if [ "$MODE" = "--ci" ]; then
    mkdir -p test-reports
    PYTEST_ARGS="-x -q -p no:cacheprovider"
    JUNIT_RUNNER="--junitxml=test-reports/runner.xml"
    JUNIT_TIER1="--junitxml=test-reports/tier1.xml"
fi

echo "== repro lint src/repro (REP001-REP012) =="
python -m repro lint src/repro --baseline lint-baseline.json

if [ "$MODE" = "--lint-only" ]; then
    exit 0
fi

echo "== runner test modules =="
# shellcheck disable=SC2086
python -m pytest $PYTEST_ARGS $JUNIT_RUNNER \
    tests/test_runner_executor.py \
    tests/test_runner_cache.py \
    tests/test_model_properties.py

echo "== 2-worker smoke sweep =="
python -m repro sweep --types colla-filt --rates 60 --window 10 --workers 2

echo "== 2-worker chaos smoke =="
python -m repro chaos --smoke --workers 2 --out CHAOS_smoke.json
rm -f CHAOS_smoke.json

if [ "$MODE" = "--ci" ]; then
    echo "== smoke bench + baseline comparison =="
    python -m repro bench --smoke --out BENCH_smoke.json
    python scripts/bench_compare.py BENCH_baseline.json BENCH_smoke.json
fi

echo "== tier-1 pytest =="
# shellcheck disable=SC2086
python -m pytest $PYTEST_ARGS $JUNIT_TIER1
