#!/usr/bin/env python
"""Compare a fresh bench payload against a committed baseline.

CI's bench-smoke job runs ``python -m repro bench --smoke`` and then::

    python scripts/bench_compare.py BENCH_baseline.json BENCH_smoke.json

The comparison has two parts:

* **Schema + identity** — both files must be valid ``repro-bench/1``
  payloads of the same mode; mismatches are configuration errors and
  fail immediately.
* **Headline regression** — the fresh run's headline metric (event
  throughput) must not fall more than ``--threshold`` (default 20%)
  below the baseline's.  Faster-than-baseline is never a failure.
* **Absolute speedup floor** — the fresh headline must also stay above
  ``--floor`` events per wall-second (default: 10× the last committed
  per-request-engine headline).  The relative threshold protects the
  *current* baseline; the floor protects the aggregate-flow refactor
  itself — it fails CI the day the batched/fluid path stops being an
  order of magnitude faster than the old per-request hot loop, even if
  someone "fixes" that by committing a slower baseline.  Pass
  ``--floor 0`` to disable (e.g. when comparing scalar-engine runs).
* **Per-phase regression** — every baseline phase that reports
  ``events_per_wall_s`` must still exist in the fresh payload and must
  not fall more than ``--phase-threshold`` (default 50%) below its own
  baseline.  The aggregate headline mixes phases with very different
  event volumes, so adding a heavy phase (the tree-topology scenario)
  could otherwise mask a multiple-times slowdown of a lighter one —
  the per-phase check pins each scenario to its own history.  A phase
  present in the baseline but missing from the fresh payload is a
  failure (deleting a phase is how a regression hides); zero-event
  phases are skipped.

Wall-clock throughput varies across machines, so the committed baseline
is only a coarse floor — the threshold catches "the event loop got
multiples slower", not single-digit noise.  Exit code 0 on pass, 1 on
regression or invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs import validate_bench_payload  # noqa: E402

__all__ = [
    "LEGACY_HEADLINE_EVENTS_PER_WALL_S",
    "MIN_SPEEDUP",
    "DEFAULT_FLOOR",
    "DEFAULT_PHASE_THRESHOLD",
    "load_payload",
    "compare_payloads",
    "compare_phases",
    "main",
]

#: The committed smoke headline of the per-request (scalar) engine
#: before the batched/fluid aggregate-flow refactor, in events per
#: wall-second.  Kept as the fixed reference the speedup floor is
#: anchored to — deliberately *not* read from the evolving baseline.
LEGACY_HEADLINE_EVENTS_PER_WALL_S = 55_389.0

#: The speedup over the per-request engine the default floor enforces.
MIN_SPEEDUP = 10.0

#: Default ``--floor``: the batched/fluid bench must keep at least a
#: 10× headline over the old per-request hot loop.
DEFAULT_FLOOR = LEGACY_HEADLINE_EVENTS_PER_WALL_S * MIN_SPEEDUP

#: Default ``--phase-threshold``: the allowed fractional drop of any
#: single phase's events-per-wall-second.  Looser than the headline
#: threshold because individual phases are shorter and noisier, but
#: tight enough to catch "one scenario got multiples slower while the
#: aggregate stayed flat".
DEFAULT_PHASE_THRESHOLD = 0.50


def load_payload(path: Path) -> Tuple[Optional[Dict[str, object]], List[str]]:
    """Read and schema-validate one bench JSON file.

    Returns ``(payload, [])`` on success or ``(None, errors)`` when the
    file is missing, unparsable or fails ``repro-bench/1`` validation.
    """
    if not path.is_file():
        return None, [f"{path}: no such file"]
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return None, [f"{path}: invalid JSON: {exc}"]
    if not isinstance(payload, dict):
        return None, [f"{path}: top level must be a JSON object"]
    errors = [f"{path}: {e}" for e in validate_bench_payload(payload)]
    if errors:
        return None, errors
    return payload, []


def compare_payloads(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    threshold: float = 0.20,
    floor: Optional[float] = None,
) -> List[str]:
    """Regression check; returns a list of failure messages (empty = pass).

    *floor*, when positive, is an absolute lower bound on the fresh
    headline value in addition to the relative *threshold* against the
    baseline.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    failures = []
    base_head: Dict[str, object] = baseline["headline"]  # type: ignore[assignment]
    fresh_head: Dict[str, object] = fresh["headline"]  # type: ignore[assignment]
    if baseline["mode"] != fresh["mode"]:
        failures.append(
            f"mode mismatch: baseline is {baseline['mode']!r}, "
            f"fresh is {fresh['mode']!r}"
        )
    # Headlines are engine-dependent; comparing across engines is a
    # configuration error, not a regression.  Pre-refactor payloads
    # carry no engine field, so the check is conditional.
    if (
        "engine" in baseline
        and "engine" in fresh
        and baseline["engine"] != fresh["engine"]
    ):
        failures.append(
            f"engine mismatch: baseline ran {baseline['engine']!r}, "
            f"fresh ran {fresh['engine']!r}"
        )
    if base_head["metric"] != fresh_head["metric"]:
        failures.append(
            f"headline metric mismatch: baseline tracks "
            f"{base_head['metric']!r}, fresh tracks {fresh_head['metric']!r}"
        )
        return failures
    base_value = float(base_head["value"])  # type: ignore[arg-type]
    fresh_value = float(fresh_head["value"])  # type: ignore[arg-type]
    if base_value <= 0.0:
        failures.append(f"baseline headline value must be positive, got {base_value}")
        return failures
    relative_floor = base_value * (1.0 - threshold)
    if fresh_value < relative_floor:
        drop = 1.0 - fresh_value / base_value
        failures.append(
            f"headline regression: {base_head['metric']} fell "
            f"{drop:.1%} (baseline {base_value:.0f}, fresh {fresh_value:.0f}, "
            f"allowed floor {relative_floor:.0f} at threshold {threshold:.0%})"
        )
    if floor is not None and floor > 0.0 and fresh_value < floor:
        failures.append(
            f"speedup floor violated: {base_head['metric']} "
            f"{fresh_value:.0f} is below the absolute floor {floor:.0f} "
            f"({MIN_SPEEDUP:.0f}x the {LEGACY_HEADLINE_EVENTS_PER_WALL_S:.0f} "
            f"per-request-engine headline)"
        )
    return failures


def _phase_rates(payload: Dict[str, object]) -> Dict[str, float]:
    """Phase name → events_per_wall_s, for phases that report one."""
    rates: Dict[str, float] = {}
    for phase in payload.get("phases", []):  # type: ignore[union-attr]
        if isinstance(phase, dict) and "events_per_wall_s" in phase:
            rates[str(phase["name"])] = float(phase["events_per_wall_s"])  # type: ignore[arg-type]
    return rates


def compare_phases(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    phase_threshold: float = DEFAULT_PHASE_THRESHOLD,
) -> List[str]:
    """Per-phase regression check; returns failure messages (empty = pass).

    Each baseline phase with a positive ``events_per_wall_s`` must
    still be present in the fresh payload (a dropped phase fails — it
    is how a per-scenario regression disappears from the aggregate)
    and must stay above ``baseline × (1 - phase_threshold)``.  Phases
    the baseline does not report rates for (pre-refactor baselines,
    zero-event phases) are skipped, so old baselines keep comparing.
    """
    if not 0.0 < phase_threshold < 1.0:
        raise ValueError(
            f"phase_threshold must be in (0, 1), got {phase_threshold}"
        )
    failures: List[str] = []
    base_rates = _phase_rates(baseline)
    fresh_rates = _phase_rates(fresh)
    for name in sorted(base_rates):
        base_rate = base_rates[name]
        if base_rate <= 0.0:
            continue
        if name not in fresh_rates:
            failures.append(
                f"phase {name!r} reported events_per_wall_s in the "
                "baseline but is missing from the fresh payload"
            )
            continue
        fresh_rate = fresh_rates[name]
        allowed = base_rate * (1.0 - phase_threshold)
        if fresh_rate < allowed:
            drop = 1.0 - fresh_rate / base_rate
            failures.append(
                f"phase regression: {name} events_per_wall_s fell "
                f"{drop:.1%} (baseline {base_rate:.0f}, fresh "
                f"{fresh_rate:.0f}, allowed floor {allowed:.0f} at "
                f"phase threshold {phase_threshold:.0%})"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="fail when a bench payload regresses against a baseline"
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("fresh", type=Path, help="freshly produced bench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional headline drop (default: 0.20)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=(
            "absolute headline floor in events per wall-second "
            f"(default: {DEFAULT_FLOOR:.0f} = {MIN_SPEEDUP:.0f}x the "
            "pre-refactor per-request headline; 0 disables)"
        ),
    )
    parser.add_argument(
        "--phase-threshold",
        type=float,
        default=DEFAULT_PHASE_THRESHOLD,
        help=(
            "allowed fractional events_per_wall_s drop of any single "
            f"phase (default: {DEFAULT_PHASE_THRESHOLD})"
        ),
    )
    args = parser.parse_args(argv)

    baseline, errors = load_payload(args.baseline)
    fresh, fresh_errors = load_payload(args.fresh)
    errors += fresh_errors
    if baseline is not None and fresh is not None:
        errors += compare_payloads(
            baseline, fresh, threshold=args.threshold, floor=args.floor
        )
        errors += compare_phases(
            baseline, fresh, phase_threshold=args.phase_threshold
        )
    if errors:
        for line in errors:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    base_head = baseline["headline"]  # type: ignore[index]
    fresh_head = fresh["headline"]  # type: ignore[index]
    print(
        f"OK: {fresh_head['metric']} {fresh_head['value']:.0f} vs "  # type: ignore[index]
        f"baseline {base_head['value']:.0f} "  # type: ignore[index]
        f"(threshold {args.threshold:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
