#!/usr/bin/env python
"""Elastic infrastructure vs DOPE: auto-scaling and facility budgets.

Two extension scenarios built on the paper's observation that clouds
"excessively rely on NLB and auto-scaling resource allocation":

1. **Auto-scaling amplification** — the same DOPE flood against a
   fixed one-server footprint and against an auto-scaled rack: the
   scaler recruits every standby server for the attacker.
2. **Facility-level allocation** — three racks under one oversubscribed
   facility feed; when one rack is attacked, demand-proportional
   water-filling shows how the attacked rack's inflated demand bids
   headroom away from its honest neighbours (and how per-rack floors
   bound the damage).

Run:  python examples/elastic_infrastructure.py
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.cluster import AutoScaler
from repro.power import FacilityBudgetAllocator
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))


def autoscaling_demo() -> None:
    print("\n--- 1. auto-scaling amplification -------------------------")
    rows = []
    for autoscale in (False, True):
        sim = DataCenterSimulation(SimulationConfig(seed=5), scheme=NullScheme())
        if autoscale:
            scaler = AutoScaler(
                sim.engine, sim.rack, sim.nlb, min_active=1,
                high_util=0.6, low_util=0.2,
            )
            scaler.start()
        else:
            scaler = None
            for server in sim.rack.servers[1:]:
                server.set_powered(False)
            sim.nlb.servers[:] = sim.rack.servers[:1]
        sim.add_normal_traffic(rate_rps=15)
        sim.add_flood(mix=ATTACK, rate_rps=250, num_agents=20, start_s=60)
        sim.run(240)
        powers = sim.meter.powers()
        rows.append(
            (
                "auto-scaled" if autoscale else "fixed (1 server)",
                float(np.max(powers)),
                scaler.stats.scale_outs if scaler else 0,
                sim.firewall.stats.bans,
            )
        )
    print_table(
        ["footprint", "peak W", "scale-outs", "firewall bans"],
        rows,
        title="Same flood, two provisioning policies",
    )
    print("The scaler powered on every standby server for the attacker —")
    print("elasticity converts a 100 W nuisance into a rack-scale peak.")


def facility_demo() -> None:
    print("\n--- 2. facility budget allocation under a skewed attack ----")
    # Three 400 W racks behind a 900 W facility feed (25 % facility
    # oversubscription).  Rack 0 is under DOPE and demands nameplate;
    # racks 1-2 run honest diurnal load.
    allocator = FacilityBudgetAllocator(900.0, floor_fraction=0.2)
    scenarios = [
        ("quiet night", [180.0, 170.0, 160.0]),
        ("rack 0 attacked", [400.0, 170.0, 160.0]),
        ("rack 0+1 attacked", [400.0, 400.0, 160.0]),
    ]
    rows = []
    for label, demands in scenarios:
        allocations = allocator.allocate(demands)
        rows.append(
            (
                label,
                *(f"{a.allocated_w:.0f}/{a.demand_w:.0f}" for a in allocations),
                sum(a.allocated_w for a in allocations),
            )
        )
    print_table(
        ["scenario", "rack0 W (got/want)", "rack1", "rack2", "total W"],
        rows,
        title="Demand-proportional water-filling (900 W feed, 20% floors)",
    )
    print("An attacked rack's inflated demand bids real watts away from")
    print("honest racks; the floors bound how far they can be starved.")


def main() -> None:
    print(__doc__)
    autoscaling_demo()
    facility_demo()


if __name__ == "__main__":
    main()
