#!/usr/bin/env python
"""Deploying Anti-DOPE step by step (paper Section 5).

Walks through the framework's pieces explicitly instead of using the
pre-wired scheme object:

1. **offline profiling** — build the suspect list from the server
   power model (or from measurements, if you have them);
2. **PDF** — install suspect-aware forwarding on the load balancer;
3. **RPM/DPM** — run the differentiated power controller each slot;
4. measure what legitimate users experienced.

Run:  python examples/defend_with_anti_dope.py
"""

from repro import BudgetLevel, DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.core import DPMPlanner, PDFPolicy, RequestAwarePowerManager, SuspectList
from repro.sim.events import PRIORITY_CONTROL
from repro.workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TrafficClass,
    uniform_mix,
)

DURATION = 180.0


def main() -> None:
    print(__doc__)

    # Infrastructure with *no* managed scheme — we wire the framework
    # by hand to show each moving part.
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=11),
        scheme=NullScheme(),
    )

    # ------------------------------------------------------------------
    # Step 1 — offline profiling: which URLs can be weaponised?
    # ------------------------------------------------------------------
    suspect_list = SuspectList.from_model(
        ALL_TYPES, sim.rack.power_model, threshold_fraction=0.70
    )
    print_table(
        ["url", "full-load W", "J/request", "suspect"],
        [
            (
                url,
                suspect_list.profile(url).full_load_power_w,
                suspect_list.profile(url).energy_per_request_j,
                suspect_list.is_suspect(url),
            )
            for url in sorted(
                suspect_list.suspect_urls + suspect_list.innocent_urls
            )
        ],
        title="Step 1: offline power profile -> suspect list",
    )

    # ------------------------------------------------------------------
    # Step 2 — PDF: isolate suspect URLs on one server.
    # ------------------------------------------------------------------
    pdf = PDFPolicy(suspect_list, sim.rack.servers, suspect_pool_size=1)
    sim.nlb.policy = pdf
    print(f"Step 2: PDF installed; suspect pool = servers {pdf.suspect_server_ids}")

    # ------------------------------------------------------------------
    # Step 3 — RPM with the DPM planner, stepped every control slot.
    # ------------------------------------------------------------------
    rpm = RequestAwarePowerManager(
        suspect_pool=pdf.suspect_pool,
        innocent_pool=pdf.innocent_pool,
        budget=sim.budget,
        battery=sim.battery,
        planner=DPMPlanner(sim.rack.ladder.max_level),
        slot_s=sim.config.slot_s,
    )
    sim.engine.every(
        sim.config.slot_s,
        lambda: rpm.step(sim.now),
        priority=PRIORITY_CONTROL,
    )
    print("Step 3: RPM control loop armed (1 s slots)\n")

    # ------------------------------------------------------------------
    # Traffic: legitimate users plus a DOPE flood.
    # ------------------------------------------------------------------
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=300,
        num_agents=20,
        start_s=40,
    )
    sim.run(DURATION)

    # ------------------------------------------------------------------
    # Step 4 — what did legitimate users see?
    # ------------------------------------------------------------------
    stats = sim.latency_stats(traffic_class=TrafficClass.NORMAL, start_s=60.0)
    print(f"suspect requests forwarded : {pdf.suspect_forwarded}")
    print(f"innocent requests forwarded: {pdf.innocent_forwarded}")
    print(f"control slots / violations : {rpm.stats.slots} / {rpm.stats.violations}")
    print(f"peak power                 : {sim.meter.peak_power():.0f} W "
          f"(budget {sim.budget.supply_w:.0f} W)")
    print(f"normal users               : {stats}")


if __name__ == "__main__":
    main()
