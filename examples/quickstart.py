#!/usr/bin/env python
"""Quickstart: a power-oversubscribed data center under a DOPE flood.

Builds the paper's scaled-down testbed (four 100 W servers behind a
load balancer and a DDoS-deflate firewall, provisioned at 80 % of
nameplate), runs legitimate e-Commerce traffic, launches a DOPE attack
halfway through, and compares how plain DVFS capping and Anti-DOPE
handle it.

Run:  python examples/quickstart.py
"""

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    SimulationConfig,
)
from repro.analysis import print_table
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

DURATION = 180.0
ATTACK_START = 45.0


def run(scheme, label):
    config = SimulationConfig(budget_level=BudgetLevel.LOW, seed=42)
    sim = DataCenterSimulation(config, scheme=scheme)

    # Legitimate users browsing the e-Commerce service.
    sim.add_normal_traffic(rate_rps=40, num_users=200)

    # The DOPE flood: high-power requests, spread over 20 agents so no
    # single source ever crosses the firewall's 150 req/s threshold.
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=300,
        num_agents=20,
        start_s=ATTACK_START,
    )

    sim.run(DURATION)

    stats = sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=ATTACK_START + 15
    )
    print(f"\n=== {label} ===")
    print(f"  peak rack power : {sim.meter.peak_power():7.1f} W "
          f"(budget {sim.budget.supply_w:.0f} W)")
    print(f"  firewall bans   : {sim.firewall.stats.bans}")
    print(f"  normal users    : {stats}")
    return sim, stats


def main():
    print(__doc__)
    _, capping = run(CappingScheme(), "Capping (DVFS only) under DOPE")
    _, anti = run(AntiDopeScheme(), "Anti-DOPE under the same DOPE")

    print_table(
        ["metric", "capping", "anti-dope", "improvement"],
        [
            (
                "mean ms",
                capping.mean * 1e3,
                anti.mean * 1e3,
                f"{(1 - anti.mean / capping.mean) * 100:.0f}%",
            ),
            (
                "p90 ms",
                capping.p90 * 1e3,
                anti.p90 * 1e3,
                f"{(1 - anti.p90 / capping.p90) * 100:.0f}%",
            ),
        ],
        title="Normal-user latency during the attack",
    )
    print(
        "The flood never trips the firewall, yet wrecks the capped\n"
        "cluster; Anti-DOPE isolates it on the suspect pool instead."
    )


if __name__ == "__main__":
    main()
