#!/usr/bin/env python
"""Map the DOPE attack region of a data center (paper Fig. 11).

Given an infrastructure description, this sweeps the (request type ×
traffic rate) plane and reports which attack configurations violate the
power budget without triggering the perimeter defence — the region a
DOPE adversary operates in.  Use it the way a defender would: to learn
which of your endpoints are weaponisable and at what rates, before an
attacker profiles them for you.

Run:  python examples/characterize_dope_region.py [--budget medium]
"""

import argparse

from repro.analysis import DopeRegionAnalyzer, print_table
from repro.power import BudgetLevel
from repro.sim import SimulationConfig
from repro.workloads import ALL_TYPES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget",
        choices=[level.name.lower() for level in BudgetLevel],
        default="medium",
        help="provisioning scenario to probe",
    )
    parser.add_argument(
        "--agents", type=int, default=20, help="attacker agent count"
    )
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[50.0, 100.0, 200.0, 400.0],
        help="aggregate attack rates to sweep (req/s)",
    )
    args = parser.parse_args()

    budget = BudgetLevel[args.budget.upper()]
    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=budget, seed=0),
        window_s=50.0,
        num_agents=args.agents,
    )
    print(f"Sweeping {len(ALL_TYPES)} endpoint types x {len(args.rates)} rates "
          f"at {budget.value} with {args.agents} agents...\n")
    result = analyzer.sweep(ALL_TYPES, args.rates)

    print_table(
        ["type"] + [f"{int(r)} rps" for r in args.rates],
        [
            (t.name, *(result.zone_of(t.name, r) for r in args.rates))
            for t in ALL_TYPES
        ],
        title=f"DOPE region map ({budget.value}, {args.agents} agents)",
    )

    dope = result.dope_cells()
    if dope:
        print("Weaponisable endpoints (budget violated, firewall blind):")
        for t in ALL_TYPES:
            onset = result.dope_onset_rate(t.name)
            if onset is not None:
                print(f"  {t.name:12s} enters the DOPE region at {onset:.0f} req/s")
        print(
            "\nMitigations: profile these URLs into a suspect list and\n"
            "isolate them with PDF (see defend_with_anti_dope.py)."
        )
    else:
        print("No DOPE region at this budget — the supply absorbs every probe.")


if __name__ == "__main__":
    main()
