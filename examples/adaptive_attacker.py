#!/usr/bin/env python
"""The adaptive DOPE attacker converging on its sweet spot (Fig. 12).

Launches the probe-and-adjust attacker from the paper's Figure 12
against a firewalled, power-limited cluster and prints the adjustment
trace: the aggregate rate ramps while the attack is undetected and
ineffective, and holds once the victim's power budget is being violated
without a single agent crossing the per-source detection threshold.

The attacker's "effect" feedback here is victim-side response-time
probing: it keeps a trickle of its own requests and watches their
latency inflate when the victim starts throttling.

Run:  python examples/adaptive_attacker.py
"""

from repro import BudgetLevel, CappingScheme, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import TrafficClass

DURATION = 500.0
ADJUST_EVERY = 25.0


def main() -> None:
    print(__doc__)
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=1),
        scheme=CappingScheme(),
    )
    sim.add_normal_traffic(rate_rps=30)

    # Attacker-side effect signal: compare the latency of its own
    # recent requests against the pre-attack baseline it measured.
    collector = sim.collector

    def attack_latency_inflated() -> bool:
        now = sim.now
        recent = collector.response_times(
            traffic_class=TrafficClass.ATTACK, start_s=now - ADJUST_EVERY
        )
        early = collector.response_times(
            traffic_class=TrafficClass.ATTACK, end_s=60.0
        )
        if len(recent) < 20 or len(early) < 20:
            return False
        return float(recent.mean()) > 2.0 * float(early.mean())

    attacker = sim.add_dope_attacker(
        initial_rate_rps=40.0,
        rate_step_rps=60.0,
        max_rate_rps=1000.0,
        num_agents=40,
        adjust_interval_s=ADJUST_EVERY,
        effect_signal=attack_latency_inflated,
    )
    sim.run(DURATION)

    print_table(
        ["t (s)", "aggregate rps", "per-agent rps", "detected", "effective", "state"],
        [
            (
                a.time_s,
                a.rate_rps,
                a.rate_rps / a.num_agents,
                a.detected,
                a.effective,
                a.state.value,
            )
            for a in attacker.stats.adjustments
        ],
        title="DOPE probe-and-adjust trace",
    )

    print(f"converged           : {attacker.stats.converged}")
    print(f"final aggregate rate: {attacker.stats.final_rate:.0f} req/s")
    print(f"per-agent rate      : {attacker.per_agent_rate:.1f} req/s "
          f"(firewall threshold {sim.firewall.threshold_rps:.0f})")
    print(f"firewall bans       : {sim.firewall.stats.bans}")
    print(f"peak power          : {sim.meter.peak_power():.0f} W "
          f"(budget {sim.budget.supply_w:.0f} W)")
    victim = sim.latency_stats(traffic_class=TrafficClass.NORMAL, start_s=300.0)
    print(f"victim normal users : {victim}")


if __name__ == "__main__":
    main()
