#!/usr/bin/env python
"""Trace-driven evaluation with the Alibaba container trace.

Generates (or loads) an Alibaba-2018-style cluster trace, drives the
legitimate population with its diurnal load curve, and runs the full
scheme comparison of the paper's Section 6 over a multi-hour window
compressed into simulation time.

To use the *real* trace, download ``machine_usage.csv`` from
https://github.com/alibaba/clusterdata (v2018) and pass its path:

    python examples/trace_replay.py --trace /path/to/machine_usage.csv
"""

import argparse

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis import print_table
from repro.trace import SyntheticAlibabaTrace, load_machine_usage
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

DURATION = 300.0
ATTACK_START = 60.0


def get_trace(path):
    if path:
        print(f"Loading real Alibaba trace from {path} ...")
        return load_machine_usage(path, interval_s=30.0, max_machines=128)
    print("Generating synthetic Alibaba-2018-like trace "
          "(pass --trace to use the real one)...")
    return SyntheticAlibabaTrace().generate(
        num_machines=64, duration_s=12 * 3600, interval_s=30.0, seed=2024
    )


def run(scheme_factory, trace, budget):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=budget, seed=5), scheme=scheme_factory()
    )
    sim.add_normal_traffic(
        rate_rps=25, trace=trace, trace_peak_rate_rps=60, num_users=300
    )
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=300,
        num_agents=20,
        start_s=ATTACK_START,
    )
    sim.run(DURATION)
    stats = sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=ATTACK_START + 30
    )
    avail = sim.availability_report(
        sla_s=0.5, traffic_class=TrafficClass.NORMAL, start_s=ATTACK_START + 30
    )
    return stats, avail, sim


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None, help="path to machine_usage.csv")
    parser.add_argument(
        "--budget",
        choices=[level.name.lower() for level in BudgetLevel],
        default="low",
    )
    args = parser.parse_args()

    trace = get_trace(args.trace)
    print(f"Trace: {trace.summary()}\n")
    budget = BudgetLevel[args.budget.upper()]

    rows = []
    for name, factory in (
        ("capping", CappingScheme),
        ("shaving", ShavingScheme),
        ("token", TokenScheme),
        ("anti-dope", AntiDopeScheme),
    ):
        print(f"running {name} @ {budget.value} ...")
        stats, avail, sim = run(factory, trace, budget)
        rows.append(
            (
                name,
                stats.mean * 1e3,
                stats.p90 * 1e3,
                stats.p95 * 1e3,
                avail.availability,
                sim.meter.peak_power(),
            )
        )
    print_table(
        ["scheme", "mean ms", "p90 ms", "p95 ms", "availability", "peak W"],
        rows,
        title=f"Trace-driven scheme comparison under DOPE ({budget.value})",
    )


if __name__ == "__main__":
    main()
