"""Extension — DOPE as a cooling attack.

DOPE "targets unconventional layers of resources (e.g., energy, power,
and cooling)".  With the RC thermal model attached, a sustained
high-power flood walks die temperatures into the emergency-throttle
band on an unmanaged rack, while Anti-DOPE's isolation confines the
heat to the suspect pool.  The cooling tax (CRAC power at COP 3) is
reported alongside.
"""

import numpy as np

from repro import AntiDopeScheme, DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.cluster import ServerThermalModel, ThermalMonitor, cooling_power_w
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, uniform_mix

DURATION = 300.0


def run(scheme_factory):
    sim = DataCenterSimulation(
        SimulationConfig(seed=6, use_firewall=False), scheme=scheme_factory()
    )
    monitor = ThermalMonitor(
        sim.engine,
        sim.rack,
        t_trip_c=66.0,
        t_resume_c=58.0,
        interval_s=1.0,
        model_factory=lambda: ServerThermalModel(
            r_th_c_per_w=0.45, tau_s=60.0, t_inlet_c=25.0
        ),
    )
    monitor.start()
    sim.add_normal_traffic(rate_rps=30)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=300,
        num_agents=20,
        start_s=30,
    )
    sim.run(DURATION)
    return sim, monitor


def test_ext_thermal(benchmark):
    sims = benchmark.pedantic(
        lambda: {"unmanaged": run(NullScheme), "anti-dope": run(AntiDopeScheme)},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, (sim, monitor) in sims.items():
        temps = np.array(
            [s.temperatures_c for s in monitor.stats.samples[60:]]
        )
        mean_it_power = sim.meter.mean_power()
        rows.append(
            (
                name,
                float(temps.max()),
                float(temps.mean()),
                monitor.stats.emergencies,
                cooling_power_w(mean_it_power),
            )
        )
    print_table(
        ["arm", "peak die C", "mean die C", "emergencies", "cooling W (COP 3)"],
        rows,
        title="Extension: thermal consequences of DOPE",
    )

    unmanaged_sim, unmanaged_mon = sims["unmanaged"]
    anti_sim, anti_mon = sims["anti-dope"]
    # The unmanaged rack hits emergency thermal throttling...
    assert unmanaged_mon.stats.emergencies >= 1
    # ...on servers the flood fully loaded (steady state 25 + 100·0.45 = 70 C).
    assert unmanaged_mon.max_temperature() > 60.0
    # Anti-DOPE never trips an innocent-pool server.
    innocent_ids = set(
        s.server_id for s in anti_sim.scheme.pdf.innocent_pool
    )
    tripped = set(anti_mon.stats.emergency_server_ids)
    assert not (tripped & innocent_ids)
    # And the cooling tax tracks the IT power saved by isolation.
    assert cooling_power_w(anti_sim.meter.mean_power()) < cooling_power_w(
        unmanaged_sim.meter.mean_power()
    )
