"""Fig. 19 — energy consumption per scheme and provisioning level.

Total consumed energy normalised to the supplied utility energy, with
the deferred battery recharge included (a peak ridden on stored energy
still has to be bought back, with conversion loss).  Paper shapes:

* in the baseline (Normal-PB) case all schemes consume the same energy;
* under attack, Capping consumes least — it blindly slows everything
  down (at the service-quality cost of Figs 16/17);
* Anti-DOPE uses less energy than Shaving thanks to its lower
  dependency on the battery.
"""

from repro import BudgetLevel
from repro.analysis import print_table
from repro.metrics import EnergyReport, normalized_energy

from _support import BUDGETS, SCHEMES, run_attack_scenario, scheme_budget_matrix


def report_for(sim):
    battery = sim.battery
    return EnergyReport(
        duration_s=sim.now,
        load_energy_j=sim.rack.total_energy_joules(),
        battery_delivered_j=battery.delivered_j if battery else 0.0,
        battery_recharge_grid_j=battery.absorbed_grid_j if battery else 0.0,
        battery_efficiency=battery.efficiency if battery else 0.9,
    )


def test_fig19_energy(benchmark):
    def build():
        matrix = scheme_budget_matrix()
        # Fig 19's baseline: no attack, fully provisioned — every scheme
        # does identical work there.
        baseline = {
            s: run_attack_scenario(SCHEMES[s], BudgetLevel.NORMAL, attack=False)
            for s in SCHEMES
        }
        return matrix, baseline

    matrix, baseline = benchmark.pedantic(build, rounds=1, iterations=1)

    def normalized(sim):
        rep = report_for(sim)
        return rep.committed_utility_energy_j / (
            sim.budget.supply_w * rep.duration_s
        )

    norm = {
        (s, b): normalized(matrix[s][b]) for s in SCHEMES for b in BUDGETS
    }
    base_norm = {s: normalized(baseline[s]) for s in SCHEMES}
    print_table(
        ["scheme", "no attack"] + [b.value for b in BUDGETS],
        [(s, base_norm[s], *(norm[(s, b)] for b in BUDGETS)) for s in SCHEMES],
        title="Fig 19: committed utility energy / supplied energy",
    )

    # Baseline case: all schemes consume (essentially) the same energy.
    base = list(base_norm.values())
    assert max(base) - min(base) < 0.05 * min(base)
    for b in (BudgetLevel.MEDIUM, BudgetLevel.LOW):
        # Capping saves energy relative to Shaving: blind V/F reduction
        # slows everything down and the battery debt never accrues.
        assert norm[("capping", b)] < norm[("shaving", b)]
        # Anti-DOPE uses less energy than Shaving (the paper's explicit
        # claim: "less dependency on batteries").  In our model it also
        # undercuts Capping because the regulated suspect queue sheds
        # flood work outright — see EXPERIMENTS.md.
        assert norm[("anti-dope", b)] < norm[("shaving", b)]
        # Shaving is the most expensive arm once the deferred recharge
        # is priced in.
        assert norm[("shaving", b)] == max(norm[(s, b)] for s in SCHEMES)
