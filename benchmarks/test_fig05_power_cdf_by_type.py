"""Fig. 5 — power caused by different traffic types at rate 100.

(a) CDF of power for each traffic type individually (normalised to
nameplate): abnormal (heavy) traffic draws higher and more stable
power than normal users, Colla-Filt's curve is sub-vertical and
right-most ("it has expended the potential maximum power resource
across all servers");
(b) average power per request: K-means highest, volume floods lowest.

The paper probes at 100 req/s, which saturates its (slower) testbed;
this bench uses the rate that saturates *our* modelled servers the same
way — the per-request service demands differ, the regime is identical.
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import EmpiricalCDF, print_table
from repro.workloads import ALL_TYPES, VICTIM_TYPES, VOLUME_DOS

RATE = 250.0
WINDOW_S = 120.0
NAMEPLATE = 400.0


def measure(mix, label):
    sim = DataCenterSimulation(
        SimulationConfig(seed=5, use_firewall=False), scheme=NullScheme()
    )
    if label == "normal":
        sim.add_normal_traffic(rate_rps=RATE)
    else:
        sim.add_flood(mix=mix, rate_rps=RATE, num_agents=20, label=label)
    sim.run(WINDOW_S)
    powers = sim.meter.powers()[30:]
    accepted = sim.collector.filtered(completed_only=True, start_s=30.0)
    mean_dynamic = float(np.mean(powers)) - sim.rack.idle_floor()
    rate_served = len(accepted) / (WINDOW_S - 30.0)
    energy_per_req = mean_dynamic / rate_served if rate_served else float("nan")
    return powers, energy_per_req


def test_fig05_power_cdf_by_type(benchmark):
    def sweep():
        out = {}
        for t in ALL_TYPES:
            out[t.name] = measure(t, t.name)
        out["normal"] = measure(None, "normal")
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # --- Fig 5a: per-type power CDF -----------------------------------
    rows_a = []
    for name in [t.name for t in ALL_TYPES] + ["normal"]:
        cdf = EmpiricalCDF(results[name][0]).normalized(NAMEPLATE)
        rows_a.append((name, cdf.quantile(0.1), cdf.median(), cdf.quantile(0.9), cdf.spread()))
    print_table(
        ["traffic", "p10", "p50", "p90", "spread"],
        rows_a,
        title="Fig 5a: normalized power CDF by traffic type @ saturating rate (paper: 100 rps)",
    )

    # --- Fig 5b: average power per request -----------------------------
    rows_b = [(name, results[name][1]) for name in [t.name for t in ALL_TYPES]]
    print_table(
        ["type", "avg power per request (W/rps)"],
        rows_b,
        title="Fig 5b: average per-request power @ saturating rate (paper: 100 rps)",
    )

    medians = {r[0]: r[2] for r in rows_a}
    spreads = {r[0]: r[4] for r in rows_a}
    # Abnormal heavy traffic draws more power than the normal mix...
    for heavy in ("colla-filt", "k-means", "word-count"):
        assert medians[heavy] > medians["normal"]
    # ...and Colla-Filt's CDF is right-most among the EC endpoints and tight.
    assert medians["colla-filt"] == max(medians[t.name] for t in VICTIM_TYPES)
    assert spreads["colla-filt"] < 0.1
    # Fig 5b: K-means most power per request, volume flood least.
    per_req = dict(rows_b)
    assert per_req["k-means"] == max(per_req.values())
    assert per_req[VOLUME_DOS.name] == min(per_req.values())
