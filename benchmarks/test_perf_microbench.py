"""Performance micro-benchmarks on the simulator's hot paths.

Unlike the figure benches (one-shot scenario reproductions), these are
true pytest-benchmark timings with many rounds, tracking regressions in
the code the event loop spends its time in: event scheduling/dispatch,
the server submit→finish cycle, power-model evaluation and mix
sampling.  A trace-driven run executes each of these millions of times.
"""

import numpy as np

from repro.cluster import Rack, ServerPowerModel
from repro.network import NetworkLoadBalancer, Request
from repro.sim import EventEngine
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass, alios_mix


def test_perf_engine_event_throughput(benchmark):
    """Schedule + dispatch cost per event (heap push/pop + callback)."""

    def run_10k_events():
        engine = EventEngine()
        for i in range(10_000):
            engine.schedule(i * 1e-4, lambda: None)
        engine.run()
        return engine.dispatched

    dispatched = benchmark(run_10k_events)
    assert dispatched == 10_000


def test_perf_server_request_cycle(benchmark):
    """Full submit → serve → complete cycle including energy accrual."""

    def serve_1k_requests():
        engine = EventEngine()
        rack = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
        nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
        t = 0.0
        for i in range(1_000):
            t += 0.001
            req = Request(TEXT_CONT, i % 50, TrafficClass.NORMAL, t)
            engine.schedule_at(t, lambda r=req: nlb.dispatch(r))
        engine.run()
        return nlb.forwarded

    forwarded = benchmark(serve_1k_requests)
    assert forwarded == 1_000


def test_perf_power_model_evaluation(benchmark):
    """The power query every control slot and meter sample issues."""
    model = ServerPowerModel()
    active = [COLLA_FILT] * 5 + [TEXT_CONT] * 3

    result = benchmark(lambda: model.power(active, 0.875))
    assert result > model.idle_power(0.875)


def test_perf_mix_sampling(benchmark):
    """Vectorised request-type sampling (the arrival hot path)."""
    mix = alios_mix()
    rng = np.random.default_rng(0)

    samples = benchmark(lambda: mix.sample_many(rng, 1_000))
    assert len(samples) == 1_000


def test_perf_dvfs_transition(benchmark):
    """Level change with in-flight work rescaling (8 busy workers)."""

    def transition():
        engine = EventEngine()
        rack = Rack(engine, num_servers=1, rng=np.random.default_rng(0))
        server = rack.servers[0]
        for i in range(8):
            server.submit(Request(COLLA_FILT, i, TrafficClass.NORMAL, 0.0))
        server.set_level(0)
        server.set_level(12)
        return server.busy_workers

    busy = benchmark(transition)
    assert busy == 8
