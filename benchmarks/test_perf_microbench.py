"""Performance micro-benchmarks on the simulator's hot paths.

Unlike the figure benches (one-shot scenario reproductions), these are
true pytest-benchmark timings with many rounds, tracking regressions in
the code the event loop spends its time in: event scheduling/dispatch,
the server submit→finish cycle, power-model evaluation and mix
sampling.  A trace-driven run executes each of these millions of times.
"""

import os
import time

import numpy as np
import pytest

from repro.cluster import Rack, ServerPowerModel
from repro.network import NetworkLoadBalancer, Request
from repro.sim import EventEngine
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass, alios_mix

from _support import REGION_RATES, REGION_TYPES, fig11_analyzer


def test_perf_engine_event_throughput(benchmark):
    """Schedule + dispatch cost per event (heap push/pop + callback)."""

    def run_10k_events():
        engine = EventEngine()
        for i in range(10_000):
            engine.schedule(i * 1e-4, lambda: None)
        engine.run()
        return engine.dispatched

    dispatched = benchmark(run_10k_events)
    assert dispatched == 10_000


def test_perf_server_request_cycle(benchmark):
    """Full submit → serve → complete cycle including energy accrual."""

    def serve_1k_requests():
        engine = EventEngine()
        rack = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
        nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
        t = 0.0
        for i in range(1_000):
            t += 0.001
            req = Request(TEXT_CONT, i % 50, TrafficClass.NORMAL, t)
            engine.schedule_at(t, lambda r=req: nlb.dispatch(r))
        engine.run()
        return nlb.forwarded

    forwarded = benchmark(serve_1k_requests)
    assert forwarded == 1_000


def test_perf_power_model_evaluation(benchmark):
    """The power query every control slot and meter sample issues."""
    model = ServerPowerModel()
    active = [COLLA_FILT] * 5 + [TEXT_CONT] * 3

    result = benchmark(lambda: model.power(active, 0.875))
    assert result > model.idle_power(0.875)


def test_perf_mix_sampling(benchmark):
    """Vectorised request-type sampling (the arrival hot path)."""
    mix = alios_mix()
    rng = np.random.default_rng(0)

    samples = benchmark(lambda: mix.sample_many(rng, 1_000))
    assert len(samples) == 1_000


def _timed_region_sweep(workers):
    """One full Fig 11 region sweep; returns (seconds, result rows)."""
    analyzer = fig11_analyzer(seed=5)
    started = time.perf_counter()
    result = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=workers)
    return time.perf_counter() - started, result.as_rows()


# Shared between the equivalence and speedup tests below so the 20-cell
# grid is swept once per mode, not once per test.
_SWEEP_MEMO = {}


def _region_sweep(workers):
    if workers not in _SWEEP_MEMO:
        _SWEEP_MEMO[workers] = _timed_region_sweep(workers)
    return _SWEEP_MEMO[workers]


def test_perf_parallel_region_sweep_byte_identical():
    """4-worker Fig 11 sweep merges to byte-identical serial output."""
    _, serial_rows = _region_sweep(1)
    _, parallel_rows = _region_sweep(4)
    assert repr(parallel_rows) == repr(serial_rows)


def test_perf_parallel_region_sweep_speedup():
    """Acceptance: 4 workers ≥ 2× faster than serial on the Fig 11 grid.

    The bound is hardware-conditional: process parallelism cannot beat
    serial execution without cores to run on, so the assertion needs at
    least 4 usable CPUs (CI containers pinned to 1 core skip it; the
    byte-identity guarantee above is asserted regardless).
    """
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    if cpus < 4:
        pytest.skip(f"needs >=4 usable CPUs for a 2x bound, have {cpus}")
    serial_s, _ = _region_sweep(1)
    parallel_s, _ = _region_sweep(4)
    speedup = serial_s / parallel_s
    print(
        f"\nFig 11 region grid ({len(REGION_TYPES) * len(REGION_RATES)} cells): "
        f"serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s, {speedup:.2f}x"
    )
    assert speedup >= 2.0


def test_perf_dvfs_transition(benchmark):
    """Level change with in-flight work rescaling (8 busy workers)."""

    def transition():
        engine = EventEngine()
        rack = Rack(engine, num_servers=1, rng=np.random.default_rng(0))
        server = rack.servers[0]
        for i in range(8):
            server.submit(Request(COLLA_FILT, i, TrafficClass.NORMAL, 0.0))
        server.set_level(0)
        server.set_level(12)
        return server.busy_workers

    busy = benchmark(transition)
    assert busy == 8
