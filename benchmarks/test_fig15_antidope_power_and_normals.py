"""Fig. 15 — Anti-DOPE allocates power with slight degradation.

(a) Power time series: the original EC application runs at low power
(the paper's red line); a DOPE flood sharply raises the unmanaged
rack's power past the budget; with Anti-DOPE the total demand stays
within the supply.
(b) Normal users' response-time profile (min / mean / p90 / p95 / p99 /
max) under Anti-DOPE with the attack, against the good-user Normal-PB
baseline: mean and the 90th/95th percentiles are only slightly worse.
"""

import numpy as np

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    DataCenterSimulation,
    NullScheme,
    SimulationConfig,
)
from repro.analysis import print_table
from repro.workloads import TrafficClass

from _support import ATTACK_MIX

DURATION = 240.0
ATTACK_START = 60.0


def run(scheme_factory, attack, budget=BudgetLevel.LOW):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=budget, seed=9), scheme=scheme_factory()
    )
    sim.add_normal_traffic(rate_rps=40)
    if attack:
        sim.add_flood(
            mix=ATTACK_MIX, rate_rps=300, num_agents=20, start_s=ATTACK_START
        )
    sim.run(DURATION)
    return sim


def test_fig15_antidope_power_and_normals(benchmark):
    def scenario():
        return {
            "baseline": run(NullScheme, attack=False, budget=BudgetLevel.NORMAL),
            "unmanaged": run(NullScheme, attack=True),
            "anti-dope": run(AntiDopeScheme, attack=True),
        }

    sims = benchmark.pedantic(scenario, rounds=1, iterations=1)

    # --- Fig 15a: power phases ----------------------------------------
    rows = []
    for name, sim in sims.items():
        powers = sim.meter.powers()
        times = sim.meter.times()
        pre = powers[(times > 10) & (times < ATTACK_START)]
        post = powers[times > ATTACK_START + 30]
        rows.append(
            (
                name,
                float(np.mean(pre)),
                float(np.mean(post)) if len(post) else float("nan"),
                float(np.max(powers)),
                sims["anti-dope"].budget.supply_w,
            )
        )
    print_table(
        ["run", "pre-attack W", "attack W", "peak W", "Low-PB budget W"],
        rows,
        title="Fig 15a: rack power before/during DOPE",
    )

    # --- Fig 15b: normal users' response-time profile -------------------
    profile_rows = []
    stats = {}
    for name in ("baseline", "anti-dope"):
        s = sims[name].latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=ATTACK_START + 30
        )
        stats[name] = s
        profile_rows.append(
            (
                name,
                s.minimum * 1e3,
                s.mean * 1e3,
                s.p90 * 1e3,
                s.p95 * 1e3,
                s.p99 * 1e3,
                s.maximum * 1e3,
            )
        )
    print_table(
        ["run", "min ms", "mean ms", "p90 ms", "p95 ms", "p99 ms", "max ms"],
        profile_rows,
        title="Fig 15b: normal-user service-time profile",
    )

    unmanaged, anti = sims["unmanaged"], sims["anti-dope"]
    budget = anti.budget.supply_w
    # (a) the attack drives the unmanaged rack past the budget...
    assert unmanaged.meter.peak_power() > budget
    # ...the original application ran far below it...
    base_powers = sims["baseline"].meter.powers()
    assert float(np.mean(base_powers)) < 0.6 * budget
    # ...and Anti-DOPE keeps the demand within the supply.
    anti_powers = anti.meter.powers()
    assert (anti_powers > budget).mean() < 0.05
    # (b) mean / p90 / p95 only slightly worse than the good-user baseline.
    assert stats["anti-dope"].mean < 2.0 * stats["baseline"].mean
    assert stats["anti-dope"].p90 < 2.0 * stats["baseline"].p90
    assert stats["anti-dope"].p95 < 2.5 * stats["baseline"].p95
