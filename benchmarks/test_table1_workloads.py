"""Table 1 — the evaluated workload catalog.

Regenerates the paper's workload table, extended with the measured
model profile of each type (full-load power, energy per request,
service demand) that every later figure builds on.
"""

from repro.analysis import print_table
from repro.cluster import ServerPowerModel
from repro.workloads import ALL_TYPES, alios_mix


def test_table1_workload_catalog(benchmark):
    model = ServerPowerModel()

    def build_rows():
        rows = []
        for t in ALL_TYPES:
            rows.append(
                (
                    t.name,
                    t.url,
                    t.base_service_s * 1e3,
                    t.cpu_boundness,
                    t.power_intensity,
                    model.full_load_power(t, 1.0),
                    model.energy_per_request(t, 1.0),
                )
            )
        return rows

    rows = benchmark(build_rows)
    print_table(
        [
            "type",
            "url",
            "service_ms",
            "cpu_bound",
            "intensity",
            "full_load_W",
            "J_per_req",
        ],
        rows,
        title="Table 1: evaluated workloads (model profile)",
    )
    mix = alios_mix()
    print_table(
        ["type", "weight"],
        [(t.name, w) for t, w in zip(mix.types, mix.weights)],
        title="AliOS normal-user request mix",
    )

    by_name = {r[0]: r for r in rows}
    # Shape: Colla-Filt highest full-load power; K-means highest energy.
    assert by_name["colla-filt"][5] == max(r[5] for r in rows)
    assert by_name["k-means"][6] == max(r[6] for r in rows)
    assert by_name["volume-dos"][6] == min(r[6] for r in rows)
