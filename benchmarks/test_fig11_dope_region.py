"""Fig. 11 — the DOPE attack region.

Sweeps the (request type × traffic rate) plane and classifies every
cell into benign / dope / detected / filtered zones.  The DOPE region
is where the power budget is violated while the firewall sees nothing:
its request rate "can be close to the normal while far smaller than
the DoS-detecting network capacity".
"""

from repro.analysis import print_table

from _support import (
    REGION_RATES as RATES,
    REGION_TYPES as TYPES,
    bench_cache,
    bench_workers,
    fig11_analyzer,
)


def test_fig11_dope_region(benchmark):
    # The sweep runs through the experiment runner: REPRO_BENCH_WORKERS
    # fans cells out across processes and REPRO_BENCH_CACHE reuses
    # stored cells — the merged result is identical in every mode.
    analyzer = fig11_analyzer(seed=5)
    result = benchmark.pedantic(
        lambda: analyzer.sweep(
            TYPES, RATES, workers=bench_workers(), cache=bench_cache()
        ),
        rounds=1,
        iterations=1,
    )

    grid_rows = []
    for t in TYPES:
        grid_rows.append(
            (t.name, *(result.zone_of(t.name, r) for r in RATES))
        )
    print_table(
        ["type"] + [f"{int(r)}rps" for r in RATES],
        grid_rows,
        title="Fig 11: DOPE attack region (Medium-PB, 20 agents)",
    )
    print_table(
        ["type", "rate", "agents", "peak W", "budget W", "zone"],
        result.as_rows(),
        title="Fig 11 (detail): swept cells",
    )

    # Shape: a non-empty DOPE region exists...
    assert result.dope_cells()
    # ...entered by the heavy analytics endpoints at moderate rates...
    for heavy in ("colla-filt", "k-means"):
        onset = result.dope_onset_rate(heavy)
        assert onset is not None and onset <= 300.0
    # ...while light text needs far more traffic (or never gets there)
    text_onset = result.dope_onset_rate("text-cont")
    assert text_onset is None or text_onset > 300.0
    # ...and volume floods never violate the budget undetected.
    assert result.dope_onset_rate("volume-dos") is None
    # Low rates are benign for everything.
    for t in TYPES:
        assert result.zone_of(t.name, 50.0) == "benign"
