"""Fig. 9 — severe decline in service availability.

Availability of the legitimate population (served within an SLA
deadline) over an (attack-rate × provisioning-level) surface, with the
flood hammering open-loop at a fixed rate (http-load's behaviour when
the victim slows down).  Throttling under a shrunken budget cuts the
cluster's service capacity, so the availability *cliff* — the rate at
which the system collapses — moves to lower attack rates as the power
budget shrinks.  That cliff shift is the paper's "severe decline in
service availability" under aggressive oversubscription.
"""

from repro import BudgetLevel, CappingScheme, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

from _support import BUDGETS

SLA_S = 0.5
DURATION = 180.0
RATES = (170.0, 190.0, 210.0, 230.0)
COLLAPSE_BELOW = 0.5


def availability_at(budget, rate):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=budget, seed=3), scheme=CappingScheme()
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=rate,
        num_agents=20,
        start_s=30,
        closed_loop=False,
    )
    sim.run(DURATION)
    return sim.availability_report(
        sla_s=SLA_S,
        traffic_class=TrafficClass.NORMAL,
        start_s=60.0,
        end_s=DURATION,
    ).availability


def collapse_rate(row):
    """First swept rate at which availability falls below the cliff."""
    for rate in RATES:
        if row[rate] < COLLAPSE_BELOW:
            return rate
    return float("inf")


def test_fig09_availability(benchmark):
    def sweep():
        return {
            budget: {rate: availability_at(budget, rate) for rate in RATES}
            for budget in BUDGETS
        }

    surface = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_table(
        ["budget"] + [f"{int(r)}rps" for r in RATES] + ["collapse at"],
        [
            (
                budget.value,
                *(surface[budget][r] for r in RATES),
                collapse_rate(surface[budget]),
            )
            for budget in BUDGETS
        ],
        title=f"Fig 9: normal-user availability (SLA {SLA_S * 1e3:.0f}ms) "
        "vs attack rate and power budget",
    )

    cliffs = {b: collapse_rate(surface[b]) for b in BUDGETS}
    # Shape: the availability cliff moves to lower attack rates as the
    # budget shrinks — oversubscription converts power loss into
    # availability loss.
    assert cliffs[BudgetLevel.LOW] <= cliffs[BudgetLevel.MEDIUM]
    assert cliffs[BudgetLevel.MEDIUM] <= cliffs[BudgetLevel.HIGH]
    assert cliffs[BudgetLevel.HIGH] <= cliffs[BudgetLevel.NORMAL]
    # At some swept rate the aggressive budget has collapsed while the
    # fully provisioned cluster still serves nearly everything.
    witness = cliffs[BudgetLevel.LOW]
    assert witness <= RATES[-1]
    assert surface[BudgetLevel.NORMAL][witness] > 0.9
    assert surface[BudgetLevel.LOW][witness] < 0.5
