"""Extension — learning the suspect list online.

The paper builds the suspect list offline.  This bench shows the
telemetry-only alternative converging to the same classification: run
mixed traffic, let the least-squares profiler attribute per-URL power
from (power, active-request) samples, and compare the emitted suspect
list and full-load estimates against the analytic ground truth.
"""

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.core import OnlineUrlPowerProfiler, SuspectList
from repro.workloads import ALL_TYPES, alios_mix

PROFILE_WINDOW_S = 120.0


def test_ext_online_profiling(benchmark):
    def learn():
        sim = DataCenterSimulation(
            SimulationConfig(seed=8, use_firewall=False), scheme=NullScheme()
        )
        profiler = OnlineUrlPowerProfiler(
            sim.engine, sim.rack, interval_s=0.5, min_samples=30
        )
        profiler.start()
        # Mixed live traffic covering every endpoint: the normal mix
        # plus a moderate probe stream of each heavy type.
        sim.add_normal_traffic(rate_rps=60)
        for t in ALL_TYPES:
            # Sub-ms volume packets are almost never caught in flight by
            # a 0.5 s sampler at low rates; probe them at the packet
            # rates a volume flood actually presents.
            rate = 40.0 if t.base_service_s > 0.01 else 2000.0
            sim.add_flood(
                mix=t, rate_rps=rate, num_agents=5, label=f"probe-{t.name}"
            )
        sim.run(PROFILE_WINDOW_S)
        return sim, profiler

    sim, profiler = benchmark.pedantic(learn, rounds=1, iterations=1)

    truth = SuspectList.from_model(ALL_TYPES, sim.rack.power_model, 0.70)
    learned = profiler.to_suspect_list(threshold_fraction=0.70)

    rows = []
    for t in ALL_TYPES:
        rows.append(
            (
                t.name,
                sim.rack.power_model.full_load_power(t, 1.0),
                profiler.full_load_estimate_w(t.url),
                truth.is_suspect(t.url),
                learned.is_suspect(t.url),
            )
        )
    print_table(
        ["type", "true full-load W", "learned W", "offline suspect", "online suspect"],
        rows,
        title="Extension: online profiling vs analytic ground truth",
    )

    # Classification agrees with the offline list on every endpoint.
    for t in ALL_TYPES:
        assert learned.is_suspect(t.url) == truth.is_suspect(t.url)
    # Power estimates are within 15 % of ground truth for all types.
    for t in ALL_TYPES:
        true_w = sim.rack.power_model.full_load_power(t, 1.0)
        est_w = profiler.full_load_estimate_w(t.url)
        assert abs(est_w - true_w) / true_w < 0.15
