"""Ablation — control-slot length.

The power manager acts once per slot.  Short slots react to a power
peak within (sub)seconds; long slots leave the budget violated for the
whole inter-decision gap.  The metric is the time the rack spends above
budget after the flood starts.
"""

from repro import BudgetLevel, CappingScheme, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import COLLA_FILT

SLOTS = (0.5, 1.0, 4.0, 16.0)
DURATION = 160.0


def run(slot_s):
    cfg = SimulationConfig(
        budget_level=BudgetLevel.LOW, seed=9, slot_s=slot_s, meter_interval_s=0.5
    )
    sim = DataCenterSimulation(cfg, scheme=CappingScheme())
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=COLLA_FILT, rate_rps=300, num_agents=20, start_s=30)
    sim.run(DURATION)
    return sim


def test_ablation_slot_length(benchmark):
    sims = benchmark.pedantic(
        lambda: {slot: run(slot) for slot in SLOTS}, rounds=1, iterations=1
    )

    rows = []
    over_time = {}
    for slot, sim in sims.items():
        over = sim.meter.time_over(sim.budget.supply_w)
        over_time[slot] = over
        rows.append((slot, over, sim.meter.peak_power()))
    print_table(
        ["slot s", "seconds over budget", "peak W"],
        rows,
        title="Ablation: control-slot length (Low-PB, capping, DOPE)",
    )

    # Reaction latency: violation time grows with the slot length, and
    # a sub-second controller confines it to the onset transient.
    assert over_time[0.5] <= over_time[4.0] <= over_time[16.0]
    assert over_time[0.5] < 10.0
    assert over_time[16.0] > over_time[0.5]
