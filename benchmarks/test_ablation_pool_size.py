"""Ablation — suspect-pool sizing.

How many servers PDF carves out for suspect traffic trades isolation
against capacity:

* a small pool (1 of 4) caps the attack's power footprint hardest and
  keeps most capacity for innocent traffic — at the cost of crowding
  legitimate heavy requests;
* a large pool (3 of 4) gives suspects capacity but squeezes innocent
  traffic onto one server and lets the isolated flood draw much more
  power.
"""

from repro import AntiDopeScheme, BudgetLevel
from repro.analysis import print_table
from repro.workloads import TrafficClass

from _support import DURATION, MEASURE_FROM, normal_latency, run_attack_scenario

POOL_SIZES = (1, 2, 3)


def test_ablation_pool_size(benchmark):
    def sweep():
        return {
            size: run_attack_scenario(
                lambda s=size: AntiDopeScheme(suspect_pool_size=s),
                BudgetLevel.LOW,
            )
            for size in POOL_SIZES
        }

    sims = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for size, sim in sims.items():
        stats = normal_latency(sim)
        light = sim.latency_stats(
            traffic_class=TrafficClass.NORMAL,
            type_name="text-cont",
            start_s=MEASURE_FROM,
            end_s=DURATION,
        )
        rows.append(
            (
                size,
                stats.mean * 1e3,
                stats.p90 * 1e3,
                light.mean * 1e3,
                sim.meter.peak_power(),
            )
        )
    print_table(
        ["pool size", "normal mean ms", "p90 ms", "light mean ms", "peak W"],
        rows,
        title="Ablation: suspect-pool size (Low-PB, DOPE attack)",
    )

    peaks = {r[0]: r[4] for r in rows}
    light_means = {r[0]: r[3] for r in rows}
    # Isolation strength: the attack's power footprint grows with the
    # pool it is allowed to occupy.
    assert peaks[1] < peaks[2] < peaks[3]
    # Light innocent traffic keeps low latency for pools that leave it
    # adequate capacity.
    assert light_means[1] < 50.0
    assert light_means[2] < 50.0
