"""Ablation — battery as a transition medium.

Anti-DOPE discharges the battery only while a new V/F configuration is
being applied.  This ablation removes that ride-through: during every
reconfiguration slot the grid (not the battery) carries the deficit,
so the budget is transiently violated.  The battery arm should show
(a) transition-slot compliance and (b) negligible total battery use —
that is the design point against Shaving's bulk discharge.

The scenario uses a 3-server suspect pool and a heavier legitimate
load so that the suspect pool at nominal frequency genuinely violates
Low-PB, with the flood switching types to force repeated
reconfigurations.
"""

import numpy as np

from repro import AntiDopeScheme, BudgetLevel, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT

DURATION = 400.0
SWITCH_S = 90.0


def run(use_battery):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=9),
        scheme=AntiDopeScheme(
            suspect_pool_size=3, use_battery_transition=use_battery
        ),
    )
    sim.add_normal_traffic(rate_rps=60)
    for i, rtype in enumerate((COLLA_FILT, K_MEANS, WORD_COUNT, COLLA_FILT)):
        start = 30.0 + i * SWITCH_S
        sim.add_flood(
            mix=rtype,
            rate_rps=300,
            num_agents=20,
            start_s=start,
            end_s=start + SWITCH_S,
            label=f"dope-{i}",
        )
    sim.run(DURATION)
    return sim


def grid_violation_slots(sim):
    """Slots where grid draw (load minus battery delivery) broke budget."""
    battery_by_slot = {}
    for d in sim.scheme.rpm.stats.decisions:
        battery_by_slot[round(d.time_s)] = d.battery_w
    count = 0
    for sample in sim.meter.samples:
        grid = sample.power_w - battery_by_slot.get(round(sample.time_s), 0.0)
        if grid > sim.budget.supply_w + 1e-6:
            count += 1
    return count


def test_ablation_battery_transition(benchmark):
    sims = benchmark.pedantic(
        lambda: {"with battery": run(True), "without battery": run(False)},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, sim in sims.items():
        delivered = sim.battery.delivered_j
        rows.append(
            (
                name,
                sim.scheme.rpm.stats.reconfigurations,
                delivered,
                grid_violation_slots(sim),
                float(np.max(sim.meter.powers())),
            )
        )
    print_table(
        ["arm", "reconfigs", "battery J", "grid-violation slots", "peak W"],
        rows,
        title="Ablation: battery as transition medium (Low-PB, switching DOPE)",
    )

    with_b, without_b = sims["with battery"], sims["without battery"]
    # Both arms reconfigure (the attack switching forces it).
    assert with_b.scheme.rpm.stats.reconfigurations >= 3
    assert without_b.scheme.rpm.stats.reconfigurations >= 3
    # The battery arm actually used the battery; the ablation did not.
    assert with_b.battery.delivered_j > 0
    assert without_b.battery.delivered_j == 0
    # Transition cover: the battery arm has fewer grid-side violation
    # slots than the ablation.
    assert grid_violation_slots(with_b) <= grid_violation_slots(without_b)
    # And unlike Shaving, total battery use stays tiny (a transition
    # medium, not a shaving store): well under one full-load minute.
    assert with_b.battery.delivered_j < 400.0 * 60.0
