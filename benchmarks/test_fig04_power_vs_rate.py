"""Fig. 4 — the higher traffic rate tends to cause higher power.

(a) mean power versus traffic rate for each service type;
(b) CDF of power at multiple traffic rates (normalised to nameplate).

Paper shape: power is monotone in rate for every type; the heavy
analytics endpoints elevate power already at light rates; higher rates
give higher and *less variable* power (the CDF tightens).
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import EmpiricalCDF, print_table
from repro.workloads import COLLA_FILT, K_MEANS, TEXT_CONT, VICTIM_TYPES, WORD_COUNT

RATES = (25.0, 50.0, 100.0, 200.0, 400.0)
WINDOW_S = 90.0


def measure(rtype, rate):
    sim = DataCenterSimulation(
        SimulationConfig(seed=3, use_firewall=False), scheme=NullScheme()
    )
    sim.add_flood(mix=rtype, rate_rps=rate, num_agents=20, label="probe")
    sim.run(WINDOW_S)
    return sim.meter.powers()[30:]


def test_fig04_power_vs_rate(benchmark):
    def sweep():
        return {
            (t.name, rate): measure(t, rate) for t in VICTIM_TYPES for rate in RATES
        }

    samples = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # --- Fig 4a: mean power vs rate per type -------------------------
    rows = []
    for t in VICTIM_TYPES:
        rows.append(
            (t.name, *(float(np.mean(samples[(t.name, r)])) for r in RATES))
        )
    print_table(
        ["type"] + [f"{int(r)}rps" for r in RATES],
        rows,
        title="Fig 4a: mean power (W) vs traffic rate",
    )

    # --- Fig 4b: power CDF at multiple rates (Colla-Filt) ------------
    nameplate = 400.0
    cdf_rows = []
    for rate in RATES:
        cdf = EmpiricalCDF(samples[("colla-filt", rate)]).normalized(nameplate)
        cdf_rows.append(
            (int(rate), cdf.quantile(0.1), cdf.median(), cdf.quantile(0.9), cdf.spread())
        )
    print_table(
        ["rate_rps", "p10", "p50", "p90", "p10-p90 spread"],
        cdf_rows,
        title="Fig 4b: normalized power CDF vs rate (colla-filt)",
    )

    # Shape assertions.
    for t in VICTIM_TYPES:
        means = [float(np.mean(samples[(t.name, r)])) for r in RATES]
        assert all(a <= b + 1.0 for a, b in zip(means, means[1:])), (
            f"{t.name}: power not monotone in rate: {means}"
        )
    # Heavy endpoints elevate power at light rates far above the light one.
    light_rate = RATES[1]
    for heavy in (COLLA_FILT, K_MEANS, WORD_COUNT):
        assert np.mean(samples[(heavy.name, light_rate)]) > np.mean(
            samples[(TEXT_CONT.name, light_rate)]
        )
    # Variance shrinks as the rate saturates the servers (Fig 4b).
    spread_low = EmpiricalCDF(samples[("colla-filt", 50.0)]).spread()
    spread_high = EmpiricalCDF(samples[("colla-filt", 400.0)]).spread()
    assert spread_high < spread_low
