"""Fig. 7 — service quality gets worse with higher traffic rate.

Under an aggressively power-insufficient budget (Low-PB) with blind
capping, the legitimate users' mean response time and 90th-percentile
tail latency versus the attack rate: past a knee the DVFS reaction to
the DOPE flood multiplies both (paper: 7.4× mean, 8.9× p90).
"""

from repro import BudgetLevel, CappingScheme
from repro.analysis import print_table
from repro.workloads import TrafficClass

from _support import ATTACK_MIX, run_attack_scenario

RATES = (25.0, 50.0, 100.0, 200.0, 400.0)
DURATION = 180.0


def measure(rate):
    sim = run_attack_scenario(
        CappingScheme,
        BudgetLevel.LOW,
        attack_rate=rate,
        duration=DURATION,
        seed=3,
    )
    stats = sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=60.0, end_s=DURATION
    )
    return stats


def test_fig07_service_quality_vs_rate(benchmark):
    def sweep():
        baseline = run_attack_scenario(
            CappingScheme, BudgetLevel.LOW, attack=False, duration=DURATION, seed=3
        ).latency_stats(traffic_class=TrafficClass.NORMAL, start_s=60.0)
        return baseline, {rate: measure(rate) for rate in RATES}

    baseline, stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [("no attack", baseline.mean * 1e3, baseline.p90 * 1e3, 1.0, 1.0)]
    for rate in RATES:
        s = stats[rate]
        rows.append(
            (
                f"{int(rate)} rps",
                s.mean * 1e3,
                s.p90 * 1e3,
                s.mean / baseline.mean,
                s.p90 / baseline.p90,
            )
        )
    print_table(
        ["attack rate", "mean ms", "p90 ms", "mean x", "p90 x"],
        rows,
        title="Fig 7: normal-user service quality vs DOPE rate (Low-PB, capping)",
    )

    # Shape: monotone-ish degradation with a knee, reaching several-x.
    means = [stats[r].mean for r in RATES]
    assert means[-1] > means[0]
    assert stats[RATES[-1]].mean > 4.0 * baseline.mean
    assert stats[RATES[-1]].p90 > 3.0 * baseline.p90
    # Below the knee the damage is mild.
    assert stats[RATES[0]].mean < 2.0 * baseline.mean
