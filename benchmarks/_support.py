"""Shared scenario runners for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding simulation(s), prints the same rows/series the
paper reports (via :func:`repro.analysis.print_table`), and asserts the
qualitative shape so a regression in the model breaks the bench.  The
heavy lifting shared by several figures lives here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.workloads import (
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TrafficClass,
    uniform_mix,
)

#: The Table 2 scheme matrix.
SCHEMES = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
}

#: Budget scenarios in the paper's order.
BUDGETS = (
    BudgetLevel.NORMAL,
    BudgetLevel.HIGH,
    BudgetLevel.MEDIUM,
    BudgetLevel.LOW,
)

ATTACK_MIX = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))

ATTACK_START = 30.0
MEASURE_FROM = 60.0
DURATION = 240.0
# Attack sized at roughly the rack's nominal-frequency service capacity:
# strong enough that power-fitting DVFS pushes the cluster into overload
# (the paper's degradation regime) while Normal-PB stays serviceable.
ATTACK_RATE = 220.0
NORMAL_RATE = 40.0
SEED = 7


def run_attack_scenario(
    scheme_factory=NullScheme,
    budget: BudgetLevel = BudgetLevel.LOW,
    attack: bool = True,
    attack_rate: float = ATTACK_RATE,
    attack_mix=None,
    normal_rate: float = NORMAL_RATE,
    duration: float = DURATION,
    seed: int = SEED,
    config: Optional[SimulationConfig] = None,
) -> DataCenterSimulation:
    """The evaluation scenario: trace-like normal load + DOPE flood."""
    cfg = config or SimulationConfig(budget_level=budget, seed=seed)
    sim = DataCenterSimulation(cfg, scheme=scheme_factory())
    sim.add_normal_traffic(rate_rps=normal_rate)
    if attack:
        sim.add_flood(
            mix=attack_mix if attack_mix is not None else ATTACK_MIX,
            rate_rps=attack_rate,
            num_agents=20,
            start_s=ATTACK_START,
        )
    sim.run(duration)
    return sim


def normal_latency(sim: DataCenterSimulation, start: float = MEASURE_FROM):
    """Latency of the legitimate population in the measurement window."""
    return sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=start, end_s=DURATION
    )


_MATRIX_CACHE: Dict[tuple, Dict] = {}


def scheme_budget_matrix(
    duration: float = DURATION, seed: int = SEED
) -> Dict[str, Dict[BudgetLevel, DataCenterSimulation]]:
    """Run every (scheme × budget) cell of Figs 16/17/19.

    Memoized: the three figures drawn from the same evaluation matrix
    (mean RT, tail latency, energy) share one set of simulations.
    """
    key = (duration, seed)
    if key in _MATRIX_CACHE:
        return _MATRIX_CACHE[key]
    matrix: Dict[str, Dict[BudgetLevel, DataCenterSimulation]] = {}
    for name, factory in SCHEMES.items():
        matrix[name] = {}
        for budget in BUDGETS:
            matrix[name][budget] = run_attack_scenario(
                factory, budget, duration=duration, seed=seed
            )
    _MATRIX_CACHE[key] = matrix
    return matrix
