"""Shared scenario runners for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding simulation(s), prints the same rows/series the
paper reports (via :func:`repro.analysis.print_table`), and asserts the
qualitative shape so a regression in the model breaks the bench.  The
heavy lifting shared by several figures lives here.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis import DopeRegionAnalyzer
from repro.runner import ResultCache
from repro.workloads import TrafficClass

# Scenario constants live in repro.bench (the machine-readable bench
# driver measures the exact workload these benches assert on); the
# legacy unsuffixed names are kept as aliases.  Engine selection also
# comes from repro.bench: one env var (``REPRO_BENCH_ENGINE``) switches
# both the machine-readable bench and every figure bench between the
# per-request and batched engines.
from repro.bench import (
    ATTACK_MIX,
    ATTACK_RATE_RPS as ATTACK_RATE,
    ATTACK_START_S as ATTACK_START,
    DURATION_S as DURATION,
    MEASURE_FROM_S as MEASURE_FROM,
    NORMAL_RATE_RPS as NORMAL_RATE,
    REGION_RATES_RPS as REGION_RATES,
    REGION_TYPES,
    SEED,
    bench_engine,
    resolve_engine,
)

#: The Table 2 scheme matrix.
SCHEMES = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
}

#: Budget scenarios in the paper's order.
BUDGETS = (
    BudgetLevel.NORMAL,
    BudgetLevel.HIGH,
    BudgetLevel.MEDIUM,
    BudgetLevel.LOW,
)


def bench_workers(default: int = 1) -> int:
    """Worker processes for runner-backed benches.

    Serial by default so every bench stays byte-reproducible without
    configuration; export ``REPRO_BENCH_WORKERS=N`` to fan sweep cells
    out across N processes (the merged output is identical either way).
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))


def bench_cache() -> Optional[ResultCache]:
    """Optional on-disk result cache for runner-backed benches.

    Export ``REPRO_BENCH_CACHE=/path`` to make repeat bench runs reuse
    stored sweep cells (e.g. when iterating on assertions).
    """
    root = os.environ.get("REPRO_BENCH_CACHE")
    return ResultCache(root) if root else None


def fig11_analyzer(seed: int = 5) -> DopeRegionAnalyzer:
    """The Fig 11 analyzer configuration (Medium-PB, 20 agents)."""
    return DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=seed),
        window_s=50.0,
        num_agents=20,
        background_rate_rps=20.0,
    )


def run_attack_scenario(
    scheme_factory=NullScheme,
    budget: BudgetLevel = BudgetLevel.LOW,
    attack: bool = True,
    attack_rate: float = ATTACK_RATE,
    attack_mix=None,
    normal_rate: float = NORMAL_RATE,
    duration: float = DURATION,
    seed: int = SEED,
    config: Optional[SimulationConfig] = None,
    engine: Optional[str] = None,
) -> DataCenterSimulation:
    """The evaluation scenario: trace-like normal load + DOPE flood.

    *engine* picks the execution engine (``scalar``/``batched``/
    ``fluid``); the default follows ``REPRO_BENCH_ENGINE``.  The figure
    benches assert on model outputs, which the golden-equivalence
    contract keeps byte-identical between scalar and batched, so the
    selection changes wall-clock only.  (These closed-loop floods never
    satisfy the fluid steadiness proof, so even ``fluid`` stays exact
    here.)
    """
    cfg = config or SimulationConfig(budget_level=budget, seed=seed)
    engine_mode, engine_fluid = resolve_engine(
        engine if engine is not None else bench_engine()
    )
    sim = DataCenterSimulation(
        cfg,
        scheme=scheme_factory(),
        engine_mode=engine_mode,
        fluid=engine_fluid,
    )
    sim.add_normal_traffic(rate_rps=normal_rate)
    if attack:
        sim.add_flood(
            mix=attack_mix if attack_mix is not None else ATTACK_MIX,
            rate_rps=attack_rate,
            num_agents=20,
            start_s=ATTACK_START,
        )
    sim.run(duration)
    return sim


def normal_latency(sim: DataCenterSimulation, start: float = MEASURE_FROM):
    """Latency of the legitimate population in the measurement window."""
    return sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=start, end_s=DURATION
    )


_MATRIX_CACHE: Dict[tuple, Dict] = {}


def scheme_budget_matrix(
    duration: float = DURATION, seed: int = SEED
) -> Dict[str, Dict[BudgetLevel, DataCenterSimulation]]:
    """Run every (scheme × budget) cell of Figs 16/17/19.

    Memoized: the three figures drawn from the same evaluation matrix
    (mean RT, tail latency, energy) share one set of simulations.
    """
    key = (duration, seed)
    if key in _MATRIX_CACHE:
        return _MATRIX_CACHE[key]
    matrix: Dict[str, Dict[BudgetLevel, DataCenterSimulation]] = {}
    for name, factory in SCHEMES.items():
        matrix[name] = {}
        for budget in BUDGETS:
            matrix[name][budget] = run_attack_scenario(
                factory, budget, duration=duration, seed=seed
            )
    _MATRIX_CACHE[key] = matrix
    return matrix
