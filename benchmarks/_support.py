"""Shared scenario runners for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding simulation(s), prints the same rows/series the
paper reports (via :func:`repro.analysis.print_table`), and asserts the
qualitative shape so a regression in the model breaks the bench.  The
heavy lifting shared by several figures lives here.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis import DopeRegionAnalyzer
from repro.runner import ResultCache
from repro.workloads import (
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VOLUME_DOS,
    WORD_COUNT,
    TrafficClass,
    uniform_mix,
)

#: The Table 2 scheme matrix.
SCHEMES = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
}

#: Budget scenarios in the paper's order.
BUDGETS = (
    BudgetLevel.NORMAL,
    BudgetLevel.HIGH,
    BudgetLevel.MEDIUM,
    BudgetLevel.LOW,
)

ATTACK_MIX = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))

ATTACK_START = 30.0
MEASURE_FROM = 60.0
DURATION = 240.0

#: The Fig 11 region-grid axes shared by the bench and the perf suite.
REGION_TYPES = (COLLA_FILT, K_MEANS, WORD_COUNT, TEXT_CONT, VOLUME_DOS)
REGION_RATES = (50.0, 150.0, 300.0, 600.0)


def bench_workers(default: int = 1) -> int:
    """Worker processes for runner-backed benches.

    Serial by default so every bench stays byte-reproducible without
    configuration; export ``REPRO_BENCH_WORKERS=N`` to fan sweep cells
    out across N processes (the merged output is identical either way).
    """
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))


def bench_cache() -> Optional[ResultCache]:
    """Optional on-disk result cache for runner-backed benches.

    Export ``REPRO_BENCH_CACHE=/path`` to make repeat bench runs reuse
    stored sweep cells (e.g. when iterating on assertions).
    """
    root = os.environ.get("REPRO_BENCH_CACHE")
    return ResultCache(root) if root else None


def fig11_analyzer(seed: int = 5) -> DopeRegionAnalyzer:
    """The Fig 11 analyzer configuration (Medium-PB, 20 agents)."""
    return DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=seed),
        window_s=50.0,
        num_agents=20,
        background_rate_rps=20.0,
    )
# Attack sized at roughly the rack's nominal-frequency service capacity:
# strong enough that power-fitting DVFS pushes the cluster into overload
# (the paper's degradation regime) while Normal-PB stays serviceable.
ATTACK_RATE = 220.0
NORMAL_RATE = 40.0
SEED = 7


def run_attack_scenario(
    scheme_factory=NullScheme,
    budget: BudgetLevel = BudgetLevel.LOW,
    attack: bool = True,
    attack_rate: float = ATTACK_RATE,
    attack_mix=None,
    normal_rate: float = NORMAL_RATE,
    duration: float = DURATION,
    seed: int = SEED,
    config: Optional[SimulationConfig] = None,
) -> DataCenterSimulation:
    """The evaluation scenario: trace-like normal load + DOPE flood."""
    cfg = config or SimulationConfig(budget_level=budget, seed=seed)
    sim = DataCenterSimulation(cfg, scheme=scheme_factory())
    sim.add_normal_traffic(rate_rps=normal_rate)
    if attack:
        sim.add_flood(
            mix=attack_mix if attack_mix is not None else ATTACK_MIX,
            rate_rps=attack_rate,
            num_agents=20,
            start_s=ATTACK_START,
        )
    sim.run(duration)
    return sim


def normal_latency(sim: DataCenterSimulation, start: float = MEASURE_FROM):
    """Latency of the legitimate population in the measurement window."""
    return sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=start, end_s=DURATION
    )


_MATRIX_CACHE: Dict[tuple, Dict] = {}


def scheme_budget_matrix(
    duration: float = DURATION, seed: int = SEED
) -> Dict[str, Dict[BudgetLevel, DataCenterSimulation]]:
    """Run every (scheme × budget) cell of Figs 16/17/19.

    Memoized: the three figures drawn from the same evaluation matrix
    (mean RT, tail latency, energy) share one set of simulations.
    """
    key = (duration, seed)
    if key in _MATRIX_CACHE:
        return _MATRIX_CACHE[key]
    matrix: Dict[str, Dict[BudgetLevel, DataCenterSimulation]] = {}
    for name, factory in SCHEMES.items():
        matrix[name] = {}
        for budget in BUDGETS:
            matrix[name][budget] = run_attack_scenario(
                factory, budget, duration=duration, seed=seed
            )
    _MATRIX_CACHE[key] = matrix
    return matrix
