"""Ablation — capping scope: global rack controller vs per-server caps.

The paper's Capping baseline is a rack-level controller.  Real
deployments often fall back to static per-node caps (BIOS/BMC power
limits), which fragment the budget: headroom stranded on cool servers
cannot relieve hot ones (cf. the Smooth-Operator line of work the paper
cites).  Under a DOPE flood the fragmentation makes a bad scheme worse.
"""

import pytest

from repro import BudgetLevel
from repro.analysis import print_table
from repro.power import CappingScheme, LocalCappingScheme

from _support import normal_latency, run_attack_scenario


def test_ablation_capping_scope(benchmark):
    sims = benchmark.pedantic(
        lambda: {
            "global": run_attack_scenario(CappingScheme, BudgetLevel.LOW),
            "local": run_attack_scenario(LocalCappingScheme, BudgetLevel.LOW),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, sim in sims.items():
        stats = normal_latency(sim)
        rows.append(
            (
                name,
                stats.mean * 1e3,
                stats.p90 * 1e3,
                sim.meter.mean_power(),
                sim.budget.supply_w,
            )
        )
    print_table(
        ["scope", "mean ms", "p90 ms", "mean W", "budget W"],
        rows,
        title="Ablation: global vs per-server capping (Low-PB, DOPE)",
    )

    global_sim, local_sim = sims["global"], sims["local"]
    # Both enforce the budget on average.
    for sim in sims.values():
        assert sim.meter.powers()[60:].mean() <= sim.budget.supply_w * 1.02
    # A round-robin-spread flood loads all servers evenly, so the two
    # scopes extract nearly the same power (fragmentation needs skew —
    # see tests/test_capping.py::TestLocalCapping for the hot-spot
    # microbenchmark where local caps strand 140 W of headroom).
    assert local_sim.meter.mean_power() == pytest.approx(
        global_sim.meter.mean_power(), rel=0.05
    )
    # Even so, per-server caps never beat the global controller for
    # legitimate users.
    assert normal_latency(local_sim).mean >= 0.95 * normal_latency(global_sim).mean
