"""Fig. 12 — the DOPE attack algorithm.

Runs the adaptive attacker against a firewalled, power-limited victim
and traces its probe-and-adjust loop: the rate ramps while undetected
and ineffective, backs off on detection, and converges at an
effective-but-invisible operating point — the paper's "repeatedly
adjusts its request number until an effective DOPE without being
detected".
"""

from repro import BudgetLevel, DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.workloads import AttackerState


def test_fig12_attack_algorithm(benchmark):
    def run():
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=5),
            scheme=NullScheme(),
        )
        sim.add_normal_traffic(rate_rps=20)
        # Effect signal: the attacker observes whether the victim's
        # power exceeded the budget in the last interval (an oracle
        # standing in for latency-based probing, cf. region analysis).
        meter = sim.meter
        budget = sim.budget

        def effective():
            recent = meter.powers()[-20:]
            return bool(len(recent) and recent.max() > budget.supply_w)

        attacker = sim.add_dope_attacker(
            initial_rate_rps=50.0,
            rate_step_rps=75.0,
            max_rate_rps=1200.0,
            num_agents=40,
            adjust_interval_s=20.0,
            effect_signal=effective,
        )
        sim.run(400.0)
        return sim, attacker

    sim, attacker = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        ["t", "rate rps", "per-agent rps", "detected", "effective", "state"],
        [
            (
                a.time_s,
                a.rate_rps,
                a.rate_rps / a.num_agents,
                a.detected,
                a.effective,
                a.state.value,
            )
            for a in attacker.stats.adjustments
        ],
        title="Fig 12: DOPE probe-and-adjust trace",
    )

    # Shape: the loop converges to an effective, undetected attack.
    assert attacker.stats.converged
    final = attacker.stats.adjustments[-1]
    assert final.state is AttackerState.CONVERGED
    assert not final.detected
    # Converged per-agent rate sits under the firewall threshold.
    assert attacker.per_agent_rate < sim.firewall.threshold_rps
    assert sim.firewall.stats.bans == 0
    # The converged attack really does violate the budget.
    assert sim.meter.peak_power() > sim.budget.supply_w
    # The ramp is visible in the trace: rate strictly grew before
    # convergence.
    rates = [a.rate_rps for a in attacker.stats.adjustments]
    assert rates[0] < max(rates)
