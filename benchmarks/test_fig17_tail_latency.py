"""Fig. 17 — 90th-percentile tail latency per scheme and power budget.

Paper shapes: under Normal-PB there is no big difference between
schemes (power is adequate); under-provisioning inflates the tail for
Capping and Shaving into the hundreds of milliseconds; Anti-DOPE
sustains the normal users' tail regardless of the supplied power;
batteries do not help Shaving against the long-duration peak.
"""

from repro import BudgetLevel
from repro.analysis import print_table

from _support import BUDGETS, SCHEMES, normal_latency, scheme_budget_matrix


def test_fig17_tail_latency(benchmark):
    matrix = benchmark.pedantic(scheme_budget_matrix, rounds=1, iterations=1)

    p90 = {
        (s, b): normal_latency(matrix[s][b]).p90 for s in SCHEMES for b in BUDGETS
    }
    print_table(
        ["scheme"] + [b.value for b in BUDGETS],
        [(s, *(p90[(s, b)] * 1e3 for b in BUDGETS)) for s in SCHEMES],
        title="Fig 17: normal-user p90 tail latency (ms) under DOPE",
    )

    # Normal-PB: adequate power keeps every tail in the sub-250 ms band.
    normal_tails = [p90[(s, BudgetLevel.NORMAL)] for s in SCHEMES]
    assert max(normal_tails) < 0.25
    # Under-provisioned: capping's tail reaches the paper's 200+ ms
    # range ("the tail latency can be up to 236 milliseconds").
    assert p90[("capping", BudgetLevel.LOW)] > 0.200
    assert (
        p90[("capping", BudgetLevel.LOW)]
        > 1.3 * p90[("capping", BudgetLevel.NORMAL)]
    )
    # Batteries don't function well against the long-duration peak:
    # Shaving's tail is in capping's league, not Anti-DOPE's.
    assert p90[("shaving", BudgetLevel.LOW)] > 0.5 * p90[("capping", BudgetLevel.LOW)]
    # Anti-DOPE sustains the tail regardless of the supplied power.
    for b in (BudgetLevel.HIGH, BudgetLevel.MEDIUM, BudgetLevel.LOW):
        assert p90[("anti-dope", b)] < 0.5 * p90[("capping", b)]
        assert p90[("anti-dope", b)] < 0.5 * p90[("shaving", b)]
    anti_across = [p90[("anti-dope", b)] for b in BUDGETS]
    assert max(anti_across) < 0.25
