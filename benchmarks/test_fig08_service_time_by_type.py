"""Fig. 8 — service time of the four observed traffic types.

Under the power-limited cluster with capping, compares the per-type
response time of the victim endpoints while each type floods alone.
Paper shape: Colla-Filt and K-means arouse the most serious
degradation of service quality.
"""

from repro import BudgetLevel, CappingScheme, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import VICTIM_TYPES, TrafficClass

DURATION = 180.0
RATE = 300.0


def measure(rtype):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=3), scheme=CappingScheme()
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=rtype, rate_rps=RATE, num_agents=20, start_s=30)
    sim.run(DURATION)
    under_attack = sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=60.0, end_s=DURATION
    )
    return under_attack


def test_fig08_service_time_by_type(benchmark):
    results = benchmark.pedantic(
        lambda: {t.name: measure(t) for t in VICTIM_TYPES}, rounds=1, iterations=1
    )
    rows = [
        (name, s.mean * 1e3, s.p90 * 1e3, s.p95 * 1e3)
        for name, s in results.items()
    ]
    print_table(
        ["attack type", "normal mean ms", "p90 ms", "p95 ms"],
        rows,
        title="Fig 8: normal-user service time by flooding type (Low-PB, capping)",
    )

    means = {name: s.mean for name, s in results.items()}
    # Colla-Filt and K-means floods hurt legitimate users most.
    worst_two = sorted(means, key=means.get, reverse=True)[:2]
    assert set(worst_two) == {"colla-filt", "k-means"}
    # The light text endpoint is the most benign flood.
    assert means["text-cont"] == min(means.values())
