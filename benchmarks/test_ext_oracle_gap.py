"""Extension — the KISS gap: Anti-DOPE vs perfect attack knowledge.

Anti-DOPE follows a KISS principle: isolate by power profile, never
identify attackers (Section 5.4).  The oracle defence (ground-truth
attack labels, drop at the NLB) bounds what any detector could achieve.
This bench measures how much of the oracle's benefit Anti-DOPE's
simplicity captures — the cost of not solving the (unsolvable)
attribution problem.
"""

from repro import AntiDopeScheme, BudgetLevel, CappingScheme
from repro.analysis import print_table
from repro.core.oracle import OracleScheme
from repro.workloads import TrafficClass

from _support import normal_latency, run_attack_scenario

ARMS = {
    "capping (blind)": CappingScheme,
    "anti-dope (KISS)": AntiDopeScheme,
    "oracle (perfect)": OracleScheme,
}


def test_ext_oracle_gap(benchmark):
    sims = benchmark.pedantic(
        lambda: {
            name: run_attack_scenario(factory, BudgetLevel.LOW, attack_rate=300.0)
            for name, factory in ARMS.items()
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    means = {}
    for name, sim in sims.items():
        stats = normal_latency(sim)
        avail = sim.availability_report(
            sla_s=0.5, traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        means[name] = stats.mean
        rows.append(
            (
                name,
                stats.mean * 1e3,
                stats.p90 * 1e3,
                avail.availability,
                sim.meter.peak_power(),
            )
        )
    print_table(
        ["defence", "mean ms", "p90 ms", "availability", "peak W"],
        rows,
        title="Extension: Anti-DOPE vs the perfect-knowledge oracle (Low-PB)",
    )

    blind = means["capping (blind)"]
    kiss = means["anti-dope (KISS)"]
    oracle = means["oracle (perfect)"]
    # Sanity ordering: oracle <= anti-dope <= capping on the mean.
    assert oracle <= kiss * 1.05
    assert kiss < blind
    # The KISS gap: Anti-DOPE recovers most of the oracle's improvement
    # over blind capping without any attacker identification.
    recovered = (blind - kiss) / (blind - oracle)
    print(f"\nKISS recovery of the oracle benefit: {recovered * 100:.0f}%")
    assert recovered > 0.75
    # But perfect knowledge is strictly better for legitimate users'
    # availability: the oracle never sheds a legitimate heavy request.
    oracle_avail = sims["oracle (perfect)"].availability_report(
        sla_s=0.5, traffic_class=TrafficClass.NORMAL, start_s=60.0
    )
    kiss_avail = sims["anti-dope (KISS)"].availability_report(
        sla_s=0.5, traffic_class=TrafficClass.NORMAL, start_s=60.0
    )
    assert oracle_avail.availability >= kiss_avail.availability
