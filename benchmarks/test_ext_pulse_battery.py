"""Extension — pulsed DOPE ratchets battery-backed shaving down.

A duty-cycled flood (paper's battery discussion, extended): each pulse
forces Shaving to discharge at full-carry rate, while the off-phase is
too short to recharge what was spent (charging is rate-limited at a
fraction of discharge).  The SoC envelope ratchets downward until the
battery is spent — at a *time-averaged* request rate well below the
sustained attack the defender provisioned the battery against.
"""

import numpy as np

from repro import BudgetLevel, DataCenterSimulation, ShavingScheme, SimulationConfig
from repro.analysis import print_table
from repro.workloads.pulse import PulseAttacker

DURATION = 420.0


def run(duty):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=4),
        scheme=ShavingScheme(),
    )
    sim.add_normal_traffic(rate_rps=30)
    attacker = PulseAttacker(
        sim.engine,
        sim.nlb.dispatch,
        sim.registry,
        sim.new_rng(),
        rate_rps=300.0,
        period_s=60.0,
        duty=duty,
        num_agents=20,
    )
    attacker.start(10.0)
    sim.run(DURATION)
    return sim, attacker


def test_ext_pulse_battery(benchmark):
    duties = (0.25, 0.5, 0.75)
    sims = benchmark.pedantic(
        lambda: {duty: run(duty) for duty in duties}, rounds=1, iterations=1
    )

    rows = []
    for duty, (sim, attacker) in sims.items():
        socs = sim.meter.socs()
        rows.append(
            (
                duty,
                attacker.mean_rate_rps,
                attacker.stats.pulses,
                float(socs[-1]),
                sim.battery.discharge_cycles,
            )
        )
    print_table(
        ["duty", "mean rate rps", "pulses", "final SoC", "cycles"],
        rows,
        title="Extension: pulsed DOPE vs the Shaving battery",
    )

    final_soc = {r[0]: r[3] for r in rows}
    # Denser duty cycles drain the battery further.
    assert final_soc[0.75] < final_soc[0.5] < final_soc[0.25]
    # A 75 % duty cycle — only 225 rps time-averaged — still guts the
    # battery the defender sized for 2 minutes of full load.
    assert final_soc[0.75] < 0.3
    # Each run cycled the battery repeatedly (the ratchet signature).
    for _, (sim, _) in sims.items():
        assert sim.battery.discharge_cycles >= 3
