"""Fig. 3 — power profile of typical cyber-attacks.

Launches every attack scenario of the Section 3.1 taxonomy against the
unmanaged rack and reports the victim's mean/peak power over the
observation window.  The paper's finding: application-layer floods
(HTTP, DNS) drive high power peaks, transport/network-layer volume
floods do not.
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.workloads import ATTACK_SCENARIOS

WINDOW_S = 120.0
#: Volume floods run at millions of packets/s in the wild; the bench
#: caps them so the event count stays laptop-friendly — their per-packet
#: power is what matters, not the absolute rate.
RATE_CAP_RPS = 2000.0


def run_scenario(name):
    scenario = ATTACK_SCENARIOS[name]
    sim = DataCenterSimulation(
        SimulationConfig(seed=3, use_firewall=False), scheme=NullScheme()
    )
    sim.add_normal_traffic(rate_rps=20)
    rate = min(scenario.default_rate_rps, RATE_CAP_RPS)
    gen = scenario.build(
        sim.engine, sim.nlb.dispatch, sim.registry, sim.new_rng(), rate_rps=rate
    )
    gen.start(10.0)
    sim.generators.append(gen)
    sim.run(WINDOW_S)
    powers = sim.meter.powers()[20:]  # post-ramp window
    return {
        "scenario": name,
        "layer": scenario.layer,
        "class": scenario.power_class,
        "mean_W": float(np.mean(powers)),
        "peak_W": float(np.max(powers)),
    }


def test_fig03_attack_power_profiles(benchmark):
    results = benchmark.pedantic(
        lambda: [run_scenario(name) for name in ATTACK_SCENARIOS],
        rounds=1,
        iterations=1,
    )
    print_table(
        ["scenario", "layer", "paper class", "mean W", "peak W"],
        [(r["scenario"], r["layer"], r["class"], r["mean_W"], r["peak_W"]) for r in results],
        title="Fig 3: power profile of cyber-attack classes (600 W window)",
    )

    by_class = {}
    for r in results:
        by_class.setdefault(r["class"], []).append(r["mean_W"])
    # Shape: every high-power attack out-draws every low-power attack,
    # with the medium class in between on average.
    assert min(by_class["high"]) > max(by_class["low"])
    assert np.mean(by_class["high"]) > np.mean(by_class["medium"]) > np.mean(
        by_class["low"]
    )
