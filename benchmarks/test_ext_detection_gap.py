"""Extension — detection without attribution.

The paper claims rate-based network defences cannot handle DOPE.  This
bench gives the network side its best shot: an EWMA aggregate anomaly
detector running alongside DDoS-deflate during a DOPE attack versus a
classic single-source flood.

Result: the detector *sees* the DOPE onset immediately (the aggregate
z-score explodes) — but its offender list is empty, because no single
agent exceeds any per-source threshold.  Against the classic flood both
detection *and* attribution succeed.  DOPE's evasion is not stealth;
it is the attribution gap.
"""

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.network.anomaly import AggregateAnomalyDetector
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))
DURATION = 180.0
ATTACK_START = 90.0


def run(num_agents, rate_rps=250.0, closed_loop=True):
    sim = DataCenterSimulation(SimulationConfig(seed=6), scheme=NullScheme())
    detector = AggregateAnomalyDetector(
        window_s=5.0, z_threshold=4.0, warmup_windows=6, offender_rps=50.0
    )
    detector.attach(sim.engine)
    original_dispatch = sim.nlb.dispatch

    def observed_dispatch(request):
        detector.observe(request.source_id)
        return original_dispatch(request)

    sim.add_normal_traffic(rate_rps=40)
    # Route generators through the observing dispatch.
    from repro.workloads.attacks import make_flood

    gen = make_flood(
        sim.engine,
        observed_dispatch,
        sim.registry,
        sim.new_rng(),
        mix=ATTACK,
        rate_rps=rate_rps,
        num_agents=num_agents,
        closed_loop=closed_loop,
        label="flood",
    )
    gen.start(ATTACK_START)
    # Normal traffic also observed (rewire its dispatch).
    for g in sim.generators:
        g.dispatch = observed_dispatch
    sim.run(DURATION)
    return sim, detector


def test_ext_detection_gap(benchmark):
    runs = benchmark.pedantic(
        lambda: {
            "DOPE (40 agents)": run(40),
            # A classic blatant flood: open-loop packet blasting from
            # two sources at 200 req/s each.
            "classic flood (2 agents)": run(2, rate_rps=400.0, closed_loop=False),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, (sim, detector) in runs.items():
        first_alarm = (
            detector.stats.alarms[0].time_s if detector.stats.alarms else float("nan")
        )
        attributed = any(a.offenders for a in detector.stats.alarms)
        rows.append(
            (
                name,
                detector.stats.alarm_count,
                first_alarm,
                attributed,
                sim.firewall.stats.bans,
            )
        )
    print_table(
        ["attack", "alarms", "first alarm s", "attributable", "deflate bans"],
        rows,
        title="Extension: aggregate detection vs per-source attribution",
    )

    dope_sim, dope_det = runs["DOPE (40 agents)"]
    classic_sim, classic_det = runs["classic flood (2 agents)"]
    # Both attacks are *detected* in the aggregate...
    assert dope_det.stats.alarm_count >= 1
    assert classic_det.stats.alarm_count >= 1
    # ...and detection is prompt (within two windows of onset).
    assert dope_det.stats.alarms[0].time_s <= ATTACK_START + 15.0
    # But only the classic flood is attributable / bannable.
    assert all(a.offenders == [] for a in dope_det.stats.alarms)
    assert any(a.offenders for a in classic_det.stats.alarms)
    assert dope_sim.firewall.stats.bans == 0
    assert classic_sim.firewall.stats.bans >= 2
