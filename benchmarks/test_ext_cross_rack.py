"""Extension — cross-rack collateral damage through the facility feed.

Three racks behind one oversubscribed facility feed with
demand-proportional re-planning.  A DOPE flood on rack 0 inflates its
demand; the facility allocator hands it the headroom, shrinking the
*bystander* racks' budgets — their users slow down without receiving a
single attack packet.  The per-rack floors bound the starvation.
"""

from repro import CappingScheme, SimulationConfig
from repro.analysis import print_table
from repro.sim import FacilitySimulation
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))
DURATION = 240.0


def run(attacked: bool):
    facility = FacilitySimulation(
        num_racks=3,
        facility_fraction=0.50,
        scheme_factory=CappingScheme,
        rack_config=SimulationConfig(seed=3),
        replan_interval_s=5.0,
        floor_fraction=0.2,
    )
    for sim in facility.racks:
        sim.add_normal_traffic(rate_rps=120)
    if attacked:
        facility.racks[0].add_flood(
            mix=ATTACK, rate_rps=300, num_agents=20, start_s=30
        )
    facility.run(DURATION)
    return facility


def test_ext_cross_rack(benchmark):
    facilities = benchmark.pedantic(
        lambda: {"quiet": run(False), "rack0 attacked": run(True)},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, facility in facilities.items():
        record = facility.stats.records[-1]
        stats = [
            sim.latency_stats(traffic_class=TrafficClass.NORMAL, start_s=60.0)
            for sim in facility.racks
        ]
        rows.append(
            (
                name,
                *(f"{a.allocated_w:.0f}" for a in record.allocations),
                *(s.mean * 1e3 for s in stats),
            )
        )
    print_table(
        ["scenario", "W rack0", "W rack1", "W rack2", "ms rack0", "ms rack1", "ms rack2"],
        rows,
        title="Extension: cross-rack DOPE via facility re-planning",
    )

    quiet, attacked = facilities["quiet"], facilities["rack0 attacked"]
    q_rec, a_rec = quiet.stats.records[-1], attacked.stats.records[-1]
    # The attacked rack bid headroom away from its neighbours...
    assert a_rec.allocations[0].allocated_w > q_rec.allocations[0].allocated_w
    for i in (1, 2):
        assert a_rec.allocations[i].allocated_w < q_rec.allocations[i].allocated_w
    # ...slowing bystander users who never saw a hostile packet.
    for i in (1, 2):
        q = quiet.racks[i].latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        a = attacked.racks[i].latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        assert a.mean > 1.05 * q.mean
    # Floors keep the bystanders alive: everyone got at least the floor.
    floor = attacked.facility_budget_w * 0.2 / 3
    for a in a_rec.allocations:
        assert a.allocated_w >= min(floor, a.demand_w) - 1e-6
    # The facility feed is never oversubscribed by the allocation.
    total = sum(a.allocated_w for a in a_rec.allocations)
    assert total <= attacked.facility_budget_w + 1e-6
