"""Fig. 16 — mean response time per scheme and power budget.

The full Table-2 × budget matrix under the DOPE flood.  Paper shapes:

* at Normal-PB every scheme serves below ~40 ms and there is little
  difference between schemes;
* tighter budgets raise the mean for every scheme;
* Anti-DOPE achieves the lowest mean among the power-capping schemes;
* Token is fast too — but only by abandoning most of the packets.
"""

from repro import BudgetLevel
from repro.analysis import print_table

from _support import BUDGETS, SCHEMES, normal_latency, scheme_budget_matrix


def test_fig16_mean_response_time(benchmark):
    matrix = benchmark.pedantic(scheme_budget_matrix, rounds=1, iterations=1)

    means = {
        (s, b): normal_latency(matrix[s][b]).mean for s in SCHEMES for b in BUDGETS
    }
    print_table(
        ["scheme"] + [b.value for b in BUDGETS],
        [
            (s, *(means[(s, b)] * 1e3 for b in BUDGETS))
            for s in SCHEMES
        ],
        title="Fig 16: normal-user mean response time (ms) under DOPE",
    )

    # Normal-PB: every scheme serves with a moderate mean (the paper
    # reports <40 ms with zero contention; our closed-loop flood keeps
    # some worker contention even at full budget — see EXPERIMENTS.md).
    normal_means = [means[(s, BudgetLevel.NORMAL)] for s in SCHEMES]
    assert max(normal_means) < 0.150
    # Scheme differences widen as the budget shrinks: the budget, not
    # the scheme, is the non-factor at Normal-PB.
    def spread(budget):
        vals = [means[(s, budget)] for s in SCHEMES]
        return max(vals) - min(vals)

    assert spread(BudgetLevel.LOW) > spread(BudgetLevel.NORMAL)
    # Under-provisioned budgets degrade the blind power schemes.
    for s in ("capping", "shaving"):
        assert means[(s, BudgetLevel.LOW)] > means[(s, BudgetLevel.NORMAL)]
    # Anti-DOPE guarantees the minimum mean among the power schemes.
    for b in (BudgetLevel.MEDIUM, BudgetLevel.LOW):
        assert means[("anti-dope", b)] < means[("capping", b)]
        assert means[("anti-dope", b)] < means[("shaving", b)]
    # Token has far shorter service time than capping/shaving — because
    # it abandons most of the flood.
    assert means[("token", BudgetLevel.LOW)] < means[("capping", BudgetLevel.LOW)]
    token_drop = matrix["token"][BudgetLevel.LOW].scheme.bucket.drop_fraction
    assert token_drop > 0.5
