"""Extension — flash crowds: the defence's false-positive cost.

A legitimate surge of heavy requests (a flash sale) is
indistinguishable from DOPE to a power-profile defence.  This bench
runs the same surge under each defence and reports what the *surge
users themselves* experience:

* Capping slows everyone (surge and background alike) but serves the
  crowd;
* Anti-DOPE protects the background users perfectly — by throttling and
  shedding the crowd it mistook for an attack;
* the Oracle (which knows the crowd is legitimate) caps uniformly,
  behaving like Capping.

There is no free lunch: the better a label-free defence handles DOPE,
the worse it treats DOPE-shaped legitimate load.
"""

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    SimulationConfig,
)
from repro.analysis import print_table
from repro.core.oracle import OracleScheme
from repro.workloads import TrafficClass, make_flash_crowd

DURATION = 180.0
SURGE_START = 30.0
SURGE_DURATION = 120.0

ARMS = {
    "capping": CappingScheme,
    "anti-dope": AntiDopeScheme,
    "oracle": OracleScheme,
}


def run(factory):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=4), scheme=factory()
    )
    sim.add_normal_traffic(rate_rps=30, label="background")
    make_flash_crowd(
        sim.engine,
        sim.nlb.dispatch,
        sim.registry,
        sim.new_rng(),
        rate_rps=250.0,
        num_users=500,
        start_s=SURGE_START,
        duration_s=SURGE_DURATION,
    )
    sim.run(DURATION)
    return sim


def crowd_report(sim):
    # The crowd is the NORMAL-class heavy traffic; separate it from the
    # light background by request type.
    crowd = [
        r
        for r in sim.collector.filtered(
            traffic_class=TrafficClass.NORMAL,
            start_s=SURGE_START,
            end_s=SURGE_START + SURGE_DURATION,
        )
        if r.type_name in ("colla-filt", "k-means", "word-count")
    ]
    from repro.metrics import LatencyStats, availability

    return LatencyStats.from_records(crowd), availability(crowd, sla_s=1.0)


def test_ext_flash_crowd(benchmark):
    sims = benchmark.pedantic(
        lambda: {name: run(f) for name, f in ARMS.items()}, rounds=1, iterations=1
    )

    rows = []
    for name, sim in sims.items():
        stats, avail = crowd_report(sim)
        background = sim.latency_stats(
            traffic_class=TrafficClass.NORMAL,
            type_name="text-cont",
            start_s=SURGE_START,
        )
        rows.append(
            (
                name,
                stats.mean * 1e3,
                avail.availability,
                avail.drop_fraction,
                background.mean * 1e3,
            )
        )
    print_table(
        [
            "defence",
            "crowd mean ms",
            "crowd availability",
            "crowd dropped",
            "background light ms",
        ],
        rows,
        title="Extension: a legitimate flash crowd under each defence",
    )

    by_name = {r[0]: r for r in rows}
    # Anti-DOPE treats the crowd as an attack: worst crowd availability.
    assert by_name["anti-dope"][2] < by_name["capping"][2]
    assert by_name["anti-dope"][2] < by_name["oracle"][2]
    assert by_name["anti-dope"][3] > 0.2  # substantial shedding
    # But it is the only defence that keeps background users fast.
    assert by_name["anti-dope"][4] < by_name["capping"][4]
    # The oracle never drops a legitimate request.
    assert by_name["oracle"][3] == 0.0
