"""Fig. 6 — the effect of HTTP DoS attack on power capping.

(a) V/F reduction versus traffic rate under Medium-PB: larger floods
force deeper uniform throttling, heavy endpoints trigger it at low
rates, and past a threshold the V/F floor saturates;
(b) V/F reduction by request type at a high attack rate: K-means'
frequency-insensitive power forces the deepest throttle.
"""

import numpy as np

from repro import BudgetLevel, CappingScheme, DataCenterSimulation, SimulationConfig
from repro.analysis import print_table
from repro.workloads import COLLA_FILT, K_MEANS, TEXT_CONT, VICTIM_TYPES, WORD_COUNT

RATES = (50.0, 100.0, 200.0, 400.0, 800.0)
HIGH_RATE = 800.0
WINDOW_S = 90.0


def mean_freq(rtype, rate):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=3, use_firewall=False),
        scheme=CappingScheme(),
    )
    sim.add_normal_traffic(rate_rps=20)
    sim.add_flood(mix=rtype, rate_rps=rate, num_agents=20, start_s=10)
    sim.run(WINDOW_S)
    levels = sim.meter.mean_levels()[30:]
    return 1.2 + 0.1 * float(np.mean(levels))


def test_fig06_vf_reduction(benchmark):
    def sweep():
        return {
            (t.name, r): mean_freq(t, r)
            for t in VICTIM_TYPES
            for r in RATES
        }

    freqs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (t.name, *(freqs[(t.name, r)] for r in RATES)) for t in VICTIM_TYPES
    ]
    print_table(
        ["type"] + [f"{int(r)}rps" for r in RATES],
        rows,
        title="Fig 6a: mean operating frequency (GHz) vs attack rate, Medium-PB",
    )
    print_table(
        ["type", "GHz @ high rate", "V/F reduction (GHz)"],
        [
            (t.name, freqs[(t.name, HIGH_RATE)], 2.4 - freqs[(t.name, HIGH_RATE)])
            for t in VICTIM_TYPES
        ],
        title=f"Fig 6b: V/F reduction by type @ {int(HIGH_RATE)} rps",
    )

    # Shape: frequency non-increasing with rate for the heavy types.
    for t in (COLLA_FILT, K_MEANS):
        series = [freqs[(t.name, r)] for r in RATES]
        assert all(a >= b - 0.05 for a, b in zip(series, series[1:]))
        # Saturation: the V/F floor stops moving at the top rates.
        assert abs(series[-1] - series[-2]) < 0.15
    # Heavy endpoints trigger throttling at rates where light text does not.
    assert freqs[("colla-filt", 200.0)] < freqs[("text-cont", 200.0)] - 0.1
    # Fig 6b: K-means forces the deepest V/F cut.
    high = {t.name: freqs[(t.name, HIGH_RATE)] for t in VICTIM_TYPES}
    assert high["k-means"] == min(high.values())
