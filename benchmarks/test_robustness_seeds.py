"""Robustness — the headline claim across seeds.

Every figure bench runs one seeded world; this bench replicates the
headline comparison (Anti-DOPE vs Capping under Low-PB DOPE) across
several seeds and reports mean ± 95 % CI, asserting the paper's floors
hold for the *confidence bound*, not just a lucky draw.
"""

from repro import AntiDopeScheme, BudgetLevel, CappingScheme
from repro.analysis import print_table, replicate
from repro.workloads import TrafficClass

from _support import ATTACK_MIX, bench_cache, bench_workers, run_attack_scenario

SEEDS = (1, 2, 3, 4, 5)
DURATION = 180.0
RATE = 300.0


def experiment(seed: int):
    def stats_for(factory):
        sim = run_attack_scenario(
            factory,
            BudgetLevel.LOW,
            attack_rate=RATE,
            duration=DURATION,
            seed=seed,
        )
        return sim.latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0, end_s=DURATION
        )

    capping = stats_for(CappingScheme)
    anti = stats_for(AntiDopeScheme)
    return {
        "capping_mean_ms": capping.mean * 1e3,
        "anti_mean_ms": anti.mean * 1e3,
        "capping_p90_ms": capping.p90 * 1e3,
        "anti_p90_ms": anti.p90 * 1e3,
        "mean_saving": 1 - anti.mean / capping.mean,
        "p90_saving": 1 - anti.p90 / capping.p90,
    }


def test_robustness_seeds(benchmark):
    # replicate() fans seeds out over REPRO_BENCH_WORKERS processes (the
    # experiment is module-level, hence picklable); summaries are
    # identical for any worker count.
    summaries = benchmark.pedantic(
        lambda: replicate(
            experiment,
            seeds=SEEDS,
            workers=bench_workers(),
            cache=bench_cache(),
        ),
        rounds=1,
        iterations=1,
    )

    print_table(
        ["metric", "mean", "std", "ci low", "ci high"],
        [
            (s.name, s.mean, s.std, s.ci_low, s.ci_high)
            for s in summaries.values()
        ],
        title=f"Robustness: headline comparison over {len(SEEDS)} seeds",
    )

    # The paper's floors hold at the lower confidence bound.
    assert summaries["mean_saving"].ci_low > 0.44
    assert summaries["p90_saving"].ci_low > 0.681
    # And the effect is stable: relative spread of the saving is small.
    assert summaries["mean_saving"].std < 0.15
