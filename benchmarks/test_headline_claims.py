"""Headline claims (abstract): 44 % shorter mean RT, 68.1 % better p90.

"Using Alibaba container trace we show that Anti-DOPE allows 44 %
shorter average response time.  It also improves the 90th percentile
tail latency by 68.1 % compared to the other power controlling
methods."  Measured in the aggressively power-insufficient regime with
the synthetic Alibaba trace driving the legitimate population.
"""

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
)
from repro.analysis import print_table
from repro.trace import SyntheticAlibabaTrace
from repro.workloads import TrafficClass

from _support import ATTACK_MIX

DURATION = 240.0
ATTACK_RATE = 300.0  # the aggressive regime of the paper's abstract


def run(scheme_factory, trace):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=7),
        scheme=scheme_factory(),
    )
    sim.add_normal_traffic(
        rate_rps=30, trace=trace, trace_peak_rate_rps=60, num_users=200
    )
    sim.add_flood(mix=ATTACK_MIX, rate_rps=ATTACK_RATE, num_agents=20, start_s=30)
    sim.run(DURATION)
    return sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=60.0, end_s=DURATION
    )


def test_headline_claims(benchmark):
    def build():
        trace = SyntheticAlibabaTrace().generate(
            num_machines=64, duration_s=12 * 3600, interval_s=30, seed=1
        )
        return {
            name: run(factory, trace)
            for name, factory in (
                ("capping", CappingScheme),
                ("shaving", ShavingScheme),
                ("anti-dope", AntiDopeScheme),
            )
        }

    stats = benchmark.pedantic(build, rounds=1, iterations=1)

    best_mean = min(stats["capping"].mean, stats["shaving"].mean)
    best_p90 = min(stats["capping"].p90, stats["shaving"].p90)
    mean_saving = 1 - stats["anti-dope"].mean / best_mean
    p90_saving = 1 - stats["anti-dope"].p90 / best_p90

    print_table(
        ["scheme", "mean ms", "p90 ms"],
        [(n, s.mean * 1e3, s.p90 * 1e3) for n, s in stats.items()],
        title="Headline: Anti-DOPE vs conventional power control "
        "(Alibaba trace, Low-PB, DOPE attack)",
    )
    print_table(
        ["metric", "paper", "measured"],
        [
            ("mean RT saving", 0.44, mean_saving),
            ("p90 saving", 0.681, p90_saving),
        ],
        title="Headline claims: paper vs measured",
    )

    # The paper's improvements are the floor here.
    assert mean_saving >= 0.44
    assert p90_saving >= 0.681
