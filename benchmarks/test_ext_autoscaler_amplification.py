"""Extension — auto-scaling amplifies DOPE.

The paper's threat analysis: "current data centers excessively rely on
network load balancer (NLB) and auto-scaling resource allocation to
provide built-in defenses against DDoS attacks … As a result, hostile
requests can generate the maximum possible load on their targeted
servers without prior detection."

This bench quantifies the amplification: the same DOPE flood against
(a) a fixed minimal footprint and (b) an auto-scaled rack.  The scaler
dutifully recruits every gated server for the attacker, multiplying the
rack's power draw — the attacker rents the defender's own elasticity.
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import print_table
from repro.cluster import AutoScaler
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, uniform_mix

DURATION = 240.0
ATTACK_START = 60.0


def run(autoscale: bool):
    sim = DataCenterSimulation(
        SimulationConfig(seed=5, use_firewall=True), scheme=NullScheme()
    )
    scaler = None
    if autoscale:
        scaler = AutoScaler(
            sim.engine,
            sim.rack,
            sim.nlb,
            min_active=1,
            high_util=0.6,
            low_util=0.2,
            interval_s=5.0,
            cooldown_s=10.0,
        )
        scaler.start()
    else:
        # Fixed minimal footprint: one active server, rest gated.
        for server in sim.rack.servers[1:]:
            server.set_powered(False)
        sim.nlb.servers[:] = sim.rack.servers[:1]
    sim.add_normal_traffic(rate_rps=15)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=250,
        num_agents=20,
        start_s=ATTACK_START,
    )
    sim.run(DURATION)
    return sim, scaler


def test_ext_autoscaler_amplification(benchmark):
    sims = benchmark.pedantic(
        lambda: {"fixed": run(False), "autoscaled": run(True)},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, (sim, scaler) in sims.items():
        powers = sim.meter.powers()
        times = sim.meter.times()
        pre = powers[(times > 20) & (times < ATTACK_START)]
        post = powers[times > ATTACK_START + 60]
        rows.append(
            (
                name,
                float(np.mean(pre)),
                float(np.mean(post)),
                float(np.max(powers)),
                scaler.stats.scale_outs if scaler else 0,
            )
        )
    print_table(
        ["arm", "pre-attack W", "attack W", "peak W", "scale-outs"],
        rows,
        title="Extension: auto-scaling amplifies DOPE's power footprint",
    )

    fixed_sim, _ = sims["fixed"]
    scaled_sim, scaler = sims["autoscaled"]
    # The scaler recruited servers for the attacker...
    assert scaler.stats.scale_outs >= 2
    # ...multiplying the power the same flood extracts.
    fixed_peak = fixed_sim.meter.peak_power()
    scaled_peak = scaled_sim.meter.peak_power()
    assert scaled_peak > 2.0 * fixed_peak
    # The fixed footprint bounds the damage to one server's nameplate.
    assert fixed_peak <= 100.0 + 1e-6
    # And the flood still never trips the firewall in either arm.
    assert fixed_sim.firewall.stats.bans == 0
    assert scaled_sim.firewall.stats.bans == 0
