"""Fig. 18 — batteries' behaviour under different power schemes.

Three battery signatures under a sustained DOPE attack:

* **Capping** never touches the battery (flat 100 % SoC);
* **Shaving** rides the peak on the UPS and exhausts it (the paper's
  steep blue line — the 2-minute battery cannot carry a long peak);
* **Anti-DOPE** uses the battery only as a *transition medium*: with
  the attack switching between the three DOPE types every two minutes,
  the battery discharges briefly at each reconfiguration and recharges
  immediately (the paper's saw-toothed dark line).

The Anti-DOPE arm uses a wider suspect pool (3 of 4 servers) plus a
heavier legitimate load so that the suspect pool saturated at nominal
frequency genuinely violates Low-PB — the regime in which RPM has to
re-throttle on every attack change.
"""

import numpy as np

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
)
from repro.analysis import print_table
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT

DURATION = 480.0
SWITCH_S = 120.0


def run_steady(scheme_factory):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=9),
        scheme=scheme_factory(),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=COLLA_FILT, rate_rps=300, num_agents=20, start_s=30)
    sim.run(DURATION)
    return sim


def run_switching_anti_dope():
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=9),
        scheme=AntiDopeScheme(suspect_pool_size=3),
    )
    sim.add_normal_traffic(rate_rps=60)
    for i, rtype in enumerate((COLLA_FILT, K_MEANS, WORD_COUNT, COLLA_FILT)):
        start = 30.0 + i * SWITCH_S
        sim.add_flood(
            mix=rtype,
            rate_rps=300,
            num_agents=20,
            start_s=start,
            end_s=start + SWITCH_S,
            label=f"dope-{i}-{rtype.name}",
        )
    sim.run(DURATION)
    return sim


def soc_series(sim):
    return sim.meter.times(), sim.meter.socs()


def test_fig18_battery_behavior(benchmark):
    def scenario():
        return {
            "capping": run_steady(CappingScheme),
            "shaving": run_steady(ShavingScheme),
            "anti-dope (switching)": run_switching_anti_dope(),
        }

    sims = benchmark.pedantic(scenario, rounds=1, iterations=1)

    rows = []
    for name, sim in sims.items():
        t, soc = soc_series(sim)
        checkpoints = [soc[np.searchsorted(t, x)] for x in (0, 60, 120, 240, 470)]
        rows.append(
            (
                name,
                *checkpoints,
                sim.battery.discharge_cycles,
            )
        )
    print_table(
        ["scheme", "t=0", "t=60", "t=120", "t=240", "t=470", "cycles"],
        rows,
        title="Fig 18: battery SoC over time under DOPE",
    )

    capping, shaving = sims["capping"], sims["shaving"]
    anti = sims["anti-dope (switching)"]

    # Capping never uses the battery.
    assert capping.battery.delivered_j == 0.0
    assert capping.battery.soc_fraction == 1.0
    # Shaving exhausts it against the sustained peak...
    assert shaving.battery.soc_fraction < 0.15
    # ...within roughly the 2-minute full-load autonomy.
    t, soc = soc_series(shaving)
    exhausted_at = float(t[np.argmax(soc < 0.10)])
    assert exhausted_at < 240.0
    # Anti-DOPE discharges once per attack change and recharges: several
    # distinct cycles, SoC healthy at the end.
    assert anti.battery.discharge_cycles >= 3
    assert anti.battery.soc_fraction > 0.5
    t, soc = soc_series(anti)
    assert float(np.min(soc)) > 0.3  # transitions, not rides
    # Recharge actually happened after a discharge (saw-tooth).
    dips = np.where(np.diff(soc) < -1e-6)[0]
    rises = np.where(np.diff(soc) > 1e-6)[0]
    assert len(dips) > 0 and len(rises) > 0
    assert rises.max() > dips.min()
