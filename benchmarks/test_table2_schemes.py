"""Table 2 — the evaluated power-management schemes.

Instantiates every scheme against the paper rack and reports its
configuration hooks (NLB policy / admission filter / battery use),
verifying each scheme exposes exactly the mechanism Table 2 describes.
"""

from repro import (
    AntiDopeScheme,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis import print_table


def test_table2_scheme_matrix(benchmark):
    def build():
        rows = []
        for factory, feature in (
            (CappingScheme, "performance scaling only"),
            (ShavingScheme, "UPS based peak shaving"),
            (TokenScheme, "power-based token bucket"),
            (AntiDopeScheme, "request-aware (PDF + RPM)"),
        ):
            sim = DataCenterSimulation(SimulationConfig(), scheme=factory())
            scheme = sim.scheme
            rows.append(
                (
                    scheme.name,
                    feature,
                    scheme.forwarding_policy(sim.rack.servers) is not None,
                    scheme.admission_filter() is not None,
                    isinstance(scheme, (ShavingScheme, AntiDopeScheme)),
                )
            )
        return rows

    rows = benchmark(build)
    print_table(
        ["scheme", "feature", "custom NLB policy", "NLB filter", "uses battery"],
        rows,
        title="Table 2: evaluated power management schemes",
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["capping"][2:5] == (False, False, False)
    assert by_name["shaving"][2:5] == (False, False, True)
    assert by_name["token"][2:5] == (False, True, False)
    assert by_name["anti-dope"][2:5] == (True, False, True)
