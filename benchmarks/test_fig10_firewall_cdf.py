"""Fig. 10 — CDF of power with and without firewalls.

A blatant flood (the paper's 1000 req/s from few sources) with and
without the DDoS-deflate firewall, per traffic type.  Shapes:

* without the firewall the heavy types hold power high (solid lines);
* with the firewall the flood is caught and the power distribution
  collapses toward idle (dotted lines) — but *partial high-power
  spikes remain* because of the defence's initiating delay;
* high-volume traffic is the easiest to catch.
"""

import numpy as np

from repro import DataCenterSimulation, NullScheme, SimulationConfig
from repro.analysis import EmpiricalCDF, print_table
from repro.workloads import VICTIM_TYPES, VOLUME_DOS

WINDOW_S = 180.0
ATTACK_RATE = 1000.0
NUM_AGENTS = 4  # 250 req/s per agent >> the 150 req/s threshold


def measure(rtype, use_firewall):
    cfg = SimulationConfig(seed=5, use_firewall=use_firewall)
    sim = DataCenterSimulation(cfg, scheme=NullScheme())
    sim.add_normal_traffic(rate_rps=20)
    sim.add_flood(
        mix=rtype,
        rate_rps=ATTACK_RATE,
        num_agents=NUM_AGENTS,
        start_s=10,
        closed_loop=False,
        label=f"flood-{rtype.name}",
    )
    sim.run(WINDOW_S)
    powers = sim.meter.powers()[10:]
    return sim, powers


def test_fig10_firewall_cdf(benchmark):
    types = list(VICTIM_TYPES) + [VOLUME_DOS]

    def sweep():
        return {
            (t.name, fw): measure(t, fw) for t in types for fw in (False, True)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for t in types:
        _, p_open = results[(t.name, False)]
        sim_fw, p_fw = results[(t.name, True)]
        cdf_open = EmpiricalCDF(p_open)
        cdf_fw = EmpiricalCDF(p_fw)
        rows.append(
            (
                t.name,
                cdf_open.median(),
                cdf_fw.median(),
                float(np.max(p_fw)),
                sim_fw.firewall.stats.first_detection_time_s,
                sim_fw.firewall.stats.bans,
            )
        )
    print_table(
        [
            "type",
            "median W (no fw)",
            "median W (fw)",
            "peak W (fw)",
            "detected at s",
            "bans",
        ],
        rows,
        title="Fig 10: power with vs without firewall (1000 rps from 4 agents)",
    )

    for t in types:
        sim_fw, p_fw = results[(t.name, True)]
        _, p_open = results[(t.name, False)]
        # The firewall catches the blatant flood...
        assert sim_fw.firewall.stats.bans >= NUM_AGENTS
        # ...after the initiating delay, during which power spiked.
        assert sim_fw.firewall.stats.first_detection_time_s >= 10.0
        assert float(np.max(p_fw)) > float(np.median(p_fw)) + 20.0
    # Heavy types: firewalled median far below unfirewalled median.
    for t in ("colla-filt", "k-means", "word-count"):
        _, p_open = results[(t, False)]
        _, p_fw = results[(t, True)]
        assert np.median(p_fw) < np.median(p_open) - 50.0
