"""Ablation — the suspect-list power threshold.

The threshold decides which URLs PDF isolates.  Too strict (only the
very hottest endpoint) lets un-isolated heavy floods hit the innocent
pool; too loose drags most legitimate traffic onto the small suspect
pool.  The default (0.70 × nameplate) catches exactly the paper's
attack-capable trio.
"""

from repro import AntiDopeScheme, BudgetLevel
from repro.analysis import print_table
from repro.cluster import ServerPowerModel
from repro.core import SuspectList
from repro.workloads import ALL_TYPES

from _support import normal_latency, run_attack_scenario

THRESHOLDS = (0.60, 0.70, 0.85, 0.99)


def test_ablation_suspect_threshold(benchmark):
    def sweep():
        out = {}
        for threshold in THRESHOLDS:
            sim = run_attack_scenario(
                lambda t=threshold: AntiDopeScheme(suspect_threshold_fraction=t),
                BudgetLevel.LOW,
            )
            out[threshold] = sim
        return out

    sims = benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = ServerPowerModel()
    rows = []
    for threshold, sim in sims.items():
        sl = SuspectList.from_model(ALL_TYPES, model, threshold)
        stats = normal_latency(sim)
        rows.append(
            (
                threshold,
                len(sl.suspect_urls),
                stats.mean * 1e3,
                stats.p90 * 1e3,
                sim.meter.peak_power(),
            )
        )
    print_table(
        ["threshold", "suspect urls", "mean ms", "p90 ms", "peak W"],
        rows,
        title="Ablation: suspect-list threshold (Low-PB, DOPE attack)",
    )

    by_threshold = {r[0]: r for r in rows}
    # 0.70 isolates the paper's trio; 0.99 isolates only Colla-Filt.
    assert by_threshold[0.70][1] == 3
    assert by_threshold[0.99][1] == 1
    # A near-blind threshold (0.99) leaks K-means/Word-Count floods onto
    # the innocent pool: worse tail than the default.
    default_p90 = by_threshold[0.70][3]
    blind_p90 = by_threshold[0.99][3]
    assert default_p90 < blind_p90
