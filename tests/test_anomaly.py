"""Unit tests for the aggregate anomaly detector."""

import numpy as np
import pytest

from repro.network.anomaly import AggregateAnomalyDetector


def feed_steady(engine, detector, rate, duration, sources=20, start=0.0):
    """Feed *rate* req/s spread over *sources* ids during the window."""
    gap = 1.0 / rate
    n = int(duration / gap)
    for i in range(n):
        t = start + i * gap
        engine.schedule_at(t, lambda s=i % sources: detector.observe(s))


class TestLearning:
    def test_learns_baseline_rate(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=60.0)
        engine.run(until=60.0)
        assert detector.learned_rate_rps == pytest.approx(40.0, rel=0.1)

    def test_no_alarms_on_steady_traffic(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=120.0)
        engine.run(until=120.0)
        assert detector.stats.alarm_count == 0

    def test_warmup_suppresses_early_alarms(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0, warmup_windows=6)
        detector.attach(engine)
        # Wild swings inside the warmup only.
        feed_steady(engine, detector, rate=200.0, duration=20.0)
        engine.run(until=30.0)
        assert detector.stats.alarm_count == 0


class TestDetectionWithoutAttribution:
    def test_dope_step_raises_aggregate_alarm(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0, offender_rps=50.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=60.0)
        # DOPE onset: +200 rps over 40 agents from t=60.
        feed_steady(
            engine, detector, rate=200.0, duration=30.0, sources=40, start=60.0
        )
        feed_steady(engine, detector, rate=40.0, duration=30.0, start=60.0)
        engine.run(until=90.0)
        assert detector.stats.alarm_count >= 1

    def test_but_no_source_is_attributable(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0, offender_rps=50.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=60.0)
        feed_steady(
            engine, detector, rate=200.0, duration=30.0, sources=40, start=60.0
        )
        engine.run(until=90.0)
        assert detector.stats.alarm_count >= 1
        for alarm in detector.stats.alarms:
            # 200 rps over 40 sources = 5 rps each — nobody crosses 50.
            assert alarm.offenders == []

    def test_single_source_flood_is_attributable(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0, offender_rps=50.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=60.0)
        feed_steady(
            engine, detector, rate=300.0, duration=20.0, sources=1, start=60.0
        )
        engine.run(until=80.0)
        assert detector.stats.alarm_count >= 1
        assert any(alarm.offenders for alarm in detector.stats.alarms)

    def test_alarmed_windows_do_not_poison_baseline(self, engine):
        detector = AggregateAnomalyDetector(window_s=5.0)
        detector.attach(engine)
        feed_steady(engine, detector, rate=40.0, duration=60.0)
        feed_steady(
            engine, detector, rate=300.0, duration=60.0, sources=40, start=60.0
        )
        feed_steady(engine, detector, rate=40.0, duration=60.0, start=60.0)
        engine.run(until=120.0)
        # Despite a minute of attack, the learned baseline stays near
        # the legitimate 40 rps (alarmed windows are excluded).
        assert detector.learned_rate_rps == pytest.approx(40.0, rel=0.2)


class TestLifecycle:
    def test_double_attach_rejected(self, engine):
        detector = AggregateAnomalyDetector()
        detector.attach(engine)
        with pytest.raises(RuntimeError):
            detector.attach(engine)

    def test_detach_stops_windows(self, engine):
        detector = AggregateAnomalyDetector(window_s=1.0)
        detector.attach(engine)
        engine.run(until=3.0)
        detector.detach()
        engine.run(until=10.0)
        assert detector.stats.windows == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateAnomalyDetector(alpha=0.0)
        with pytest.raises(ValueError):
            AggregateAnomalyDetector(z_threshold=0.0)
