"""Unit tests for power budgets and provisioning levels."""

import pytest

from repro.power import BudgetLevel, PowerBudget


class TestBudgetLevels:
    def test_paper_fractions(self):
        assert BudgetLevel.NORMAL.fraction == 1.00
        assert BudgetLevel.HIGH.fraction == 0.90
        assert BudgetLevel.MEDIUM.fraction == 0.85
        assert BudgetLevel.LOW.fraction == 0.80

    def test_for_level_scales_supply(self):
        budget = PowerBudget.for_level(BudgetLevel.LOW, 400.0)
        assert budget.supply_w == pytest.approx(320.0)
        assert budget.level is BudgetLevel.LOW

    def test_all_levels(self):
        budgets = PowerBudget.all_levels(400.0)
        assert len(budgets) == 4
        assert budgets[BudgetLevel.MEDIUM].supply_w == pytest.approx(340.0)


class TestBudgetArithmetic:
    def test_headroom(self):
        budget = PowerBudget(300.0)
        assert budget.headroom(250.0) == pytest.approx(50.0)
        assert budget.headroom(350.0) == pytest.approx(-50.0)

    def test_deficit_clamped_at_zero(self):
        budget = PowerBudget(300.0)
        assert budget.deficit(250.0) == 0.0
        assert budget.deficit(350.0) == pytest.approx(50.0)

    def test_violated_with_tolerance(self):
        budget = PowerBudget(300.0)
        assert budget.violated(301.0)
        assert not budget.violated(301.0, tolerance_w=2.0)
        assert not budget.violated(300.0)

    def test_invalid_supply_rejected(self):
        with pytest.raises(ValueError):
            PowerBudget(0.0)
