"""Unit tests for the UPS battery model."""

import pytest

from repro.power import Battery


def make_battery(**kwargs):
    defaults = dict(
        capacity_j=1000.0, max_discharge_w=100.0, max_charge_w=50.0,
        efficiency=0.9, initial_soc=1.0,
    )
    defaults.update(kwargs)
    return Battery(**defaults)


class TestSizing:
    def test_for_rack_paper_sizing(self):
        # 2 minutes at full rack load (paper Section 6.4).
        battery = Battery.for_rack(400.0, sustain_s=120.0)
        assert battery.capacity_j == pytest.approx(400.0 * 120.0)
        assert battery.max_discharge_w == pytest.approx(400.0)

    def test_initial_soc(self):
        assert make_battery(initial_soc=0.5).soc_fraction == pytest.approx(0.5)


class TestDischarge:
    def test_delivers_requested_power(self):
        battery = make_battery()
        delivered = battery.discharge(50.0, dt=2.0)
        assert delivered == pytest.approx(50.0)
        assert battery.soc_j == pytest.approx(900.0)
        assert battery.delivered_j == pytest.approx(100.0)

    def test_rate_limited(self):
        battery = make_battery(max_discharge_w=30.0)
        assert battery.discharge(100.0, dt=1.0) == pytest.approx(30.0)

    def test_energy_limited(self):
        battery = make_battery(capacity_j=50.0)
        delivered = battery.discharge(100.0, dt=1.0)
        assert delivered == pytest.approx(50.0)
        assert battery.empty

    def test_empty_battery_delivers_nothing(self):
        battery = make_battery(initial_soc=0.0)
        assert battery.discharge(10.0, dt=1.0) == 0.0

    def test_zero_request_is_noop(self):
        battery = make_battery()
        assert battery.discharge(0.0, dt=1.0) == 0.0
        assert battery.soc_fraction == 1.0

    def test_cycle_counting(self):
        battery = make_battery()
        battery.discharge(10.0, 1.0)
        battery.discharge(10.0, 1.0)  # same cycle, contiguous
        assert battery.discharge_cycles == 1
        battery.idle()
        battery.discharge(10.0, 1.0)  # new cycle
        assert battery.discharge_cycles == 2


class TestCharge:
    def test_accepts_power_with_efficiency_loss(self):
        battery = make_battery(initial_soc=0.0)
        accepted = battery.charge(40.0, dt=1.0)
        assert accepted == pytest.approx(40.0)
        assert battery.soc_j == pytest.approx(40.0 * 0.9)
        assert battery.absorbed_grid_j == pytest.approx(40.0)

    def test_rate_limited(self):
        battery = make_battery(initial_soc=0.0)
        assert battery.charge(500.0, dt=1.0) == pytest.approx(50.0)

    def test_full_battery_accepts_nothing(self):
        battery = make_battery()
        assert battery.charge(10.0, dt=1.0) == 0.0

    def test_never_overfills(self):
        battery = make_battery(capacity_j=100.0, initial_soc=0.95)
        battery.charge(50.0, dt=1.0)
        assert battery.soc_j <= battery.capacity_j + 1e-9

    def test_charge_interrupts_discharge_cycle(self):
        battery = make_battery()
        battery.discharge(10.0, 1.0)
        battery.charge(10.0, 1.0)
        battery.discharge(10.0, 1.0)
        assert battery.discharge_cycles == 2


class TestAvailablePower:
    def test_rate_bound(self):
        battery = make_battery(max_discharge_w=30.0)
        assert battery.available_power(1.0) == pytest.approx(30.0)

    def test_energy_bound(self):
        battery = make_battery(capacity_j=10.0)
        assert battery.available_power(1.0) == pytest.approx(10.0)
        assert battery.available_power(2.0) == pytest.approx(5.0)


class TestValidation:
    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            make_battery(efficiency=0.0)
        with pytest.raises(ValueError):
            make_battery(efficiency=1.0)

    def test_negative_power_rejected(self):
        battery = make_battery()
        with pytest.raises(ValueError):
            battery.discharge(-1.0, 1.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0, 1.0)

    def test_zero_dt_rejected(self):
        battery = make_battery()
        with pytest.raises(ValueError):
            battery.discharge(1.0, 0.0)
