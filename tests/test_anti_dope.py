"""Unit tests for the assembled Anti-DOPE scheme."""

import pytest

from repro import AntiDopeScheme, BudgetLevel, DataCenterSimulation, SimulationConfig
from repro.core import SuspectList
from repro.power import PowerBudget
from repro.workloads import ALL_TYPES, COLLA_FILT, TEXT_CONT, uniform_mix


class TestBinding:
    def test_builds_suspect_list_from_model(self, engine, rack):
        scheme = AntiDopeScheme()
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        assert scheme.suspect_list is not None
        assert scheme.suspect_list.is_suspect(COLLA_FILT.url)

    def test_respects_prebuilt_suspect_list(self, engine, rack, power_model):
        custom = SuspectList.from_model(ALL_TYPES, power_model, 0.95)
        scheme = AntiDopeScheme(suspect_list=custom)
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        assert scheme.suspect_list is custom

    def test_pdf_policy_exposed_as_forwarding_policy(self, engine, rack):
        scheme = AntiDopeScheme(suspect_pool_size=2)
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        policy = scheme.forwarding_policy(rack.servers)
        assert policy is scheme.pdf
        assert scheme.suspect_server_ids == [2, 3]

    def test_no_admission_filter(self, engine, rack):
        scheme = AntiDopeScheme()
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        assert scheme.admission_filter() is None

    def test_suspect_queue_regulation_applied(self, engine, rack):
        scheme = AntiDopeScheme(suspect_queue_factor=3.0)
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        suspect = scheme.pdf.suspect_pool[0]
        assert suspect.queue_capacity == 3 * suspect.num_workers
        for innocent in scheme.pdf.innocent_pool:
            assert innocent.queue_capacity == 512

    def test_queue_regulation_disabled_with_none(self, engine, rack):
        scheme = AntiDopeScheme(suspect_queue_factor=None)
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        assert scheme.pdf.suspect_pool[0].queue_capacity == 512

    def test_battery_ablation_arm(self, engine, rack):
        from repro.power import Battery

        battery = Battery.for_rack(400.0)
        scheme = AntiDopeScheme(use_battery_transition=False)
        scheme.bind(engine, rack, PowerBudget(320.0), battery, 1.0)
        assert scheme.rpm.battery is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AntiDopeScheme(suspect_pool_size=0)
        with pytest.raises(ValueError):
            AntiDopeScheme(suspect_queue_factor=0.5)
        with pytest.raises(ValueError):
            AntiDopeScheme(suspect_threshold_fraction=1.0)

    def test_step_before_bind_rejected(self):
        with pytest.raises(RuntimeError):
            AntiDopeScheme().step()


class TestEndToEnd:
    def test_attack_confined_to_suspect_pool(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=11),
            scheme=AntiDopeScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        sim.add_flood(mix=COLLA_FILT, rate_rps=200, num_agents=20, start_s=10)
        sim.run(90)
        suspect_id = sim.scheme.suspect_server_ids[0]
        by_server = {}
        for rec in sim.collector.records:
            if rec.type_name == "colla-filt" and rec.server_id is not None:
                by_server[rec.server_id] = by_server.get(rec.server_id, 0) + 1
        # Every Colla-Filt request landed on the suspect server.
        assert set(by_server) == {suspect_id}

    def test_power_never_exceeds_budget_steadily(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=11),
            scheme=AntiDopeScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        sim.add_flood(mix=COLLA_FILT, rate_rps=300, num_agents=20, start_s=10)
        sim.run(120)
        powers = sim.meter.powers()
        # Transients during reconfiguration slots are allowed; steady
        # state must comply: less than 5 % of samples over budget.
        over = (powers > sim.budget.supply_w).mean()
        assert over < 0.05

    def test_normal_latency_shielded_from_attack(self):
        """The headline property: legitimate light traffic barely
        notices a DOPE flood under Anti-DOPE."""
        from repro.workloads import TrafficClass

        cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=11)
        quiet = DataCenterSimulation(cfg, scheme=AntiDopeScheme())
        quiet.add_normal_traffic(rate_rps=30)
        quiet.run(120)
        base = quiet.latency_stats(type_name="text-cont", start_s=30)

        noisy = DataCenterSimulation(cfg, scheme=AntiDopeScheme())
        noisy.add_normal_traffic(rate_rps=30)
        noisy.add_flood(mix=COLLA_FILT, rate_rps=300, num_agents=20, start_s=10)
        noisy.run(120)
        under_attack = noisy.latency_stats(type_name="text-cont", start_s=30)
        assert under_attack.mean < base.mean * 2.0
