"""Unit tests for source pools and the registry."""

import pytest

from repro.network import SourcePool, SourceRegistry
from repro.workloads import TrafficClass


class TestSourcePool:
    def test_id_block(self):
        pool = SourcePool("bots", TrafficClass.ATTACK, size=5, first_id=10)
        assert list(pool.ids) == [10, 11, 12, 13, 14]
        assert len(pool) == 5

    def test_contains(self):
        pool = SourcePool("bots", TrafficClass.ATTACK, size=3, first_id=4)
        assert pool.contains(4)
        assert pool.contains(6)
        assert not pool.contains(3)
        assert not pool.contains(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            SourcePool("", TrafficClass.NORMAL, 1, 0)
        with pytest.raises(ValueError):
            SourcePool("x", TrafficClass.NORMAL, 0, 0)


class TestSourceRegistry:
    def test_blocks_do_not_overlap(self):
        reg = SourceRegistry()
        a = reg.allocate("users", TrafficClass.NORMAL, 100)
        b = reg.allocate("bots", TrafficClass.ATTACK, 50)
        assert set(a.ids).isdisjoint(set(b.ids))
        assert reg.total_sources == 150

    def test_pool_of_resolves_owner(self):
        reg = SourceRegistry()
        reg.allocate("users", TrafficClass.NORMAL, 10)
        bots = reg.allocate("bots", TrafficClass.ATTACK, 10)
        assert reg.pool_of(15) is bots
        assert reg.pool_of(15).traffic_class is TrafficClass.ATTACK

    def test_pool_of_unallocated_raises(self):
        reg = SourceRegistry()
        reg.allocate("users", TrafficClass.NORMAL, 10)
        with pytest.raises(KeyError):
            reg.pool_of(10)

    def test_get_by_label(self):
        reg = SourceRegistry()
        pool = reg.allocate("alios", TrafficClass.NORMAL, 3)
        assert reg.get("alios") is pool
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_duplicate_label_rejected(self):
        reg = SourceRegistry()
        reg.allocate("x", TrafficClass.NORMAL, 1)
        with pytest.raises(ValueError):
            reg.allocate("x", TrafficClass.NORMAL, 1)

    def test_pools_listing_in_order(self):
        reg = SourceRegistry()
        reg.allocate("a", TrafficClass.NORMAL, 1)
        reg.allocate("b", TrafficClass.ATTACK, 1)
        assert [p.label for p in reg.pools] == ["a", "b"]
