"""Unit tests for the tabular reporter."""

import pytest

from repro.analysis import format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert len(lines) == 4

    def test_number_formatting(self):
        out = format_table(["v"], [[1234.5678], [12.345], [0.12345]])
        assert "1235" in out  # large numbers rounded to integers
        assert "12.3" in out
        assert "0.123" in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["v"], [[float("nan")]])
        assert out.splitlines()[-1].strip() == "-"

    def test_bool_rendering(self):
        out = format_table(["flag"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_title_included(self):
        out = format_table(["a"], [[1]], title="Table 9")
        assert out.startswith("Table 9")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
