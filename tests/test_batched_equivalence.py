"""Golden equivalence: the batched engine reproduces the scalar engine.

The aggregate-flow refactor's contract is that ``mode="batched"`` is a
pure execution optimisation — for every scheme, scenario and seed, the
model output is **byte-identical** to the per-request scalar engine:

* every model counter (the telemetry table minus the declared
  execution counters, which measure how the run was computed);
* the :class:`~repro.obs.manifest.RunManifest` deterministic hash;
* the full completion-record stream, field for field;
* the availability decomposition and the exported metrics (CSV rows,
  collector summary).

The matrix below runs every power-management scheme from the paper's
Table 2 against three scenario shapes (the DOPE attack, a benign flash
crowd, and a faulted chaos run) across several seeds, on both engines,
and asserts exact equality throughout.  The opt-in fluid mode is
deliberately outside this contract (statistically faithful, not
byte-identical); its conservation properties are covered separately
here and in ``test_property_equivalence.py``.
"""

import io

import pytest

from repro import (
    AntiDopeScheme,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis.export import collector_summary, records_to_csv
from repro.bench import ATTACK_MIX
from repro.faults import FaultInjector, FaultPlan
from repro.obs.contract import EXECUTION_COUNTER_NAMES
from repro.power import BudgetLevel
from repro.sim.engine import EventEngine
from repro.workloads import TEXT_CONT, VOLUME_DOS, WORD_COUNT, uniform_mix

DURATION_S = 20.0

SCHEMES = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
}

SEEDS = (1, 2, 3)

FLASH_MIX = uniform_mix((TEXT_CONT, WORD_COUNT))


def _attack(sim: DataCenterSimulation) -> None:
    """The evaluation scenario: background load + closed-loop DOPE flood."""
    sim.add_normal_traffic(rate_rps=40.0)
    sim.add_flood(mix=ATTACK_MIX, rate_rps=220.0, num_agents=20, start_s=5.0)


def _flash_crowd(sim: DataCenterSimulation) -> None:
    """A benign surge: open-loop Poisson burst that trips no firewall ban."""
    sim.add_normal_traffic(rate_rps=60.0)
    sim.add_flood(
        mix=FLASH_MIX,
        rate_rps=150.0,
        num_agents=30,
        start_s=4.0,
        closed_loop=False,
        poisson=True,
        label="flash-crowd",
    )


def _chaos(sim: DataCenterSimulation) -> None:
    """The attack scenario with injected meter noise and a server crash."""
    plan = (
        FaultPlan(seed=sim.config.seed)
        .meter_noise(3.0, sigma_w=8.0)
        .server_crash(DURATION_S / 2.0, 0, DURATION_S / 4.0)
    )
    FaultInjector(sim, plan).arm()
    _attack(sim)


SCENARIOS = {
    "attack": _attack,
    "flash-crowd": _flash_crowd,
    "chaos": _chaos,
}


def _run(scheme_factory, scenario: str, seed: int, mode: str, fluid=False):
    cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed)
    engine = EventEngine(mode=mode, fluid=fluid)
    sim = DataCenterSimulation(cfg, scheme=scheme_factory(), engine=engine)
    SCENARIOS[scenario](sim)
    sim.run(DURATION_S)
    return sim


def _model_counters(sim: DataCenterSimulation) -> dict:
    return {
        name: value
        for name, value in sim.obs.counters.as_dict().items()
        if name not in EXECUTION_COUNTER_NAMES
    }


def _record_rows(sim: DataCenterSimulation) -> list:
    return [
        (
            r.request_id,
            r.type_name,
            r.traffic_class,
            r.outcome,
            r.arrival_time_s,
            r.finish_time_s,
            r.server_id,
            r.weight,
        )
        for r in sim.collector.records
    ]


def _csv(sim: DataCenterSimulation) -> str:
    buffer = io.StringIO()
    records_to_csv(sim.collector.records, buffer)
    return buffer.getvalue()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_batched_path_is_byte_identical(scheme, scenario, seed):
    scalar = _run(SCHEMES[scheme], scenario, seed, mode="scalar")
    batched = _run(SCHEMES[scheme], scenario, seed, mode="batched")

    # Model counters (everything but the declared execution counters)
    # agree exactly; the manifest hash seals the same table plus the
    # config identity.
    assert _model_counters(scalar) == _model_counters(batched)
    assert (
        scalar.run_manifest("eq").deterministic_hash()
        == batched.run_manifest("eq").deterministic_hash()
    )

    # The full completion-record stream is identical, field for field,
    # in order — same ids, same float times, same outcomes.
    assert _record_rows(scalar) == _record_rows(batched)

    # Derived metrics and exports follow from the above, but assert
    # them directly so a representation change cannot slip through.
    assert scalar.availability_report() == batched.availability_report()
    assert collector_summary(scalar.collector) == collector_summary(
        batched.collector
    )
    assert _csv(scalar) == _csv(batched)


def test_execution_counters_are_the_only_divergence():
    """Batched runs do report different *work* — that is the point."""
    scalar = _run(AntiDopeScheme, "attack", 1, mode="scalar")
    batched = _run(AntiDopeScheme, "attack", 1, mode="batched")
    scalar_exec = {
        n: scalar.obs.counters.get(n) for n in EXECUTION_COUNTER_NAMES
    }
    batched_exec = {
        n: batched.obs.counters.get(n) for n in EXECUTION_COUNTER_NAMES
    }
    assert scalar_exec != batched_exec
    assert batched_exec["engine.cohorts_dispatched"] > 0
    assert scalar_exec["engine.cohorts_dispatched"] == 0


def test_fluid_mode_conserves_requests_outside_the_contract():
    """Fluid runs are approximate but never lose or invent requests."""
    cfg = SimulationConfig(
        budget_level=BudgetLevel.LOW, seed=5, firewall_poll_s=1.0
    )
    engine = EventEngine(mode="batched", fluid=True)
    sim = DataCenterSimulation(cfg, engine=engine)
    sim.add_normal_traffic(rate_rps=20.0)
    sim.add_flood(
        mix=VOLUME_DOS,
        rate_rps=4000.0,
        num_agents=8,
        closed_loop=False,
        poisson=True,
        label="volume-dos",
    )
    sim.run(30.0)
    assert sim.obs.counters.get("engine.fluid_segments") > 0
    generated = sum(g.generated for g in sim.generators)
    report = sim.availability_report(traffic_class=None)
    in_flight = sim.rack.total_in_system()
    assert report.offered + in_flight == generated
    assert (
        report.served_within_sla
        + report.served_late
        + report.dropped
        == report.offered
    )
