"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import EventEngine


class TestScheduling:
    def test_schedule_relative(self, engine):
        fired = []
        engine.schedule(2.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [2.0]

    def test_schedule_absolute(self, engine):
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [5.0]

    def test_schedule_in_past_rejected(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="past"):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_cancel_prevents_dispatch(self, engine):
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(1))
        engine.cancel(event)
        engine.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_clock_at_deadline(self, engine):
        engine.schedule(10.0, lambda: None)
        end = engine.run(until=4.0)
        assert end == 4.0
        assert engine.pending() == 1

    def test_events_at_deadline_execute(self, engine):
        fired = []
        engine.schedule(4.0, lambda: fired.append(1))
        engine.run(until=4.0)
        assert fired == [1]

    def test_run_drains_queue_without_deadline(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.pending() == 0
        assert engine.dispatched == 3

    def test_clock_advances_to_deadline_when_queue_drains(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_sequential_runs_continue(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.run(until=2.0)
        assert fired == ["a"]
        engine.run(until=10.0)
        assert fired == ["a", "b"]

    def test_reentrant_run_rejected(self, engine):
        def bad():
            engine.run()

        engine.schedule(1.0, bad)
        with pytest.raises(RuntimeError, match="re-entrant"):
            engine.run()

    def test_stop_halts_dispatch(self, engine):
        fired = []

        def first():
            fired.append(1)
            engine.stop()

        engine.schedule(1.0, first)
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_events_scheduled_during_run_execute(self, engine):
        fired = []

        def outer():
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == ["inner"]
        assert engine.now == 2.0


class TestEvery:
    def test_recurrence_fires_at_interval(self, engine):
        fired = []
        engine.every(2.0, lambda: fired.append(engine.now))
        engine.run(until=7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_start_delay_overrides_first_interval(self, engine):
        fired = []
        engine.every(5.0, lambda: fired.append(engine.now), start_delay_s=1.0)
        engine.run(until=12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_stop_function_cancels(self, engine):
        fired = []
        stop = engine.every(1.0, lambda: fired.append(engine.now))
        engine.schedule(3.5, stop)
        engine.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_from_inside_callback(self, engine):
        fired = []
        holder = {}

        def cb():
            fired.append(engine.now)
            if len(fired) == 2:
                holder["stop"]()

        holder["stop"] = engine.every(1.0, cb)
        engine.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_zero_interval_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.every(0.0, lambda: None)
