"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis import EmpiricalCDF
from repro.cluster import FrequencyLadder, ServerPowerModel
from repro.core import DPMPlanner
from repro.metrics import LatencyStats
from repro.power import Battery, PowerTokenBucket
from repro.sim import EventQueue
from repro.workloads import ALL_TYPES, RequestType

# ----------------------------------------------------------------------
# Frequency ladder
# ----------------------------------------------------------------------

levels = st.integers(min_value=0, max_value=12)
steps = st.integers(min_value=0, max_value=20)


class TestLadderProperties:
    @given(level=levels, down=steps, up=steps)
    def test_stepping_stays_on_ladder(self, level, down, up):
        ladder = FrequencyLadder()
        out = ladder.step_up(ladder.step_down(level, down), up)
        assert 0 <= out <= ladder.max_level

    @given(level=levels)
    def test_ratio_bounds(self, level):
        ladder = FrequencyLadder()
        assert 0.5 <= ladder.ratio(level) <= 1.0

    @given(a=levels, b=levels)
    def test_ratio_monotone(self, a, b):
        ladder = FrequencyLadder()
        if a <= b:
            assert ladder.ratio(a) <= ladder.ratio(b)


# ----------------------------------------------------------------------
# Power model
# ----------------------------------------------------------------------

ratios = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
type_idx = st.integers(min_value=0, max_value=len(ALL_TYPES) - 1)


class TestPowerModelProperties:
    @given(r=ratios, idx=type_idx, n=st.integers(min_value=0, max_value=8))
    def test_power_within_physical_bounds(self, r, idx, n):
        model = ServerPowerModel()
        rtype = ALL_TYPES[idx]
        power = model.power([rtype] * n, r)
        assert model.idle_power(r) <= power <= model.nameplate_w + 1e-9

    @given(r1=ratios, r2=ratios, idx=type_idx)
    def test_power_monotone_in_frequency(self, r1, r2, idx):
        assume(r1 <= r2)
        model = ServerPowerModel()
        rtype = ALL_TYPES[idx]
        assert model.full_load_power(rtype, r1) <= model.full_load_power(
            rtype, r2
        ) + 1e-9

    @given(r=ratios, idx=type_idx)
    def test_service_time_never_faster_than_nominal(self, r, idx):
        rtype = ALL_TYPES[idx]
        assert rtype.service_time(r) >= rtype.base_service_s - 1e-12

    @given(r=ratios, idx=type_idx)
    def test_speedup_bounds(self, r, idx):
        rtype = ALL_TYPES[idx]
        assert 0.0 < rtype.speedup(r) <= 1.0


# ----------------------------------------------------------------------
# Battery
# ----------------------------------------------------------------------

flows = st.lists(
    st.tuples(
        st.sampled_from(["charge", "discharge"]),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    ),
    max_size=50,
)


class TestBatteryProperties:
    @given(ops=flows)
    def test_soc_always_within_capacity(self, ops):
        battery = Battery(1000.0, 100.0, 50.0, initial_soc=0.5)
        for op, power, dt in ops:
            if op == "charge":
                battery.charge(power, dt)
            else:
                battery.discharge(power, dt)
            assert -1e-6 <= battery.soc_j <= battery.capacity_j + 1e-6

    @given(ops=flows)
    def test_energy_conservation(self, ops):
        """soc = initial + stored(charged) − delivered, exactly."""
        battery = Battery(1000.0, 100.0, 50.0, efficiency=0.9, initial_soc=0.5)
        initial = battery.soc_j
        for op, power, dt in ops:
            if op == "charge":
                battery.charge(power, dt)
            else:
                battery.discharge(power, dt)
        stored = battery.absorbed_grid_j * battery.efficiency
        assert battery.soc_j == pytest.approx(
            initial + stored - battery.delivered_j, abs=1e-6
        )

    @given(
        power=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        dt=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    def test_discharge_never_exceeds_request_or_limit(self, power, dt):
        battery = Battery(1000.0, 100.0, 50.0)
        delivered = battery.discharge(power, dt)
        assert delivered <= min(power, battery.max_discharge_w) + 1e-9


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------


class TestTokenBucketProperties:
    @given(
        costs=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=60
        ),
        refill=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        burst=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_tokens_never_negative_or_above_capacity(self, costs, refill, burst):
        bucket = PowerTokenBucket(refill, burst, energy_cost_fn=lambda r: r)
        t = 0.0
        for cost in costs:
            t += 0.01

            class FakeReq:
                rtype = None

            bucket.energy_cost_fn = lambda r, c=cost: c
            bucket.admit(FakeReq(), now=t)
            assert -1e-9 <= bucket.tokens_j <= bucket.capacity_j + 1e-9

    @given(
        n=st.integers(min_value=1, max_value=100),
        cost=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    def test_admitted_energy_bounded_by_refill_plus_burst(self, n, cost):
        """Over any horizon the admitted joules never exceed
        capacity + refill·T — the shaper's defining guarantee."""
        refill, burst = 10.0, 2.0
        bucket = PowerTokenBucket(refill, burst, energy_cost_fn=lambda r: cost)
        horizon = 1.0

        class FakeReq:
            rtype = None

        admitted_j = 0.0
        for i in range(n):
            now = horizon * i / n
            if bucket.admit(FakeReq(), now=now):
                admitted_j += cost
        assert admitted_j <= bucket.capacity_j + refill * horizon + cost


# ----------------------------------------------------------------------
# DPM planner
# ----------------------------------------------------------------------


class TestDPMProperties:
    @given(
        cap=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
        suspect_w=st.floats(min_value=0.1, max_value=20.0),
        innocent_w=st.floats(min_value=0.1, max_value=20.0),
        base=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_feasible_plans_satisfy_cap(self, cap, suspect_w, innocent_w, base):
        planner = DPMPlanner(max_level=12, hysteresis=0.0)
        predict = lambda p, q: base + suspect_w * p + innocent_w * q
        plan = planner.plan(cap, predict, 12, 12)
        if plan.feasible:
            assert plan.predicted_power_w <= cap + 1e-9
        else:
            # Infeasible means even the deepest throttle violates.
            assert predict(0, 0) > cap

    @given(
        cap=st.floats(min_value=100.0, max_value=600.0, allow_nan=False),
        suspect_w=st.floats(min_value=0.1, max_value=20.0),
        innocent_w=st.floats(min_value=0.1, max_value=20.0),
    )
    def test_innocent_only_degraded_when_necessary(self, cap, suspect_w, innocent_w):
        planner = DPMPlanner(max_level=12, hysteresis=0.0)
        predict = lambda p, q: 50.0 + suspect_w * p + innocent_w * q
        plan = planner.plan(cap, predict, 12, 12)
        if plan.degrades_innocent(12):
            assert predict(0, 12) > cap


# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------


class TestEventQueueProperties:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=100
        )
    )
    def test_pops_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while True:
            e = q.pop()
            if e is None:
                break
            popped.append(e.time_s)
        assert popped == sorted(popped)
        assert len(popped) == len(times)


# ----------------------------------------------------------------------
# CDF / latency statistics
# ----------------------------------------------------------------------

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestStatisticsProperties:
    @given(data=samples)
    def test_cdf_monotone_and_bounded(self, data):
        cdf = EmpiricalCDF(data)
        xs = np.linspace(min(data) - 1, max(data) + 1, 50)
        ys = cdf.evaluate(xs)
        assert np.all(np.diff(ys) >= 0)
        assert ys[0] >= 0.0 and ys[-1] == 1.0

    @given(data=samples)
    def test_latency_percentile_ordering(self, data):
        stats = LatencyStats.from_times(data)
        assert (
            stats.minimum
            <= stats.p50
            <= stats.p90
            <= stats.p95
            <= stats.p99
            <= stats.maximum
        )

    @given(data=samples)
    def test_mean_within_min_max(self, data):
        stats = LatencyStats.from_times(data)
        assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9


# ----------------------------------------------------------------------
# Server work conservation under arbitrary DVFS schedules
# ----------------------------------------------------------------------


class TestServerWorkConservation:
    @given(
        levels=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=8),
        gaps=st.lists(
            st.floats(min_value=0.001, max_value=0.05, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_completion_time_equals_integrated_speed(self, levels, gaps):
        """Whatever DVFS schedule is applied mid-service, the request
        finishes exactly when its integrated speed equals its work."""
        from dataclasses import replace

        import numpy as np

        from repro.cluster import Server
        from repro.network import Request
        from repro.sim import EventEngine
        from repro.workloads import COLLA_FILT, TrafficClass

        engine = EventEngine()
        server = Server(0, engine, np.random.default_rng(0))
        rtype = replace(COLLA_FILT, service_cv=0.0)
        done = []
        request = Request(rtype, 0, TrafficClass.NORMAL, 0.0)
        request.on_terminal = lambda r, o, t: done.append(t)
        server.submit(request)
        # Apply the random schedule at cumulative offsets.
        t = 0.0
        schedule = []
        for level, gap in zip(levels, gaps):
            t += gap
            schedule.append((t, level))
            engine.schedule_at(t, lambda lv=level: server.set_level(lv))
        engine.run()
        assert len(done) == 1
        finish = done[0]

        # Reconstruct: integrate speedup over the piecewise schedule.
        ladder = server.ladder
        work = rtype.base_service_s
        now, level, acc = 0.0, 12, 0.0
        points = [p for p in schedule if p[0] < finish] + [(finish, None)]
        for when, new_level in points:
            speed = rtype.speedup(ladder.ratio(level))
            acc += (when - now) * speed
            now = when
            if new_level is not None:
                level = new_level
        assert acc == pytest.approx(work, rel=1e-9)


# ----------------------------------------------------------------------
# Facility allocator composed with budgets
# ----------------------------------------------------------------------


class TestAvailabilityProperties:
    @given(
        rts=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False), max_size=60
        ),
        drops=st.integers(min_value=0, max_value=20),
        sla=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    )
    def test_partition_sums_to_offered(self, rts, drops, sla):
        from repro.metrics import availability
        from repro.network import CompletionRecord, Request, RequestOutcome
        from repro.workloads import TEXT_CONT, TrafficClass

        records = []
        for rt in rts:
            req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
            records.append(CompletionRecord(req, RequestOutcome.COMPLETED, rt))
        for _ in range(drops):
            req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
            records.append(
                CompletionRecord(req, RequestOutcome.DROPPED_TOKEN, 0.0)
            )
        report = availability(records, sla_s=sla)
        assert report.offered == len(records)
        assert (
            report.served_within_sla + report.served_late + report.dropped
            == report.offered
        )
        assert 0.0 <= report.availability <= 1.0
        assert 0.0 <= report.drop_fraction <= 1.0


class TestTimelineProperties:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        bucket=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    )
    def test_buckets_partition_all_records(self, arrivals, bucket):
        from repro.metrics import LatencyTimeline
        from repro.network import CompletionRecord, Request, RequestOutcome
        from repro.workloads import TEXT_CONT, TrafficClass

        records = [
            CompletionRecord(
                Request(TEXT_CONT, 0, TrafficClass.NORMAL, t),
                RequestOutcome.COMPLETED,
                t + 0.01,
            )
            for t in arrivals
        ]
        timeline = LatencyTimeline(records, bucket_s=bucket)
        assert sum(b.offered for b in timeline.buckets) == len(records)
        # Buckets tile the span contiguously.
        for a, b in zip(timeline.buckets, timeline.buckets[1:]):
            assert b.start_s == pytest.approx(a.end_s)
