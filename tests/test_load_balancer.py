"""Unit tests for the NLB pipeline and forwarding policies."""

import pytest

from repro.metrics import MetricsCollector
from repro.network import (
    LeastLoadedPolicy,
    NetworkLoadBalancer,
    NullFirewall,
    RandomPolicy,
    RateLimitFirewall,
    Request,
    RequestOutcome,
    RoundRobinPolicy,
)
from repro.cluster import Rack
from repro.workloads import TEXT_CONT, TrafficClass


def make_request(source=0):
    return Request(TEXT_CONT, source, TrafficClass.NORMAL, 0.0)


class TestRoundRobin:
    def test_cycles_through_backends(self, rack):
        policy = RoundRobinPolicy()
        picks = [policy.select(make_request(), rack.servers).server_id for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy().select(make_request(), [])


class TestLeastLoaded:
    def test_picks_emptiest(self, rack):
        rack.servers[0].submit(make_request())
        rack.servers[1].submit(make_request())
        policy = LeastLoadedPolicy()
        assert policy.select(make_request(), rack.servers).server_id == 2

    def test_tie_broken_by_id(self, rack):
        assert LeastLoadedPolicy().select(make_request(), rack.servers).server_id == 0


class TestRandomPolicy:
    def test_seedable_and_in_range(self, rack):
        import numpy as np

        policy = RandomPolicy(np.random.default_rng(0))
        picks = {policy.select(make_request(), rack.servers).server_id for _ in range(50)}
        assert picks <= {0, 1, 2, 3}
        assert len(picks) > 1


class TestDispatchPipeline:
    def test_forwarding_reaches_server(self, engine, rack, collector):
        nlb = NetworkLoadBalancer(rack.servers, drop_sink=collector.sink)
        assert nlb.dispatch(make_request())
        assert nlb.forwarded == 1
        assert rack.total_in_system() == 1

    def test_firewall_drop_recorded(self, engine, rack, collector):
        fw = RateLimitFirewall(threshold_rps=1.0, poll_interval_s=1.0)
        fw.attach(engine)
        nlb = NetworkLoadBalancer(
            rack.servers, firewall=fw, drop_sink=collector.sink,
            now=lambda: engine.now,
        )
        for _ in range(100):
            nlb.dispatch(make_request(source=5))
        engine.run(until=1.0)
        assert not nlb.dispatch(make_request(source=5))
        rec = collector.records[-1]
        assert rec.outcome is RequestOutcome.DROPPED_FIREWALL

    def test_admission_filter_drop_recorded(self, engine, rack, collector):
        class RejectAll:
            def admit(self, request, now):
                return False

        nlb = NetworkLoadBalancer(
            rack.servers, admission_filter=RejectAll(), drop_sink=collector.sink
        )
        assert not nlb.dispatch(make_request())
        assert collector.records[-1].outcome is RequestOutcome.DROPPED_TOKEN

    def test_queue_full_drop_recorded(self, engine, rng, collector):
        import numpy as np

        rack = Rack(engine, num_servers=1, rng=rng, queue_capacity=0)
        nlb = NetworkLoadBalancer(rack.servers, drop_sink=collector.sink)
        workers = rack.servers[0].num_workers
        for i in range(workers):
            assert nlb.dispatch(make_request(source=i))
        assert not nlb.dispatch(make_request(source=99))
        assert collector.records[-1].outcome is RequestOutcome.DROPPED_QUEUE_FULL
        assert nlb.dropped == 1

    def test_on_terminal_fires_for_drops(self, engine, rng):
        import numpy as np

        rack = Rack(engine, num_servers=1, rng=rng, queue_capacity=0)
        nlb = NetworkLoadBalancer(rack.servers)
        for i in range(rack.servers[0].num_workers):
            nlb.dispatch(make_request(source=i))
        seen = []
        req = make_request(source=99)
        req.on_terminal = lambda r, o, t: seen.append(o)
        nlb.dispatch(req)
        assert seen == [RequestOutcome.DROPPED_QUEUE_FULL]

    def test_empty_backend_list_rejected(self):
        with pytest.raises(ValueError):
            NetworkLoadBalancer([])
