"""Unit tests for the event queue primitives."""

import pytest

from repro.sim import EventQueue
from repro.sim.events import PRIORITY_CONTROL, PRIORITY_MONITOR, PRIORITY_WORKLOAD


def noop():
    pass


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, noop)
        q.push(1.0, noop)
        q.push(2.0, noop)
        times = [q.pop().time_s for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, noop, priority=PRIORITY_CONTROL)
        q.push(1.0, noop, priority=PRIORITY_WORKLOAD)
        q.push(1.0, noop, priority=PRIORITY_MONITOR)
        prios = [q.pop().priority for _ in range(3)]
        assert prios == [PRIORITY_WORKLOAD, PRIORITY_MONITOR, PRIORITY_CONTROL]

    def test_fifo_among_equal_time_and_priority(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        q.pop().callback()
        q.pop().callback()
        assert order == ["a", "b"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestEventQueueCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, noop)
        q.push(2.0, noop)
        q.cancel(e1)
        assert q.pop().time_s == 2.0

    def test_cancel_updates_length(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        q.push(5.0, noop)
        q.cancel(e)
        assert q.peek_time() == 5.0

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None


class TestEventQueueValidation:
    def test_infinite_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("inf"), noop)

    def test_bool_protocol(self):
        q = EventQueue()
        assert not q
        q.push(1.0, noop)
        assert q
