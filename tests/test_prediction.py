"""Prediction-based oversubscription: the sixth scheme and its poisoning.

Three layers:

* the streaming :class:`PowerHistoryPredictor` (quantile convergence,
  decaying floor, clamped step — the O(1)-memory estimator itself);
* :class:`PredictionScheme` end-to-end (tier ladder, effective-budget
  inflation, registry/config plumbing);
* the headline: under the ``predictor-poison`` attack the scheme admits
  a flood that drives measured rack power over the true supply while
  the predicted-draw budget still reports below it — the
  ``predict.blind_violation_slots`` window — and the fig11 region delta
  against Anti-DOPE exports through
  :func:`repro.analysis.region_delta_summary`.
"""

import pytest

from repro import (
    BudgetLevel,
    DataCenterSimulation,
    PredictionScheme,
    SimulationConfig,
)
from repro.analysis import DopeRegionAnalyzer, region_delta_summary
from repro.analysis.region import RegionCell, RegionResult
from repro.detect import SCHEME_NAMES, make_scheme
from repro.power.prediction import (
    TIER_HARD,
    TIER_HEALTHY,
    PowerHistoryPredictor,
    PredictedHeadroomFilter,
)
from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS))


# ----------------------------------------------------------------------
# The streaming predictor
# ----------------------------------------------------------------------


class TestPowerHistoryPredictor:
    def test_first_observation_snaps(self):
        predictor = PowerHistoryPredictor(initial_w=400.0)
        predictor.observe(250.0, dt_s=1.0)
        assert predictor.quantile_estimate_w == pytest.approx(250.0)
        assert predictor.floor_w == pytest.approx(250.0)
        assert predictor.observations == 1

    def test_quantile_climbs_toward_high_samples(self):
        predictor = PowerHistoryPredictor(
            quantile=0.99, step_w=4.0, max_step_up_w_per_s=1000.0
        )
        for _ in range(200):
            predictor.observe(300.0, dt_s=1.0)
        # Constant samples above the estimate push it up by step*q per
        # observation until it reaches the sample value.
        assert predictor.quantile_estimate_w == pytest.approx(300.0, abs=5.0)
        assert predictor.prediction_w == pytest.approx(300.0, abs=5.0)

    def test_floor_decays_after_a_peak(self):
        predictor = PowerHistoryPredictor(floor_decay_w_per_s=10.0)
        predictor.observe(400.0, dt_s=1.0)  # snap: floor = 400
        for _ in range(20):
            predictor.observe(100.0, dt_s=1.0)
        # 20 s at 10 W/s erodes the peak by 200 W; low samples cannot
        # prop it up.
        assert predictor.floor_w == pytest.approx(200.0)

    def test_floor_never_drops_below_current_sample(self):
        predictor = PowerHistoryPredictor(floor_decay_w_per_s=1000.0)
        predictor.observe(400.0, dt_s=1.0)
        predictor.observe(150.0, dt_s=1.0)
        assert predictor.floor_w == pytest.approx(150.0)

    def test_prediction_step_clamped_upward(self):
        predictor = PowerHistoryPredictor(
            initial_w=100.0, max_step_up_w_per_s=5.0
        )
        predictor.observe(100.0, dt_s=1.0)
        # A flood appears: target jumps far above, prediction moves 5 W.
        predictor.observe(1000.0, dt_s=1.0)
        assert predictor.prediction_w == pytest.approx(105.0)

    def test_prediction_step_clamped_downward(self):
        predictor = PowerHistoryPredictor(
            initial_w=500.0,
            max_step_down_w_per_s=2.0,
            floor_decay_w_per_s=1000.0,
            step_w=1000.0,
        )
        predictor.observe(500.0, dt_s=1.0)
        predictor.observe(0.0, dt_s=1.0)
        assert predictor.prediction_w == pytest.approx(498.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerHistoryPredictor(quantile=1.0)
        with pytest.raises(ValueError):
            PowerHistoryPredictor(step_w=0.0)
        with pytest.raises(ValueError):
            PowerHistoryPredictor(initial_w=-1.0)
        predictor = PowerHistoryPredictor()
        with pytest.raises(ValueError):
            predictor.observe(-5.0, dt_s=1.0)
        with pytest.raises(ValueError):
            predictor.observe(100.0, dt_s=0.0)


class TestPredictedHeadroomFilter:
    def test_retarget_settles_accrual_at_old_rate(self):
        bucket = PredictedHeadroomFilter(
            refill_rate_w=10.0, burst_s=100.0, energy_cost_fn=lambda r: 1.0
        )
        bucket.tokens_j = 0.0
        bucket._last_refill = 0.0
        bucket.set_refill_rate_w(100.0, now=5.0)
        # The 5 s before the switch accrue at the *old* 10 W rate.
        assert bucket.tokens_j == pytest.approx(50.0)
        bucket._refill(6.0)
        # The next second accrues at the new 100 W rate.
        assert bucket.tokens_j == pytest.approx(150.0)

    def test_retarget_floors_at_positive_rate(self):
        bucket = PredictedHeadroomFilter(
            refill_rate_w=10.0, burst_s=1.0, energy_cost_fn=lambda r: 1.0
        )
        bucket.set_refill_rate_w(-50.0, now=0.0)
        assert bucket.refill_rate_w > 0.0


# ----------------------------------------------------------------------
# The scheme
# ----------------------------------------------------------------------


class TestPredictionScheme:
    def test_registered_as_sixth_scheme(self):
        assert "prediction" in SCHEME_NAMES
        scheme = make_scheme("prediction")
        assert isinstance(scheme, PredictionScheme)

    def test_make_scheme_threads_horizon(self):
        config = SimulationConfig(prediction_horizon_s=120.0)
        scheme = make_scheme("prediction", config)
        assert scheme.horizon_s == pytest.approx(120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionScheme(quantile=1.5)
        with pytest.raises(ValueError):
            PredictionScheme(horizon_s=0.0)
        with pytest.raises(ValueError):
            PredictionScheme(hard_fraction=0.9)
        with pytest.raises(ValueError):
            PredictionScheme(oversubscription_gain=-1.0)

    def test_benign_run_reaches_healthy_tier_without_drops(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=PredictionScheme(),
        )
        sim.add_normal_traffic(rate_rps=40.0)
        sim.run(60.0)
        report = sim.scheme.report()
        assert report["tier"] == TIER_HEALTHY
        assert report["dropped"] == 0
        # History well below supply earned oversubscription: the
        # effective budget exceeds the provisioned supply.
        assert report["effective_budget_w"] > report["supply_w"]
        assert report["prediction_w"] < report["supply_w"]

    def test_warmup_starts_pessimistic_at_nameplate(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=PredictionScheme(),
        )
        sim.ensure_started()
        scheme = sim.scheme
        assert scheme.predictor.prediction_w == pytest.approx(
            sim.rack.nameplate_w
        )
        assert scheme.last_tier == TIER_HARD
        # Nameplate prediction earns zero oversubscription.
        assert scheme.effective_budget_w() == pytest.approx(
            sim.budget.supply_w
        )

    def test_report_is_json_ready(self):
        import json

        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=2),
            scheme=PredictionScheme(),
        )
        sim.add_normal_traffic(rate_rps=20.0)
        sim.run(10.0)
        payload = json.dumps(sim.scheme.report(), allow_nan=False)
        assert "prediction" in payload

    def test_tier_counters_recorded(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=3),
            scheme=PredictionScheme(),
        )
        sim.add_normal_traffic(rate_rps=40.0)
        sim.run(30.0)
        counters = sim.obs.counters.as_dict()
        tier_slots = sum(
            counters.get(name, 0)
            for name in (
                "predict.healthy_slots",
                "predict.warn_slots",
                "predict.soft_cap_slots",
                "predict.hard_cap_slots",
            )
        )
        # Every control slot lands in exactly one tier.
        assert tier_slots == counters["power.control_slots"]


# ----------------------------------------------------------------------
# The poisoning headline
# ----------------------------------------------------------------------


class TestPredictorPoisoning:
    def test_poisoned_flood_violates_supply_while_forecast_reads_healthy(self):
        """The PR's headline scenario, committed as a regression test.

        Shape light traffic for two horizons (the percentile and the
        decayed floor both walk down, inflating the effective budget),
        then flood: the admission path — sized against the poisoned
        forecast — lets the surge through, measured rack power crosses
        the true supply, and the clamped prediction step keeps the
        forecast below supply for multiple slots.  Those are the
        blind-violation slots; a meter-driven scheme has none.
        """
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=7),
            scheme=PredictionScheme(),
        )
        sim.add_normal_traffic(rate_rps=20.0)
        sim.add_dope_attacker(
            start_delay_s=5.0,
            mode="predictor-poison",
            poison_duration_s=120.0,
            max_rate_rps=600.0,
            num_agents=60,
        )
        sim.run(240.0)
        supply_w = sim.budget.supply_w
        assert sim.meter.peak_power() > supply_w
        counters = sim.obs.counters.as_dict()
        assert counters["predict.blind_violation_slots"] > 0
        # The hard-cap fallback does eventually engage once the
        # forecast catches up — the attack buys a window, not immunity.
        assert counters["predict.hard_cap_slots"] > 0

    def test_shaping_depresses_the_forecast(self):
        """During the quiet phase the prediction converges toward idle,
        granting more effective budget than the supply — the inflated
        headroom the flood lands in."""
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=7),
            scheme=PredictionScheme(),
        )
        sim.add_normal_traffic(rate_rps=20.0)
        sim.add_dope_attacker(
            start_delay_s=5.0,
            mode="predictor-poison",
            poison_duration_s=300.0,  # still shaping at the end of the run
            max_rate_rps=600.0,
        )
        sim.run(200.0)
        report = sim.scheme.report()
        assert report["prediction_w"] < sim.budget.supply_w
        assert report["effective_budget_w"] > sim.budget.supply_w
        assert report["tier"] == TIER_HEALTHY


# ----------------------------------------------------------------------
# fig11 region delta export
# ----------------------------------------------------------------------


def _cell(type_name, rate_rps, violated=False, detected=False):
    return RegionCell(
        type_name=type_name,
        rate_rps=rate_rps,
        num_agents=20,
        peak_power_w=300.0,
        budget_w=320.0,
        violated=violated,
        detected=detected,
    )


class TestRegionDeltaSummary:
    def test_identical_results_have_zero_delta(self):
        result = RegionResult(
            cells=[_cell("k-means", 100.0), _cell("k-means", 200.0, True)]
        )
        summary = region_delta_summary(result, result, "x", "y")
        assert summary["dope_delta_cells"] == 0
        assert summary["zone_changes"] == []
        assert summary["dope_cells"] == {"x": 1, "y": 1}

    def test_zone_migration_listed(self):
        before = RegionResult(cells=[_cell("k-means", 200.0, violated=True)])
        after = RegionResult(
            cells=[_cell("k-means", 200.0, violated=True, detected=True)]
        )
        summary = region_delta_summary(before, after, "raw", "defended")
        assert summary["dope_delta_cells"] == -1
        (change,) = summary["zone_changes"]
        assert change["raw"] == "dope"
        assert change["defended"] == "detected"

    def test_mismatched_grids_rejected(self):
        a = RegionResult(cells=[_cell("k-means", 100.0)])
        b = RegionResult(cells=[_cell("k-means", 150.0)])
        with pytest.raises(ValueError):
            region_delta_summary(a, b)

    def test_prediction_vs_anti_dope_sweep_exports(self):
        """The acceptance export: fig11 delta, prediction vs Anti-DOPE."""

        def sweep(scheme):
            analyzer = DopeRegionAnalyzer(
                config=SimulationConfig(
                    budget_level=BudgetLevel.MEDIUM, seed=5
                ),
                window_s=20.0,
                num_agents=20,
                scheme=scheme,
            )
            return analyzer.sweep((COLLA_FILT, K_MEANS), (60.0, 250.0))

        summary = region_delta_summary(
            sweep("anti-dope"), sweep("prediction"), "anti-dope", "prediction"
        )
        assert summary["cells"] == 4
        assert summary["labels"] == ["anti-dope", "prediction"]
        assert set(summary["dope_fraction"]) == {"anti-dope", "prediction"}
        for change in summary["zone_changes"]:
            assert {"type", "rate_rps", "anti-dope", "prediction"} <= set(
                change
            )
