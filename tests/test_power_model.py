"""Unit tests for the server power model."""

import pytest

from repro.cluster import ServerPowerModel
from repro.workloads import (
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VOLUME_DOS,
    WORD_COUNT,
)


class TestIdlePower:
    def test_idle_at_nominal_is_idle_fraction(self, power_model):
        assert power_model.idle_power(1.0) == pytest.approx(38.0)

    def test_idle_decreases_with_frequency(self, power_model):
        assert power_model.idle_power(0.5) < power_model.idle_power(1.0)

    def test_idle_has_static_floor(self, power_model):
        # Leakage term keeps idle power above zero at any frequency.
        assert power_model.idle_power(0.5) > 0.5 * power_model.idle_power(1.0)


class TestDynamicPower:
    def test_full_load_colla_filt_hits_nameplate(self, power_model):
        assert power_model.full_load_power(COLLA_FILT, 1.0) == pytest.approx(100.0)

    def test_power_monotone_in_busy_workers(self, power_model):
        p1 = power_model.power([COLLA_FILT], 1.0)
        p2 = power_model.power([COLLA_FILT] * 4, 1.0)
        p3 = power_model.power([COLLA_FILT] * 8, 1.0)
        assert p1 < p2 < p3

    def test_power_monotone_in_frequency(self, power_model):
        workers = [COLLA_FILT] * 4
        powers = [power_model.power(workers, r) for r in (0.5, 0.7, 0.9, 1.0)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_empty_server_draws_idle_only(self, power_model):
        assert power_model.power([], 1.0) == pytest.approx(
            power_model.idle_power(1.0)
        )

    def test_volume_dos_power_is_negligible(self, power_model):
        heavy = power_model.worker_power(COLLA_FILT, 1.0)
        light = power_model.worker_power(VOLUME_DOS, 1.0)
        assert light < 0.1 * heavy


class TestTypeOrderings:
    """The catalog orderings the paper's Figs 4–6 depend on."""

    def test_full_load_power_ordering(self, power_model):
        # Fig 5a: Colla-Filt presses against nameplate, then K-means,
        # Word-Count, Text-Cont, volume floods.
        loads = [
            power_model.full_load_power(t, 1.0)
            for t in (COLLA_FILT, K_MEANS, WORD_COUNT, TEXT_CONT, VOLUME_DOS)
        ]
        assert loads == sorted(loads, reverse=True)

    def test_kmeans_has_highest_energy_per_request(self, power_model):
        # Fig 5b: "the query requesting for K-means consumes most power
        # per request".
        e_km = power_model.energy_per_request(K_MEANS, 1.0)
        for t in (COLLA_FILT, WORD_COUNT, TEXT_CONT, VOLUME_DOS):
            assert e_km > power_model.energy_per_request(t, 1.0)

    def test_kmeans_power_least_frequency_sensitive(self, power_model):
        # Fig 6b: throttling barely reduces K-means' power, so DVFS must
        # cut deeper.  Compare relative power reduction at half speed.
        def reduction(t):
            hi = power_model.worker_power(t, 1.0)
            lo = power_model.worker_power(t, 0.5)
            return (hi - lo) / hi

        assert reduction(K_MEANS) < reduction(COLLA_FILT)
        assert reduction(K_MEANS) < reduction(WORD_COUNT)

    def test_throttling_cannot_reach_below_idle(self, power_model):
        assert power_model.min_active_power(0.5) == power_model.idle_power(0.5)


class TestEnergyPerRequest:
    def test_energy_positive_for_all_types(self, power_model):
        for t in (COLLA_FILT, K_MEANS, WORD_COUNT, TEXT_CONT, VOLUME_DOS):
            assert power_model.energy_per_request(t, 1.0) > 0

    def test_throttling_tradeoff_for_cpu_bound(self, power_model):
        # CPU-bound work at low frequency runs longer at lower power;
        # for alpha > 1 the energy per request still drops (race-to-idle
        # does not hold for the dynamic component alone).
        e_hi = power_model.energy_per_request(COLLA_FILT, 1.0)
        e_lo = power_model.energy_per_request(COLLA_FILT, 0.5)
        assert e_lo < e_hi

    def test_memory_bound_energy_barely_drops_when_throttled(self, power_model):
        # K-means keeps burning (DRAM) power while running longer, so
        # throttling saves far less of its per-request energy than of a
        # CPU-bound type's.
        def saving(t):
            e_hi = power_model.energy_per_request(t, 1.0)
            e_lo = power_model.energy_per_request(t, 0.5)
            return (e_hi - e_lo) / e_hi

        assert saving(K_MEANS) < 0.5 * saving(COLLA_FILT)


class TestValidation:
    def test_invalid_idle_fraction(self):
        with pytest.raises(ValueError):
            ServerPowerModel(idle_fraction=0.0)
        with pytest.raises(ValueError):
            ServerPowerModel(idle_fraction=1.0)

    def test_invalid_nameplate(self):
        with pytest.raises(ValueError):
            ServerPowerModel(nameplate_w=-5)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ServerPowerModel(num_workers=0)

    def test_max_power_equals_nameplate(self, power_model):
        assert power_model.max_power() == 100.0
