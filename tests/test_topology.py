"""Unit coverage of the hierarchical power tree (repro.cluster.topology)."""

import pytest

from repro import DataCenterSimulation, SimulationConfig
from repro.cluster import (
    FLAT_TOPOLOGY,
    PowerTopology,
    TopologySpec,
    named_topology,
    topology_names,
)
from repro.faults import FaultInjector, FaultPlan
from repro.power import BudgetLevel, CappingScheme
from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix

HEAVY = uniform_mix((COLLA_FILT, K_MEANS))


# ----------------------------------------------------------------------
# Spec + registry
# ----------------------------------------------------------------------


def test_spec_totals_multiply_out():
    spec = TopologySpec(name="t", rows=2, racks_per_row=3, servers_per_rack=4)
    assert spec.num_racks == 6
    assert spec.total_servers == 24


def test_spec_rejects_flat_name_and_bad_oversubs():
    with pytest.raises(ValueError):
        TopologySpec(
            name=FLAT_TOPOLOGY, rows=1, racks_per_row=1, servers_per_rack=1
        )
    with pytest.raises(ValueError):
        TopologySpec(
            name="t",
            rows=1,
            racks_per_row=1,
            servers_per_rack=1,
            feed_oversub=1.5,
        )
    with pytest.raises(ValueError):
        TopologySpec(
            name="t",
            rows=1,
            racks_per_row=1,
            servers_per_rack=1,
            rack_oversub=0.0,
        )
    # oversub of exactly 1.0 is legal (rack PDUs are not oversubscribed)
    TopologySpec(
        name="t", rows=1, racks_per_row=1, servers_per_rack=1, rack_oversub=1.0
    )


def test_registry_lists_flat_first_and_resolves_presets():
    names = topology_names()
    assert names[0] == FLAT_TOPOLOGY
    assert set(names[1:]) == {"tree-small", "tree-dc", "tree-pinned"}
    assert named_topology("tree-dc").total_servers == 16
    with pytest.raises(ValueError):
        named_topology("flat")
    with pytest.raises(ValueError):
        named_topology("no-such-tree")


def test_pinned_preset_is_the_vulnerability_arm():
    spec = named_topology("tree-pinned")
    assert spec.flowlet_gap_s is None
    assert spec.enforce_levels is False


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------


@pytest.fixture
def tree() -> PowerTopology:
    return PowerTopology(
        named_topology("tree-dc"), server_nameplate_w=100.0, budget_fraction=0.8
    )


def test_tree_nodes_own_contiguous_disjoint_slices(tree):
    spec = tree.spec
    assert tree.feed.num_servers == spec.total_servers
    racks = [tree.node(f"rack{k}") for k in range(spec.num_racks)]
    covered = []
    for rack in racks:
        covered.extend(range(rack.start, rack.stop))
    assert covered == list(range(spec.total_servers))
    for r in range(spec.rows):
        row = tree.node(f"row{r}")
        assert row.children == tuple(
            f"rack{r * spec.racks_per_row + p}"
            for p in range(spec.racks_per_row)
        )
        for child in row.children:
            assert tree.node(child).parent == row.name
    assert tree.feed.children == tuple(f"row{r}" for r in range(spec.rows))


def test_budgets_shrink_towards_the_root(tree):
    # 4 servers x 100 W x 0.8: rack 320 (x1.0), row 608 (8 leaves x0.95),
    # feed 1088 (16 leaves x0.85) — per-level oversubscription.
    assert tree.node("rack0").budget_w == pytest.approx(320.0)
    assert tree.node("row0").budget_w == pytest.approx(608.0)
    assert tree.feed.budget_w == pytest.approx(1088.0)
    # The oversubscription bet: the feed provisioned less than the sum
    # of its rows, the rows less than the sum of their racks.
    assert tree.feed.budget_w < 2 * tree.node("row0").budget_w
    assert tree.node("row0").budget_w < 2 * tree.node("rack0").budget_w


def test_lookups_validate_and_map_servers(tree):
    assert list(tree.servers_under("rack1")) == [4, 5, 6, 7]
    assert list(tree.servers_under("row1")) == list(range(8, 16))
    assert tree.rack_index_of(0) == 0
    assert tree.rack_index_of(15) == 3
    with pytest.raises(ValueError):
        tree.node("rack9")
    with pytest.raises(ValueError):
        tree.rack_index_of(16)
    assert tree.enforcement_order[0].kind == "rack"
    assert tree.enforcement_order[-1].kind == "row"


# ----------------------------------------------------------------------
# Per-node power + monitor (through a live simulation)
# ----------------------------------------------------------------------


def _tree_sim(topology="tree-small", **flood_kwargs) -> DataCenterSimulation:
    cfg = SimulationConfig.for_topology(
        topology, budget_level=BudgetLevel.LOW, seed=1
    )
    sim = DataCenterSimulation(cfg)
    sim.add_normal_traffic(rate_rps=40.0)
    if flood_kwargs:
        sim.add_flood(**flood_kwargs)
    return sim


def test_node_power_is_bit_identical_to_leaf_sum():
    sim = _tree_sim(
        mix=HEAVY, rate_rps=200.0, num_agents=10, start_s=2.0
    )
    sim.run(10.0)
    topology, rack = sim.topology, sim.rack
    per_server = rack.per_server_power()
    powers = topology.per_node_power(rack)
    for name, node in topology.nodes.items():
        expected = 0.0
        for value in per_server[node.start : node.stop]:
            expected += value
        assert powers[name] == expected  # bitwise, not approx
        assert topology.node_power_w(name, rack) == expected
    # The feed view is the flat rack total, reduced in the same order.
    assert powers["feed"] == rack.total_power()


def test_monitor_records_timelines_and_attributes_deepest_violation():
    sim = _tree_sim(
        mix=HEAVY,
        rate_rps=260.0,
        num_agents=10,
        start_s=2.0,
        closed_loop=False,
    )
    sim.run(15.0)
    monitor = sim.topology_monitor
    times, powers = monitor.timeline("feed")
    assert len(times) == len(powers) > 0
    assert times == sorted(times)
    report = monitor.report()
    assert set(report) == set(sim.topology.nodes)
    # tree-small at LOW provisions the feed at 544 W for 8 servers: the
    # open-loop heavy flood violates somewhere below the root.
    total_violations = sum(n["violation_slots"] for n in report.values())
    assert total_violations > 0
    deepest = monitor.deepest_violator()
    assert deepest is not None
    # Deepest attribution never picks a node with a violated child at
    # the same sampled instant, so slots never exceed the node's own.
    for name, node in report.items():
        assert (
            node["deepest_violation_slots"] <= node["violation_slots"]
        ), name
    # Counters mirror the monitor's tallies.
    counters = sim.engine.obs.counters
    for name, node in report.items():
        if node["violation_slots"]:
            assert counters.get(f"topology.violation_slots.{name}") == (
                node["violation_slots"]
            )


def test_monitor_cannot_start_twice():
    sim = _tree_sim()
    sim.run(1.0)
    with pytest.raises(RuntimeError):
        sim.topology_monitor.start(1.0)


def test_per_pdu_enforcement_caps_levels_on_enforcing_trees():
    cfg = SimulationConfig.for_topology(
        "tree-dc", budget_level=BudgetLevel.LOW, seed=1
    )
    sim = DataCenterSimulation(cfg, scheme=CappingScheme())
    sim.add_normal_traffic(rate_rps=40.0)
    sim.add_flood(
        mix=HEAVY, rate_rps=400.0, num_agents=16, start_s=2.0, closed_loop=False
    )
    sim.run(15.0)
    counters = sim.engine.obs.counters.as_dict()
    cap_slots = {
        name: value
        for name, value in counters.items()
        if name.startswith("topology.cap_slots.")
    }
    assert cap_slots, "expected per-PDU enforcement to fire on tree-dc"


def test_unenforced_tree_never_caps():
    cfg = SimulationConfig.for_topology(
        "tree-pinned", budget_level=BudgetLevel.LOW, seed=1
    )
    sim = DataCenterSimulation(cfg, scheme=CappingScheme())
    sim.add_normal_traffic(rate_rps=40.0)
    sim.add_flood(
        mix=HEAVY, rate_rps=400.0, num_agents=16, start_s=2.0, closed_loop=False
    )
    sim.run(15.0)
    counters = sim.engine.obs.counters.as_dict()
    assert not any(n.startswith("topology.cap_slots.") for n in counters)


# ----------------------------------------------------------------------
# Fault cascade
# ----------------------------------------------------------------------


def test_rack_pdu_trip_cascades_to_its_servers_only():
    sim = _tree_sim("tree-dc")
    plan = FaultPlan(seed=1).pdu_trip(2.0, 3.0, node="rack0")
    FaultInjector(sim, plan).arm()
    sim.run(4.0)  # trip at t=2, restore at t=5: still down at t=4
    healthy = [s.healthy for s in sim.rack.servers]
    assert healthy == [False] * 4 + [True] * 12
    counters = sim.engine.obs.counters
    assert counters.get("topology.pdu_trips.rack0") == 1
    assert counters.get("cluster.server_failures") == 4
    sim.run(6.0)  # past the restore
    assert all(s.healthy for s in sim.rack.servers)
    assert counters.get("cluster.server_recoveries") == 4


def test_row_pdu_trip_takes_down_both_of_its_racks():
    sim = _tree_sim("tree-dc")
    plan = FaultPlan(seed=1).pdu_trip(2.0, 3.0, node="row1")
    FaultInjector(sim, plan).arm()
    sim.run(4.0)
    healthy = [s.healthy for s in sim.rack.servers]
    assert healthy == [True] * 8 + [False] * 8
    assert sim.engine.obs.counters.get("topology.pdu_trips.row1") == 1


def test_node_scoped_trip_requires_a_tree():
    cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=1)
    sim = DataCenterSimulation(cfg)
    plan = FaultPlan(seed=1).pdu_trip(1.0, 2.0, node="rack0")
    FaultInjector(sim, plan).arm()
    with pytest.raises(ValueError, match="flat topology"):
        sim.run(2.0)


def test_unscoped_trip_keeps_legacy_whole_fleet_semantics():
    sim = _tree_sim("tree-small")
    plan = FaultPlan(seed=1).pdu_trip(2.0, 3.0)
    FaultInjector(sim, plan).arm()
    sim.run(4.0)
    assert not any(s.healthy for s in sim.rack.servers)
    # Legacy events serialise without a node key, preserving committed
    # plan signatures from before the topology layer.
    assert "node" not in plan.events[0].to_dict()


def test_node_scoped_plan_signature_includes_the_node():
    plan = FaultPlan(seed=1).pdu_trip(2.0, 3.0, node="row0")
    assert '"node":"row0"' in plan.signature()


def test_chaos_cell_on_a_tree_reports_topology_and_scoped_trip():
    from repro.faults import chaos_cell

    kwargs = dict(
        scheme="capping",
        seed=1,
        duration_s=30.0,
        profile="severe",
        topology="tree-small",
    )
    cell = chaos_cell(**kwargs)
    assert cell["topology"] == "tree-small"
    report = cell["topology_report"]
    assert set(report) == {"feed", "row0", "rack0", "rack1"}
    # The severe profile's PDU trip is row-scoped on trees: the plan
    # carries the node and the cascade injects as a pdu_trip.
    assert '"node":"row0"' in cell["fault_plan_signature"]
    assert cell["faults_injected"].get("pdu_trip", 0) >= 1
    # Cells stay deterministic per arguments (cacheable, poolable).
    assert chaos_cell(**kwargs) == cell


# ----------------------------------------------------------------------
# Config integration
# ----------------------------------------------------------------------


def test_config_rejects_unknown_topology_and_fleet_mismatch():
    with pytest.raises(ValueError):
        SimulationConfig(topology="tree-huge")
    with pytest.raises(ValueError):
        SimulationConfig(topology="tree-dc", num_servers=4)


def test_for_topology_sizes_the_fleet_from_the_preset():
    cfg = SimulationConfig.for_topology("tree-dc")
    assert cfg.num_servers == 16
    assert cfg.topology_spec is named_topology("tree-dc")
    assert SimulationConfig.for_topology(FLAT_TOPOLOGY).topology_spec is None


def test_tree_budget_is_the_feed_budget():
    cfg = SimulationConfig.for_topology(
        "tree-dc", budget_level=BudgetLevel.LOW, seed=1
    )
    sim = DataCenterSimulation(cfg)
    assert sim.budget.supply_w == pytest.approx(sim.topology.feed.budget_w)
    report = sim.topology_report()
    assert report is not None
    assert set(report) == set(sim.topology.nodes)
