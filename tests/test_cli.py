"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_region_defaults(self):
        args = build_parser().parse_args(["region"])
        assert args.command == "region"
        assert args.budget == "low"
        assert args.agents == 20

    def test_compare_scheme_selection(self):
        args = build_parser().parse_args(
            ["compare", "--schemes", "capping", "anti-dope"]
        )
        assert args.schemes == ["capping", "anti-dope"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "nope"])

    def test_budget_choices(self):
        args = build_parser().parse_args(["attack", "--budget", "medium"])
        assert args.budget == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--budget", "ultra"])


class TestCommands:
    def test_region_command_runs(self, capsys):
        code = main(
            ["region", "--rates", "50", "300", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DOPE region" in out
        assert "colla-filt" in out
        assert "dope" in out  # the region is non-empty at low budget

    def test_compare_command_runs(self, capsys):
        code = main(
            [
                "compare",
                "--schemes",
                "capping",
                "anti-dope",
                "--duration",
                "90",
                "--attack-rate",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capping" in out and "anti-dope" in out
        assert "mean ms" in out

    def test_attack_command_runs(self, capsys):
        code = main(["attack", "--duration", "120", "--budget", "medium"])
        out = capsys.readouterr().out
        assert code == 0
        assert "probe-and-adjust" in out
        assert "converged:" in out

    def test_deterministic_per_seed(self, capsys):
        main(["compare", "--schemes", "capping", "--duration", "60", "--seed", "3"])
        first = capsys.readouterr().out
        main(["compare", "--schemes", "capping", "--duration", "60", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second
