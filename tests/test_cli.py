"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.faults import validate_chaos_payload


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_region_defaults(self):
        args = build_parser().parse_args(["region"])
        assert args.command == "region"
        assert args.budget == "low"
        assert args.agents == 20

    def test_compare_scheme_selection(self):
        args = build_parser().parse_args(
            ["compare", "--schemes", "capping", "anti-dope"]
        )
        assert args.schemes == ["capping", "anti-dope"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "nope"])

    def test_budget_choices(self):
        args = build_parser().parse_args(["attack", "--budget", "medium"])
        assert args.budget == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--budget", "ultra"])


class TestCommands:
    def test_region_command_runs(self, capsys):
        code = main(
            ["region", "--rates", "50", "300", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DOPE region" in out
        assert "colla-filt" in out
        assert "dope" in out  # the region is non-empty at low budget

    def test_compare_command_runs(self, capsys):
        code = main(
            [
                "compare",
                "--schemes",
                "capping",
                "anti-dope",
                "--duration",
                "90",
                "--attack-rate",
                "200",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capping" in out and "anti-dope" in out
        assert "mean ms" in out

    def test_attack_command_runs(self, capsys):
        code = main(["attack", "--duration", "120", "--budget", "medium"])
        out = capsys.readouterr().out
        assert code == 0
        assert "probe-and-adjust" in out
        assert "converged:" in out

    def test_deterministic_per_seed(self, capsys):
        main(["compare", "--schemes", "capping", "--duration", "60", "--seed", "3"])
        first = capsys.readouterr().out
        main(["compare", "--schemes", "capping", "--duration", "60", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


SWEEP_ARGS = [
    "sweep",
    "--types",
    "colla-filt",
    "k-means",
    "--rates",
    "60",
    "250",
    "--window",
    "20",
    "--budget",
    "medium",
    "--seed",
    "5",
]


class TestSweepCommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.types is None

    def test_sweep_command_runs(self, capsys):
        code = main(SWEEP_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "DOPE region sweep" in out
        assert "colla-filt" in out and "k-means" in out
        assert "swept cells" in out

    def test_sweep_output_identical_across_worker_counts(self, capsys):
        main(SWEEP_ARGS)
        serial = capsys.readouterr().out
        main(SWEEP_ARGS + ["--workers", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_sweep_cache_hits_on_second_run(self, capsys, tmp_path):
        cached = SWEEP_ARGS + ["--cache-dir", str(tmp_path / "cache")]
        main(cached)
        first = capsys.readouterr().out
        assert "4 miss(es)" in first
        main(cached)
        second = capsys.readouterr().out
        assert "4 hit(s)" in second
        # Everything above the cache-stat line is byte-identical.
        assert first.rsplit("cache:", 1)[0] == second.rsplit("cache:", 1)[0]


class TestChaosCommand:
    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert args.workers == 1
        assert not args.full
        assert args.out is None

    def test_smoke_and_full_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--smoke", "--full"])

    def test_chaos_smoke_writes_valid_payload(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        code = main(["chaos", "--smoke", "--seed", "4", "--out", str(out)])
        assert code == 0
        assert "6 cells" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chaos_payload(payload) == []
        assert payload["schema"] == "repro-chaos/1"
        assert sorted(c["scheme"] for c in payload["cells"]) == [
            "anti-dope",
            "capping",
            "online-detect",
            "prediction",
            "shaving",
            "token",
        ]
        for cell in payload["cells"]:
            assert cell["dropped"] == (
                cell["dropped_policy"] + cell["dropped_fault"]
            )


ALL_SCHEMES = [
    "anti-dope",
    "capping",
    "online-detect",
    "prediction",
    "shaving",
    "token",
]


class TestSchemeSelectorRoundTrip:
    """--scheme/--schemes must accept exactly the six registry names on
    every command that sweeps or compares schemes."""

    def test_region_accepts_every_scheme_name(self):
        for name in ALL_SCHEMES:
            args = build_parser().parse_args(["region", "--scheme", name])
            assert args.scheme == name

    def test_sweep_accepts_all_names_at_once(self):
        args = build_parser().parse_args(["sweep", "--schemes"] + ALL_SCHEMES)
        assert args.schemes == ALL_SCHEMES

    def test_compare_accepts_all_names_at_once(self):
        args = build_parser().parse_args(
            ["compare", "--schemes"] + ALL_SCHEMES
        )
        assert args.schemes == ALL_SCHEMES

    def test_scheme_and_schemes_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["region", "--scheme", "prediction", "--schemes", "capping"]
            )

    def test_unknown_scheme_rejected_everywhere(self):
        for command in ("region", "sweep"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--scheme", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--schemes", "nope"])

    def test_prediction_horizon_flag_parses(self):
        args = build_parser().parse_args(
            ["region", "--prediction-horizon", "120"]
        )
        assert args.prediction_horizon == 120.0

    def test_region_runs_under_prediction(self, capsys):
        code = main(
            [
                "region",
                "--scheme",
                "prediction",
                "--rates",
                "50",
                "--seed",
                "1",
                "--prediction-horizon",
                "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "prediction" in out
