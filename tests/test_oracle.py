"""Unit tests for the oracle (perfect-knowledge) reference scheme."""

import pytest

from repro import BudgetLevel, DataCenterSimulation, SimulationConfig
from repro.core.oracle import GroundTruthFilter, OracleScheme
from repro.network import Request, RequestOutcome
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass, uniform_mix


class TestGroundTruthFilter:
    def test_drops_attack_admits_normal(self):
        f = GroundTruthFilter()
        attack = Request(COLLA_FILT, 0, TrafficClass.ATTACK, 0.0)
        normal = Request(COLLA_FILT, 1, TrafficClass.NORMAL, 0.0)
        assert not f.admit(attack, 0.0)
        assert f.admit(normal, 0.0)
        assert f.dropped_attack == 1
        assert f.admitted == 1


class TestOracleScheme:
    def test_filter_installed_on_nlb(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1), scheme=OracleScheme())
        assert sim.nlb.admission_filter is sim.scheme.filter

    def test_attack_never_reaches_servers(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=OracleScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        sim.add_flood(mix=COLLA_FILT, rate_rps=250, num_agents=20, start_s=10)
        sim.run(90.0)
        attack = sim.collector.filtered(traffic_class=TrafficClass.ATTACK)
        assert attack, "attack traffic was offered"
        assert all(
            r.outcome is RequestOutcome.DROPPED_TOKEN for r in attack
        )
        # Power stays at the legitimate baseline.
        assert sim.meter.peak_power() < 250.0

    def test_normal_traffic_unaffected(self):
        def run(scheme):
            sim = DataCenterSimulation(
                SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
                scheme=scheme,
            )
            sim.add_normal_traffic(rate_rps=30)
            sim.add_flood(mix=COLLA_FILT, rate_rps=250, num_agents=20, start_s=10)
            sim.run(90.0)
            return sim.latency_stats(
                traffic_class=TrafficClass.NORMAL, start_s=30.0
            )

        from repro import NullScheme

        with_oracle = run(OracleScheme())
        # Oracle users see latency as if there were no attack at all:
        # compare to a no-attack baseline.
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=NullScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        sim.run(90.0)
        baseline = sim.latency_stats(traffic_class=TrafficClass.NORMAL, start_s=30.0)
        assert with_oracle.mean < 1.3 * baseline.mean

    def test_capping_still_active_behind_oracle(self, engine, rack):
        from repro.power import PowerBudget

        scheme = OracleScheme()
        scheme.bind(engine, rack, PowerBudget(210.0), None, 1.0)
        # Even legitimate load must respect the budget.
        from repro.network import Request as Req

        for s in rack.servers:
            for i in range(8):
                s.submit(Req(COLLA_FILT, i, TrafficClass.NORMAL, 0.0))
        scheme.step()
        assert rack.total_power() <= 210.0
