"""Unit tests for power-driven forwarding (PDF)."""

import pytest

from repro.core import PDFPolicy, SuspectList, split_pools
from repro.network import Request
from repro.workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    WORD_COUNT,
    TrafficClass,
)


@pytest.fixture
def suspect_list(power_model):
    return SuspectList.from_model(ALL_TYPES, power_model)


def req(rtype):
    return Request(rtype, 0, TrafficClass.NORMAL, 0.0)


class TestSplitPools:
    def test_last_servers_become_suspect_pool(self, rack):
        innocent, suspect = split_pools(rack.servers, 1)
        assert [s.server_id for s in innocent] == [0, 1, 2]
        assert [s.server_id for s in suspect] == [3]

    def test_two_server_suspect_pool(self, rack):
        innocent, suspect = split_pools(rack.servers, 2)
        assert [s.server_id for s in suspect] == [2, 3]

    def test_must_leave_innocent_servers(self, rack):
        with pytest.raises(ValueError):
            split_pools(rack.servers, 4)

    def test_zero_pool_rejected(self, rack):
        with pytest.raises(ValueError):
            split_pools(rack.servers, 0)


class TestRouting:
    def test_suspect_urls_to_suspect_pool(self, rack, suspect_list):
        policy = PDFPolicy(suspect_list, rack.servers, 1)
        for rtype in (COLLA_FILT, K_MEANS, WORD_COUNT):
            server = policy.select(req(rtype), rack.servers)
            assert server.server_id == 3

    def test_innocent_urls_to_innocent_pool(self, rack, suspect_list):
        policy = PDFPolicy(suspect_list, rack.servers, 1)
        for _ in range(6):
            server = policy.select(req(TEXT_CONT), rack.servers)
            assert server.server_id in {0, 1, 2}

    def test_round_robin_within_pools(self, rack, suspect_list):
        policy = PDFPolicy(suspect_list, rack.servers, 2)
        picks = [policy.select(req(COLLA_FILT), rack.servers).server_id for _ in range(4)]
        assert picks == [2, 3, 2, 3]
        picks = [policy.select(req(TEXT_CONT), rack.servers).server_id for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_counters(self, rack, suspect_list):
        policy = PDFPolicy(suspect_list, rack.servers, 1)
        policy.select(req(COLLA_FILT), rack.servers)
        policy.select(req(TEXT_CONT), rack.servers)
        policy.select(req(TEXT_CONT), rack.servers)
        assert policy.suspect_forwarded == 1
        assert policy.innocent_forwarded == 2

    def test_unprofiled_url_goes_innocent(self, rack, suspect_list):
        from repro.workloads import RequestType

        new_type = RequestType("new", "/api/new", 0.01, 0.5, 0.5, 0.5)
        policy = PDFPolicy(suspect_list, rack.servers, 1)
        assert policy.select(req(new_type), rack.servers).server_id != 3

    def test_suspect_server_ids(self, rack, suspect_list):
        policy = PDFPolicy(suspect_list, rack.servers, 2)
        assert policy.suspect_server_ids == [2, 3]
