"""Unit tests for latency statistics."""

import math

import numpy as np
import pytest

from repro.metrics import LatencyStats, slowdown
from repro.network import CompletionRecord, Request, RequestOutcome
from repro.workloads import TEXT_CONT, TrafficClass


class TestFromTimes:
    def test_basic_statistics(self):
        stats = LatencyStats.from_times([0.1, 0.2, 0.3, 0.4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.25)
        assert stats.minimum == pytest.approx(0.1)
        assert stats.maximum == pytest.approx(0.4)

    def test_percentiles_are_exact_order_statistics(self):
        times = list(np.arange(1, 101) / 100.0)  # 0.01 .. 1.00
        stats = LatencyStats.from_times(times)
        assert stats.p50 == pytest.approx(np.percentile(times, 50))
        assert stats.p90 == pytest.approx(np.percentile(times, 90))
        assert stats.p99 == pytest.approx(np.percentile(times, 99))

    def test_empty_sample_gives_nan(self):
        stats = LatencyStats.from_times([])
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.p90)

    def test_single_sample(self):
        stats = LatencyStats.from_times([0.5])
        assert stats.mean == stats.p50 == stats.p99 == 0.5


class TestFromRecords:
    def test_drops_excluded(self):
        req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
        records = [
            CompletionRecord(req, RequestOutcome.COMPLETED, 0.2),
            CompletionRecord(req, RequestOutcome.DROPPED_FIREWALL, 0.0),
        ]
        stats = LatencyStats.from_records(records)
        assert stats.count == 1
        assert stats.mean == pytest.approx(0.2)


class TestAccessors:
    def test_named_percentile(self):
        stats = LatencyStats.from_times([0.1, 0.9])
        assert stats.percentile(90) == stats.p90
        with pytest.raises(ValueError):
            stats.percentile(75)

    def test_as_millis(self):
        stats = LatencyStats.from_times([0.1])
        ms = stats.as_millis()
        assert ms["mean_ms"] == pytest.approx(100.0)
        assert ms["count"] == 1


class TestSlowdown:
    def test_ratios(self):
        base = LatencyStats.from_times([0.1] * 10)
        worse = LatencyStats.from_times([0.74] * 10)
        ratios = slowdown(worse, base)
        # The paper's 7.4x mean response-time multiplier.
        assert ratios["mean"] == pytest.approx(7.4)
        assert ratios["p90"] == pytest.approx(7.4)

    def test_empty_baseline_rejected(self):
        base = LatencyStats.from_times([])
        other = LatencyStats.from_times([0.1])
        with pytest.raises(ValueError):
            slowdown(other, base)


class TestPercentileTruncationRegression:
    """``percentile()`` used to coerce through ``int()``: 99.9 silently
    returned the stored p99 and 50.5 the stored p50.  Both now raise."""

    def test_fractional_percentiles_raise(self):
        stats = LatencyStats.from_times([0.1, 0.5, 0.9])
        with pytest.raises(ValueError):
            stats.percentile(99.9)
        with pytest.raises(ValueError):
            stats.percentile(50.5)

    def test_whole_float_percentiles_still_resolve(self):
        stats = LatencyStats.from_times([0.1, 0.5, 0.9])
        assert stats.percentile(50.0) == stats.p50
        assert stats.percentile(95.0) == stats.p95
