"""Unit coverage of flowlet-aware ECMP forwarding (repro.network.fabric)."""

import pytest

from repro.network import FlowletEcmpFabric, ecmp_path, splitmix64
from repro.obs import Recorder


class _FakeServer:
    def __init__(self, server_id: int) -> None:
        self.server_id = server_id


class _FakeRequest:
    def __init__(self, source_id: int, arrival_time_s: float) -> None:
        self.source_id = source_id
        self.arrival_time_s = arrival_time_s


def _fleet(num_racks=4, servers_per_rack=4):
    return [_FakeServer(i) for i in range(num_racks * servers_per_rack)]


def _fabric(obs=None, **kwargs):
    kwargs.setdefault("num_racks", 4)
    kwargs.setdefault("servers_per_rack", 4)
    return FlowletEcmpFabric(obs=obs, **kwargs)


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------


def test_splitmix64_matches_the_reference_vector():
    # First output of the reference SplitMix64 stream seeded with 0.
    assert splitmix64(0) == 0xE220A8397B1DCDAF
    assert splitmix64((1 << 64) - 1) != splitmix64(0)
    assert 0 <= splitmix64(123456789) < (1 << 64)


def test_ecmp_path_is_deterministic_and_in_range():
    for salt in (0, 7, 2**63):
        for flow in (0, 1, 999):
            for flowlet in (0, 1, 2):
                a = ecmp_path(salt, flow, flowlet, 8)
                b = ecmp_path(salt, flow, flowlet, 8)
                assert a == b
                assert 0 <= a < 8


def test_ecmp_path_decorrelates_across_salts():
    paths_a = [ecmp_path(1, flow, 0, 64) for flow in range(200)]
    paths_b = [ecmp_path(2, flow, 0, 64) for flow in range(200)]
    assert paths_a != paths_b


def test_ecmp_path_rejects_empty_path_space():
    with pytest.raises(ValueError):
        ecmp_path(0, 0, 0, 0)


# ----------------------------------------------------------------------
# Flow pinning vs flowlet switching
# ----------------------------------------------------------------------


def test_pinned_flow_always_lands_in_its_hashed_rack():
    fabric = _fabric(flowlet_gap_s=None, salt=3)
    servers = _fleet()
    first = fabric.select(_FakeRequest(42, 0.0), servers)
    rack = first.server_id // 4
    # Long gaps between requests: a pinned flow must never re-hash.
    for step in range(1, 50):
        chosen = fabric.select(_FakeRequest(42, step * 10.0), servers)
        assert chosen.server_id // 4 == rack
    assert fabric.path_of(42) is not None
    assert fabric.rack_of_path(fabric.path_of(42)) == rack


def test_flowlet_gap_allows_rehash_and_counts_switches():
    obs = Recorder()
    fabric = _fabric(obs=obs, flowlet_gap_s=0.05, salt=0)
    servers = _fleet()
    # Bursts separated by 10x the flowlet gap: each burst may re-hash.
    for flow in range(8):
        for burst in range(20):
            fabric.select(_FakeRequest(flow, burst * 0.5), servers)
    counters = obs.counters
    assert counters.get("fabric.flows") == 8
    # Every burst after the first opens a new flowlet per flow.
    assert counters.get("fabric.flowlets") == 8 * 20
    # With 8 paths, re-hashes land on a different path most of the time.
    assert counters.get("fabric.path_switches") > 0


def test_requests_within_the_gap_do_not_open_flowlets():
    obs = Recorder()
    fabric = _fabric(obs=obs, flowlet_gap_s=0.05)
    servers = _fleet()
    for i in range(100):
        fabric.select(_FakeRequest(7, i * 0.01), servers)  # gap 10 ms < 50 ms
    assert obs.counters.get("fabric.flowlets") == 1
    assert obs.counters.get("fabric.path_switches") == 0


def test_round_robin_rotates_within_the_destination_rack():
    fabric = _fabric(flowlet_gap_s=None)
    servers = _fleet()
    chosen = [
        fabric.select(_FakeRequest(5, i * 0.001), servers).server_id
        for i in range(8)
    ]
    racks = {s // 4 for s in chosen}
    assert len(racks) == 1
    # Four members, eight picks: each member served exactly twice.
    assert sorted(chosen) == sorted(chosen[:4] * 2)
    assert len(set(chosen[:4])) == 4


# ----------------------------------------------------------------------
# Failover + conservation
# ----------------------------------------------------------------------


def test_failover_probes_the_next_rack_when_hashed_rack_is_down():
    obs = Recorder()
    fabric = _fabric(obs=obs, flowlet_gap_s=None)
    servers = _fleet()
    target = fabric.select(_FakeRequest(11, 0.0), servers)
    rack = target.server_id // 4
    healthy = [s for s in servers if s.server_id // 4 != rack]
    rerouted = fabric.select(_FakeRequest(11, 1.0), healthy)
    assert rerouted.server_id // 4 != rack
    assert obs.counters.get("fabric.failovers") == 1


def test_out_of_range_servers_fall_back_to_the_given_list():
    fabric = _fabric(num_racks=2, servers_per_rack=2)
    outsiders = [_FakeServer(100), _FakeServer(101)]
    chosen = fabric.select(_FakeRequest(0, 0.0), outsiders)
    assert chosen in outsiders


def test_every_select_is_counted_on_exactly_one_rack():
    obs = Recorder()
    fabric = _fabric(obs=obs, flowlet_gap_s=0.05)
    servers = _fleet()
    n = 500
    for i in range(n):
        fabric.select(_FakeRequest(i % 13, i * 0.02), servers)
    counters = obs.counters.as_dict()
    forwarded = sum(
        value
        for name, value in counters.items()
        if name.startswith("fabric.forwarded.rack")
    )
    assert forwarded == n


def test_fabric_without_recorder_stays_silent():
    fabric = _fabric(obs=None)
    servers = _fleet()
    for i in range(10):
        assert fabric.select(_FakeRequest(i, i * 0.1), servers) in servers


def test_path_space_and_validation():
    fabric = _fabric(num_racks=3, servers_per_rack=2, num_spines=4)
    assert fabric.num_paths == 12
    assert fabric.path_of(999) is None
    with pytest.raises(ValueError):
        FlowletEcmpFabric(num_racks=0, servers_per_rack=4)
    with pytest.raises(ValueError):
        FlowletEcmpFabric(num_racks=2, servers_per_rack=2, flowlet_gap_s=0.0)
