"""Structural validation of .github/workflows/ci.yml.

The pinned dev container has no ``actionlint``, so this suite is the
schema check keeping the workflow honest: it must parse as YAML, define
the five jobs the repo's CI contract names (lint, test matrix,
bench-smoke, golden equivalence, topology equivalence), run the *same*
gate script a developer runs locally, cover the supported Python matrix
with pip caching keyed on both packaging manifests, and cancel
superseded runs of the same ref.
"""

from pathlib import Path

import pytest
import yaml

_WORKFLOW = Path(__file__).parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(_WORKFLOW.read_text())


def _steps(job):
    return job["steps"]


def _run_lines(job):
    return "\n".join(step.get("run", "") for step in _steps(job))


def test_workflow_parses_and_triggers_on_push_and_pr(workflow):
    assert workflow["name"] == "ci"
    # YAML 1.1 parses the bare key `on` as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_workflow_cancels_superseded_runs(workflow):
    # A new push to the same PR/branch must cancel the stale run.
    concurrency = workflow["concurrency"]
    assert "github.ref" in concurrency["group"]
    assert concurrency["cancel-in-progress"] is True


def test_workflow_defines_the_five_contract_jobs(workflow):
    assert set(workflow["jobs"]) == {
        "lint",
        "test",
        "bench-smoke",
        "equivalence",
        "topology-equivalence",
    }


def test_every_job_checks_out_and_sets_up_python_with_pip_cache(workflow):
    for name, job in workflow["jobs"].items():
        uses = [step.get("uses", "") for step in _steps(job)]
        assert any(u.startswith("actions/checkout@") for u in uses), name
        setup = next(
            step
            for step in _steps(job)
            if step.get("uses", "").startswith("actions/setup-python@")
        )
        assert setup["with"]["cache"] == "pip", name
        # Cache keys must track both packaging manifests: an edit to
        # either pyproject.toml or setup.py invalidates the pip cache.
        dependency_path = setup["with"]["cache-dependency-path"]
        assert "pyproject.toml" in dependency_path, name
        assert "setup.py" in dependency_path, name


def test_lint_job_runs_all_three_linters(workflow):
    runs = _run_lines(workflow["jobs"]["lint"])
    assert "python -m repro lint src/repro" in runs
    assert "--format sarif" in runs
    assert "--baseline lint-baseline.json" in runs
    assert "ruff check" in runs
    assert "mypy" in runs


def test_lint_job_uploads_sarif_to_code_scanning(workflow):
    lint = workflow["jobs"]["lint"]
    upload = next(
        step
        for step in _steps(lint)
        if step.get("uses", "").startswith("github/codeql-action/upload-sarif@")
    )
    # the SARIF must reach code scanning even when the lint step fails
    assert upload["if"] == "always()"
    assert upload["with"]["sarif_file"] == "lint.sarif"
    assert lint["permissions"]["security-events"] == "write"


def test_test_job_matrix_covers_supported_pythons(workflow):
    test = workflow["jobs"]["test"]
    versions = test["strategy"]["matrix"]["python-version"]
    assert versions == ["3.10", "3.11", "3.12", "3.13"]
    setup = next(
        step
        for step in _steps(test)
        if step.get("uses", "").startswith("actions/setup-python@")
    )
    assert "matrix.python-version" in setup["with"]["python-version"]


def test_test_job_runs_the_local_gate_script(workflow):
    # The hosted gate and scripts/check.sh must stay one recipe.
    assert "scripts/check.sh --ci" in _run_lines(workflow["jobs"]["test"])


def test_test_job_uploads_junit_reports(workflow):
    uploads = [
        step
        for step in _steps(workflow["jobs"]["test"])
        if step.get("uses", "").startswith("actions/upload-artifact@")
    ]
    assert uploads and uploads[0]["with"]["path"] == "test-reports/"


def test_equivalence_job_runs_suite_and_two_worker_cross_check(workflow):
    runs = _run_lines(workflow["jobs"]["equivalence"])
    assert "tests/test_batched_equivalence.py" in runs
    assert "tests/test_property_equivalence.py" in runs
    # Cross-engine identity must exercise the process pool too.
    assert "REPRO_BENCH_ENGINE=scalar" in runs
    assert "REPRO_BENCH_ENGINE=batched" in runs
    assert runs.count("--workers 2") == 2
    assert "diff sweep_scalar.txt sweep_batched.txt" in runs


def test_topology_equivalence_job_runs_suite_and_tree_cross_check(workflow):
    runs = _run_lines(workflow["jobs"]["topology-equivalence"])
    # The flat-identity + headline-scenario suite.
    assert "tests/test_topology_equivalence.py" in runs
    # The tree preset must cross-check both engines over worker
    # processes, mirroring the flat equivalence job's sweep contract.
    assert "REPRO_BENCH_ENGINE=scalar" in runs
    assert "REPRO_BENCH_ENGINE=batched" in runs
    assert runs.count("--topology tree-small") == 2
    assert runs.count("--workers 2") == 2
    assert "diff sweep_tree_scalar.txt sweep_tree_batched.txt" in runs


def test_bench_smoke_job_runs_bench_and_regression_gate(workflow):
    runs = _run_lines(workflow["jobs"]["bench-smoke"])
    assert "python -m repro bench --smoke --out BENCH_smoke.json" in runs
    assert (
        "python scripts/bench_compare.py BENCH_baseline.json BENCH_smoke.json"
        in runs
    )
    # The per-phase gate must be pinned explicitly so a default change
    # in bench_compare.py cannot silently loosen CI.
    assert "--phase-threshold 0.5" in runs


def test_bench_smoke_job_uploads_bench_telemetry(workflow):
    uploads = [
        step
        for step in _steps(workflow["jobs"]["bench-smoke"])
        if step.get("uses", "").startswith("actions/upload-artifact@")
    ]
    assert uploads and uploads[0]["with"]["path"] == "BENCH_*.json"
    # Telemetry must be captured even when the regression gate fails.
    assert uploads[0]["if"] == "always()"


def test_ci_commands_reference_only_existing_paths(workflow):
    root = Path(__file__).parent.parent
    assert (root / "scripts" / "check.sh").is_file()
    assert (root / "scripts" / "bench_compare.py").is_file()
    assert (root / "BENCH_baseline.json").is_file()
    assert (root / "lint-baseline.json").is_file()
    for job in workflow["jobs"].values():
        for line in _run_lines(job).splitlines():
            if "tests/test_" in line:
                for token in line.split():
                    if token.startswith("tests/test_"):
                        assert (root / token).is_file(), token
