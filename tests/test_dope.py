"""Unit tests for the adaptive DOPE attacker (paper Fig. 12)."""

import pytest

from repro.cluster import Rack
from repro.network import NetworkLoadBalancer, RateLimitFirewall, SourceRegistry
from repro.workloads import COLLA_FILT, AttackerState, DopeAttacker, TrafficClass
from repro.workloads.catalog import uniform_mix


@pytest.fixture
def registry():
    return SourceRegistry()


def make_attacker(engine, rng, registry, dispatch=None, **kwargs):
    kwargs.setdefault("initial_rate_rps", 50.0)
    kwargs.setdefault("rate_step_rps", 50.0)
    kwargs.setdefault("max_rate_rps", 500.0)
    kwargs.setdefault("num_agents", 10)
    kwargs.setdefault("adjust_interval_s", 5.0)
    return DopeAttacker(
        engine,
        dispatch or (lambda r: True),
        registry,
        rng,
        **kwargs,
    )


class TestProbing:
    def test_ramps_when_ineffective_and_undetected(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry)
        attacker.start()
        engine.run(until=26.0)  # 5 adjustments
        assert attacker.rate_rps == pytest.approx(300.0)
        assert attacker.state is AttackerState.PROBING

    def test_rate_capped_at_max(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry, max_rate_rps=120.0)
        attacker.start()
        engine.run(until=60.0)
        assert attacker.rate_rps == pytest.approx(120.0)

    def test_converges_on_effect_signal(self, engine, rng, registry):
        attacker = make_attacker(
            engine, rng, registry, effect_signal=lambda: True
        )
        attacker.start()
        engine.run(until=30.0)
        assert attacker.state is AttackerState.CONVERGED
        # Converged: the rate holds at the first effective level.
        assert attacker.rate_rps == pytest.approx(50.0)
        assert attacker.stats.converged

    def test_adjustment_history_recorded(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry)
        attacker.start()
        engine.run(until=16.0)
        assert len(attacker.stats.adjustments) == 3
        times = [a.time_s for a in attacker.stats.adjustments]
        assert times == [5.0, 10.0, 15.0]


class TestBackoff:
    def test_detection_triggers_multiplicative_backoff(self, engine, rng, registry):
        detected = {"flag": False}
        attacker = make_attacker(
            engine,
            rng,
            registry,
            detection_signal=lambda: detected["flag"],
            backoff_factor=0.5,
        )
        attacker.start()
        engine.run(until=11.0)  # two probes: 100 → 150
        assert attacker.rate_rps == pytest.approx(150.0)
        detected["flag"] = True
        engine.run(until=16.0)
        assert attacker.rate_rps == pytest.approx(75.0)
        assert attacker.state is AttackerState.BACKING_OFF

    def test_firewall_detection_signal_default(self, engine, rng, registry):
        fw = RateLimitFirewall(threshold_rps=10.0, poll_interval_s=1.0)
        fw.attach(engine)
        attacker = make_attacker(engine, rng, registry, firewall=fw)
        # Ban one of the attacker's own sources.
        victim_source = attacker.pool.first_id
        for _ in range(100):
            fw.admit(victim_source)
        engine.run(until=1.0)
        assert attacker._firewall_detection()

    def test_firewall_detection_ignores_other_sources(self, engine, rng, registry):
        fw = RateLimitFirewall(threshold_rps=10.0, poll_interval_s=1.0)
        fw.attach(engine)
        attacker = make_attacker(engine, rng, registry, firewall=fw)
        foreign = attacker.pool.first_id + attacker.pool.size + 5
        for _ in range(100):
            fw.admit(foreign)
        engine.run(until=1.0)
        assert not attacker._firewall_detection()


class TestEndToEndEvasion:
    def test_dope_slides_under_firewall(self, engine, rng, registry, collector):
        """The defining DOPE property: the converged attack stays
        below the per-source detection threshold while presenting a
        substantial aggregate rate."""
        import numpy as np

        rack = Rack(engine, num_servers=4, rng=np.random.default_rng(1))
        fw = RateLimitFirewall(threshold_rps=150.0, poll_interval_s=5.0)
        fw.attach(engine)
        nlb = NetworkLoadBalancer(
            rack.servers, firewall=fw, now=lambda: engine.now
        )
        attacker = DopeAttacker(
            engine,
            nlb.dispatch,
            registry,
            rng,
            firewall=fw,
            initial_rate_rps=100.0,
            rate_step_rps=100.0,
            max_rate_rps=400.0,
            num_agents=50,
            adjust_interval_s=10.0,
        )
        attacker.start()
        engine.run(until=120.0)
        assert fw.stats.bans == 0
        assert attacker.per_agent_rate < fw.threshold_rps
        assert attacker.generator.generated > 1000

    def test_stop_halts_attack(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry)
        attacker.start()
        engine.run(until=10.0)
        attacker.stop()
        generated = attacker.generator.generated
        adjustments = len(attacker.stats.adjustments)
        engine.run(until=30.0)
        assert attacker.generator.generated == generated
        assert len(attacker.stats.adjustments) == adjustments


class TestValidation:
    def test_bad_backoff_rejected(self, engine, rng, registry):
        with pytest.raises(ValueError):
            make_attacker(engine, rng, registry, backoff_factor=1.5)

    def test_max_below_initial_rejected(self, engine, rng, registry):
        with pytest.raises(ValueError):
            make_attacker(
                engine, rng, registry, initial_rate_rps=100.0, max_rate_rps=50.0
            )

    def test_default_mix_is_high_power_types(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry)
        names = {t.name for t in attacker.generator.mix.types}
        assert names == {"colla-filt", "k-means", "word-count"}


class TestAgentRotation:
    def test_rotation_allocates_fresh_pool(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry, rotate_on_detection=True)
        old_pool = attacker.pool
        attacker.rotate_agents()
        assert attacker.pool is not old_pool
        assert attacker.pool.size == old_pool.size
        assert set(attacker.pool.ids).isdisjoint(set(old_pool.ids))
        assert attacker.generator.source_pool is attacker.pool

    def test_detection_triggers_rotation(self, engine, rng, registry):
        detected = {"flag": True}
        attacker = make_attacker(
            engine,
            rng,
            registry,
            detection_signal=lambda: detected["flag"],
            rotate_on_detection=True,
        )
        attacker.start()
        engine.run(until=11.0)  # two adjustments, both "detected"
        assert attacker.rotations == 2

    def test_no_rotation_without_flag(self, engine, rng, registry):
        attacker = make_attacker(
            engine, rng, registry, detection_signal=lambda: True
        )
        attacker.start()
        engine.run(until=11.0)
        assert attacker.rotations == 0

    def test_rotation_evades_standing_bans(self, engine, rng, registry, collector):
        """A rotating botnet keeps its traffic flowing while a
        non-rotating one starves behind its bans."""
        import numpy as np

        from repro.cluster import Rack
        from repro.network import NetworkLoadBalancer, RateLimitFirewall

        def run(rotate):
            eng = type(engine)()
            reg = type(registry)()
            rack = Rack(eng, num_servers=4, rng=np.random.default_rng(0))
            fw = RateLimitFirewall(
                threshold_rps=10.0, poll_interval_s=5.0, ban_duration_s=600.0
            )
            fw.attach(eng)
            nlb = NetworkLoadBalancer(rack.servers, firewall=fw, now=lambda: eng.now)
            attacker = DopeAttacker(
                eng,
                nlb.dispatch,
                reg,
                np.random.default_rng(1),
                firewall=fw,
                initial_rate_rps=200.0,
                rate_step_rps=50.0,
                max_rate_rps=400.0,
                num_agents=4,  # 50 rps per agent >> threshold: banned fast
                adjust_interval_s=10.0,
                backoff_factor=0.95,
                rotate_on_detection=rotate,
            )
            attacker.start()
            eng.run(until=120.0)
            return attacker.generator.accepted

        static = run(rotate=False)
        rotating = run(rotate=True)
        assert rotating > 2 * static


class TestPredictorPoisonMode:
    def test_mode_validated(self, engine, rng, registry):
        with pytest.raises(ValueError):
            make_attacker(engine, rng, registry, mode="typo-mode")

    def test_classic_is_the_default(self, engine, rng, registry):
        attacker = make_attacker(engine, rng, registry)
        assert attacker.mode == "classic"
        assert attacker._flood_at_s is None

    def test_shapes_then_floods(self, engine, rng, registry):
        attacker = make_attacker(
            engine,
            rng,
            registry,
            mode="predictor-poison",
            poison_duration_s=20.0,
            shaping_rate_rps=10.0,
            max_rate_rps=500.0,
        )
        attacker.start()
        # Shaping window: the quiet stream holds the shaping rate and
        # never ramps, whatever the classic probe loop would have done.
        engine.run(until=19.0)
        assert attacker.state is AttackerState.SHAPING
        assert attacker.rate_rps == pytest.approx(10.0)
        # Flood instant: one step to the full rate and the target mix,
        # then the classic Fig. 12 loop takes over.
        engine.run(until=26.0)
        assert attacker.state is AttackerState.PROBING
        assert attacker.rate_rps == pytest.approx(500.0)
        states = [a.state for a in attacker.stats.adjustments]
        assert AttackerState.SHAPING in states
        assert states[-1] is AttackerState.PROBING

    def test_shaping_mix_defaults_to_lightest_type(self, engine, rng, registry):
        attacker = make_attacker(
            engine, rng, registry, mode="predictor-poison"
        )
        (only_type,) = attacker.shaping_mix.types
        assert only_type.name == "text-cont"

    def test_poison_params_validated(self, engine, rng, registry):
        with pytest.raises(ValueError):
            make_attacker(
                engine, rng, registry,
                mode="predictor-poison", poison_duration_s=0.0,
            )
        with pytest.raises(ValueError):
            make_attacker(
                engine, rng, registry,
                mode="predictor-poison", shaping_rate_rps=-1.0,
            )
