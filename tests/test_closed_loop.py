"""Unit tests for the closed-loop (fixed-concurrency) generator."""

import pytest

from repro.cluster import Rack
from repro.network import NetworkLoadBalancer, SourceRegistry
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass
from repro.workloads.generator import ClosedLoopGenerator, clients_for_rate


@pytest.fixture
def registry():
    return SourceRegistry()


def make_closed_loop(engine, rng, registry, rack, clients=8, think=0.1, mix=TEXT_CONT):
    pool = registry.allocate("cl", TrafficClass.ATTACK, 4)
    nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
    gen = ClosedLoopGenerator(
        engine=engine,
        dispatch=nlb.dispatch,
        rng=rng,
        source_pool=pool,
        mix=mix,
        num_clients=clients,
        think_s=think,
    )
    return gen, nlb


class TestConcurrencyInvariant:
    def test_outstanding_never_exceeds_clients(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(engine, rng, registry, rack, clients=6, think=0.0)
        gen.start()
        max_seen = []
        stop = engine.every(0.01, lambda: max_seen.append(rack.total_in_system()))
        engine.run(until=5.0)
        stop()
        assert max(max_seen) <= 6

    def test_rate_self_limits_to_capacity(self, engine, rng, registry, rack):
        # 64 clients of heavy requests against 32 workers: the achieved
        # rate is bounded by service capacity, not by client count.
        gen, _ = make_closed_loop(
            engine, rng, registry, rack, clients=64, think=0.0, mix=COLLA_FILT
        )
        gen.start()
        engine.run(until=20.0)
        capacity = 32 / COLLA_FILT.base_service_s
        achieved = gen.generated / 20.0
        assert achieved <= capacity * 1.05

    def test_throttling_reduces_achieved_rate(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(
            engine, rng, registry, rack, clients=64, think=0.0, mix=COLLA_FILT
        )
        gen.start()
        engine.run(until=10.0)
        fast = gen.generated
        rack.set_all_levels(0)
        engine.run(until=20.0)
        slow = gen.generated - fast
        assert slow < fast * 0.75


class TestRateSizing:
    def test_clients_for_rate_littles_law(self):
        # rate × (think + service) clients.
        n = clients_for_rate(100.0, TEXT_CONT, think_s=0.2)
        assert n == round(100 * (0.2 + TEXT_CONT.base_service_s))

    def test_clients_for_rate_minimum_one(self):
        assert clients_for_rate(0.1, TEXT_CONT, think_s=0.0) == 1

    def test_achieved_rate_near_target_when_unloaded(
        self, engine, rng, registry, rack
    ):
        target = 50.0
        clients = clients_for_rate(target, TEXT_CONT, think_s=0.2)
        gen, _ = make_closed_loop(
            engine, rng, registry, rack, clients=clients, think=0.2
        )
        gen.start()
        engine.run(until=30.0)
        achieved = gen.generated / 30.0
        assert achieved == pytest.approx(target, rel=0.2)


class TestDynamicSizing:
    def test_set_clients_grows_pool(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(engine, rng, registry, rack, clients=2, think=0.1)
        gen.start()
        engine.run(until=5.0)
        rate_small = gen.generated / 5.0
        gen.set_clients(16)
        engine.run(until=15.0)
        rate_big = (gen.generated) / 15.0
        assert rate_big > rate_small * 2

    def test_set_clients_shrinks_pool(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(engine, rng, registry, rack, clients=16, think=0.1)
        gen.start()
        engine.run(until=5.0)
        first = gen.generated
        gen.set_clients(2)
        engine.run(until=10.0)
        second = gen.generated - first
        assert second < first * 0.5

    def test_set_clients_validation(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(engine, rng, registry, rack)
        with pytest.raises(ValueError):
            gen.set_clients(0)


class TestLifecycle:
    def test_stop_ends_generation(self, engine, rng, registry, rack):
        gen, _ = make_closed_loop(engine, rng, registry, rack, clients=4, think=0.05)
        gen.start()
        engine.schedule(2.0, gen.stop)
        engine.run(until=10.0)
        at_stop = gen.generated
        engine.run(until=20.0)
        assert gen.generated == at_stop

    def test_drops_reissue_after_think(self, engine, rng, registry):
        # With a zero-capacity backend every request drops; the client
        # keeps retrying rather than deadlocking.
        import numpy as np

        rack = Rack(
            engine, num_servers=1, rng=np.random.default_rng(0), queue_capacity=0
        )
        for i in range(rack.servers[0].num_workers):
            # Fill all workers with a long request so everything drops.
            from repro.network import Request
            from repro.workloads import K_MEANS

            rack.servers[0].submit(
                Request(K_MEANS, 100 + i, TrafficClass.NORMAL, 0.0)
            )
        gen, nlb = make_closed_loop(engine, rng, registry, rack, clients=2, think=0.05)
        gen.start()
        engine.run(until=1.0)
        assert gen.generated > 5
        assert nlb.dropped > 5

    def test_validation(self, engine, rng, registry, rack):
        pool = registry.allocate("v", TrafficClass.ATTACK, 1)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(
                engine, lambda r: True, rng, pool, TEXT_CONT, num_clients=0
            )
