"""Tests for the on-disk result cache and its content-hash keying.

The contract: same ``(experiment id, params, seed, repro version)``
hits; changing any one of the four misses; a truncated or corrupted
entry falls back to recompute instead of crashing; and cached values
round-trip floats exactly, so cached sweeps stay byte-identical.
"""

import json
import os

import pytest

from repro.runner import (
    CellSpec,
    ResultCache,
    canonical_json,
    cell_key,
    default_experiment_id,
    run_cells,
)


def counting_experiment(x, seed, counter_dir):
    """Record every real invocation so tests can observe cache hits."""
    path = os.path.join(counter_dir, "calls.log")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(f"{x},{seed}\n")
    return {"value": float(x) * 10.0 + seed, "precise": 0.1 + 0.2}


def call_count(counter_dir) -> int:
    path = os.path.join(counter_dir, "calls.log")
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        return len(fh.readlines())


def specs_for(values, counter_dir, seed=0):
    return [
        CellSpec(
            index=i,
            params={"x": x, "seed": seed, "counter_dir": str(counter_dir)},
            seed=seed,
        )
        for i, x in enumerate(values)
    ]


class TestCellKey:
    def test_same_inputs_same_key(self):
        a = cell_key("exp", {"a": 1, "b": 2.5}, seed=3)
        b = cell_key("exp", {"b": 2.5, "a": 1}, seed=3)  # order-insensitive
        assert a == b

    def test_any_param_change_misses(self):
        base = cell_key("exp", {"a": 1, "b": 2.5}, seed=3)
        assert cell_key("exp", {"a": 2, "b": 2.5}, seed=3) != base
        assert cell_key("exp", {"a": 1, "b": 2.500001}, seed=3) != base
        assert cell_key("exp", {"a": 1}, seed=3) != base

    def test_seed_change_misses(self):
        assert cell_key("exp", {"a": 1}, seed=3) != cell_key(
            "exp", {"a": 1}, seed=4
        )

    def test_experiment_change_misses(self):
        assert cell_key("exp1", {"a": 1}, seed=3) != cell_key(
            "exp2", {"a": 1}, seed=3
        )

    def test_repro_version_change_misses(self):
        assert cell_key("exp", {"a": 1}, seed=3, version="1.1.0") != cell_key(
            "exp", {"a": 1}, seed=3, version="1.2.0"
        )

    def test_unserialisable_param_rejected(self):
        with pytest.raises(TypeError):
            cell_key("exp", {"a": object()}, seed=0)

    def test_canonical_json_handles_enums_and_tuples(self):
        from repro.power import BudgetLevel

        text = canonical_json({"level": BudgetLevel.LOW, "axes": (1, 2)})
        assert "BudgetLevel.LOW" in text
        assert json.loads(text)["axes"] == [1, 2]

    def test_default_experiment_id_rejects_lambdas(self):
        assert default_experiment_id(counting_experiment).endswith(
            "counting_experiment"
        )
        with pytest.raises(TypeError):
            default_experiment_id(lambda s: {"x": 1.0})


class TestResultCache:
    def test_same_cell_hits_without_reexecution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for([1, 2], tmp_path)
        first = run_cells(counting_experiment, specs, cache=cache)
        assert call_count(tmp_path) == 2
        second = run_cells(counting_experiment, specs, cache=cache)
        assert call_count(tmp_path) == 2  # nothing re-ran
        assert cache.hits == 2
        assert [o.value for o in second] == [o.value for o in first]
        assert all(o.from_cache for o in second)
        assert not any(o.from_cache for o in first)

    def test_float_values_round_trip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for([3], tmp_path)
        first = run_cells(counting_experiment, specs, cache=cache)
        second = run_cells(counting_experiment, specs, cache=cache)
        assert second[0].value["precise"] == first[0].value["precise"]
        assert repr(second[0].value["precise"]) == repr(0.1 + 0.2)

    def test_param_or_seed_change_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_cells(counting_experiment, specs_for([1], tmp_path), cache=cache)
        run_cells(counting_experiment, specs_for([2], tmp_path), cache=cache)
        run_cells(
            counting_experiment, specs_for([1], tmp_path, seed=9), cache=cache
        )
        assert call_count(tmp_path) == 3
        assert cache.hits == 0

    def test_experiment_id_change_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for([1], tmp_path)
        run_cells(counting_experiment, specs, cache=cache, experiment_id="a")
        run_cells(counting_experiment, specs, cache=cache, experiment_id="b")
        assert call_count(tmp_path) == 2

    def test_truncated_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for([4], tmp_path)
        run_cells(counting_experiment, specs, cache=cache)
        (entry,) = list((tmp_path / "cache").glob("??/*.json"))
        entry.write_text(entry.read_text()[:10])  # truncate mid-document
        outcomes = run_cells(counting_experiment, specs, cache=cache)
        assert outcomes[0].ok and not outcomes[0].from_cache
        assert call_count(tmp_path) == 2
        # The recompute healed the entry: next run hits again.
        run_cells(counting_experiment, specs, cache=cache)
        assert call_count(tmp_path) == 2

    def test_corrupted_json_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for([5], tmp_path)
        run_cells(counting_experiment, specs, cache=cache)
        (entry,) = list((tmp_path / "cache").glob("??/*.json"))
        entry.write_text('{"key": "wrong", "value": "not-a-dict"}')
        outcomes = run_cells(counting_experiment, specs, cache=cache)
        assert outcomes[0].ok
        assert call_count(tmp_path) == 2

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        outcomes = run_cells(
            _always_raise,
            [CellSpec(index=0, params={"seed": 0}, seed=0)],
            cache=cache,
        )
        assert not outcomes[0].ok
        assert len(cache) == 0

    def test_cache_requires_stable_experiment_identity(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(TypeError):
            run_cells(
                lambda seed: {"x": 1.0},
                [CellSpec(index=0, params={"seed": 0}, seed=0)],
                cache=cache,
            )

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            cache.path_for("../../etc/passwd")


def _always_raise(seed):
    raise RuntimeError("never cache me")
