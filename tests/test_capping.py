"""Unit tests for the Capping scheme (DVFS-only, Table 2 row 1)."""

import pytest

from repro.network import Request
from repro.power import BudgetLevel, CappingScheme, PowerBudget
from repro.workloads import COLLA_FILT, K_MEANS, TrafficClass


def load_rack(rack, rtype=COLLA_FILT, per_server=8):
    for s in rack.servers:
        for i in range(per_server):
            s.submit(Request(rtype, i, TrafficClass.ATTACK, 0.0))


def bind(scheme, engine, rack, supply_w, battery=None, slot=1.0):
    scheme.bind(engine, rack, PowerBudget(supply_w), battery, slot)
    return scheme


class TestCappingStep:
    def test_no_action_within_budget(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=400.0)
        scheme.step()
        assert rack.levels() == [12] * 4

    def test_throttles_to_fit_budget(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=320.0)
        load_rack(rack)  # full Colla-Filt load: 400 W at nominal
        scheme.step()
        assert rack.total_power() <= 320.0
        assert all(level < 12 for level in rack.levels())

    def test_chooses_highest_fitting_level(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=320.0)
        load_rack(rack)
        scheme.step()
        level = rack.levels()[0]
        # One level higher must violate the budget.
        assert scheme.predict_power_at_level(level + 1) > 320.0

    def test_uniform_across_servers(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=300.0)
        load_rack(rack)
        scheme.step()
        assert len(set(rack.levels())) == 1

    def test_recovers_when_load_drops(self, engine, rack, collector):
        scheme = bind(CappingScheme(), engine, rack, supply_w=320.0)
        load_rack(rack)
        scheme.step()
        throttled = rack.levels()[0]
        engine.run(until=60.0)  # all requests finish
        scheme.step()
        assert rack.levels()[0] > throttled
        assert rack.levels() == [12] * 4

    def test_memory_bound_load_needs_deeper_throttle(self, engine, rack, rng):
        # Fig 6b: K-means' frequency-insensitive power forces lower V/F
        # for the same budget.
        s1 = bind(CappingScheme(), engine, rack, supply_w=330.0)
        load_rack(rack, COLLA_FILT)
        s1.step()
        cf_level = rack.levels()[0]

        from repro.cluster import Rack
        import numpy as np

        rack2 = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
        s2 = bind(CappingScheme(), engine, rack2, supply_w=330.0)
        load_rack(rack2, K_MEANS)
        s2.step()
        km_level = rack2.levels()[0]
        assert km_level < cf_level

    def test_idle_floor_dominated_budget_goes_to_bottom(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=100.0)
        load_rack(rack)
        scheme.step()
        assert rack.levels() == [0] * 4

    def test_decision_log(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=320.0)
        scheme.step()
        scheme.step()
        assert len(scheme.decisions) == 2


class TestHysteresis:
    def test_no_chatter_at_boundary(self, engine, rack, collector):
        """A load sitting exactly at the cap must not oscillate between
        adjacent levels on successive slots."""
        scheme = bind(CappingScheme(), engine, rack, supply_w=345.0)
        load_rack(rack)
        levels = []
        for _ in range(6):
            scheme.step()
            levels.append(rack.levels()[0])
        assert len(set(levels[1:])) == 1

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            CappingScheme(hysteresis=0.6)


class TestBinding:
    def test_step_before_bind_rejected(self):
        with pytest.raises(RuntimeError):
            CappingScheme().step()

    def test_double_bind_rejected(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=400.0)
        with pytest.raises(RuntimeError):
            scheme.bind(engine, rack, PowerBudget(400.0), None, 1.0)

    def test_no_nlb_hooks(self, engine, rack):
        scheme = bind(CappingScheme(), engine, rack, supply_w=400.0)
        assert scheme.forwarding_policy(rack.servers) is None
        assert scheme.admission_filter() is None


class TestLocalCapping:
    def test_each_server_fits_its_share(self, engine, rack):
        from repro.power import LocalCappingScheme

        scheme = LocalCappingScheme()
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        load_rack(rack)
        scheme.step()
        share = 320.0 / 4
        for server in rack.servers:
            assert server.current_power() <= share + 1e-6

    def test_power_fragmentation_strands_headroom(self, engine, rack, rng):
        """One hot server next to three idle ones: local capping
        throttles the hot one to its 1/4 share even though the rack as
        a whole is far below budget — the stranded-headroom pathology
        a global controller avoids."""
        import numpy as np

        from repro.cluster import Rack
        from repro.power import LocalCappingScheme

        def hot_server_level(scheme_cls):
            r = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
            scheme = scheme_cls()
            scheme.bind(engine, r, PowerBudget(320.0), None, 1.0)
            for i in range(8):
                r.servers[0].submit(
                    Request(COLLA_FILT, i, TrafficClass.ATTACK, 0.0)
                )
            scheme.step()
            return r.servers[0].level, r.total_power()

        local_level, local_power = hot_server_level(LocalCappingScheme)
        global_level, global_power = hot_server_level(CappingScheme)
        # Rack power is within budget either way...
        assert local_power <= 320.0 and global_power <= 320.0
        # ...but the local controller throttles the hot server (its
        # share is 80 W, fitting only ~2.0 GHz) while the global one
        # leaves it at nominal (100+114 < 320 rack-wide).
        assert global_level == 12
        assert local_level <= 8

    def test_idle_servers_stay_nominal(self, engine, rack):
        from repro.power import LocalCappingScheme

        scheme = LocalCappingScheme()
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        scheme.step()
        assert rack.levels() == [12] * 4

    def test_validation(self):
        from repro.power import LocalCappingScheme

        with pytest.raises(ValueError):
            LocalCappingScheme(hysteresis=0.9)
