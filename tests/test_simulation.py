"""Integration tests for the DataCenterSimulation facade."""

import numpy as np
import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.network import NullFirewall, RateLimitFirewall
from repro.trace import SyntheticAlibabaTrace
from repro.workloads import COLLA_FILT, TrafficClass


class TestConstruction:
    def test_default_wiring(self):
        sim = DataCenterSimulation()
        assert sim.rack.num_servers == 4
        assert sim.budget.supply_w == 400.0
        assert sim.battery is not None
        assert isinstance(sim.firewall, RateLimitFirewall)

    def test_firewall_disabled(self):
        sim = DataCenterSimulation(SimulationConfig(use_firewall=False))
        assert isinstance(sim.firewall, NullFirewall)

    def test_battery_disabled(self):
        sim = DataCenterSimulation(SimulationConfig(use_battery=False))
        assert sim.battery is None

    def test_scheme_policy_installed(self):
        sim = DataCenterSimulation(scheme=AntiDopeScheme())
        assert sim.nlb.policy is sim.scheme.pdf

    def test_token_filter_installed(self):
        sim = DataCenterSimulation(scheme=TokenScheme())
        assert sim.nlb.admission_filter is sim.scheme.bucket


class TestRunning:
    def test_run_advances_clock(self):
        sim = DataCenterSimulation()
        sim.run(10.0)
        assert sim.now == 10.0
        sim.run(5.0)
        assert sim.now == 15.0

    def test_meter_starts_with_run(self):
        sim = DataCenterSimulation()
        sim.run(5.0)
        assert len(sim.meter) >= 5

    def test_scheme_stepped_every_slot(self):
        sim = DataCenterSimulation(scheme=CappingScheme())
        sim.run(10.0)
        assert len(sim.scheme.decisions) == 10

    def test_normal_traffic_flows(self):
        sim = DataCenterSimulation()
        sim.add_normal_traffic(rate_rps=50.0)
        sim.run(10.0)
        assert sim.collector.total(TrafficClass.NORMAL) > 300

    def test_flood_windowed(self):
        sim = DataCenterSimulation()
        sim.add_flood(mix=COLLA_FILT, rate_rps=100.0, start_s=5.0, end_s=8.0)
        sim.run(15.0)
        attack = sim.collector.filtered(traffic_class=TrafficClass.ATTACK)
        times = [r.arrival_time_s for r in attack]
        assert min(times) >= 5.0
        assert max(times) <= 8.5  # last in-flight completions

    def test_trace_driven_normal_traffic(self):
        trace = SyntheticAlibabaTrace().generate(8, 600, 30, seed=1)
        sim = DataCenterSimulation()
        sim.add_normal_traffic(rate_rps=20.0, trace=trace, trace_peak_rate_rps=60.0)
        sim.run(30.0)
        assert sim.collector.total(TrafficClass.NORMAL) > 0


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run(seed):
            sim = DataCenterSimulation(
                SimulationConfig(seed=seed, budget_level=BudgetLevel.LOW),
                scheme=CappingScheme(),
            )
            sim.add_normal_traffic(rate_rps=30)
            sim.add_flood(mix=COLLA_FILT, rate_rps=150, start_s=5)
            sim.run(30.0)
            return (
                len(sim.collector),
                sim.latency_stats().mean,
                sim.meter.peak_power(),
            )

        assert run(7) == run(7)

    def test_different_seeds_differ(self):
        def run(seed):
            sim = DataCenterSimulation(SimulationConfig(seed=seed))
            sim.add_normal_traffic(rate_rps=30)
            sim.run(20.0)
            return sim.latency_stats().mean

        assert run(1) != run(2)


class TestResultAccessors:
    def test_latency_stats_windowed(self):
        sim = DataCenterSimulation()
        sim.add_normal_traffic(rate_rps=50)
        sim.run(20.0)
        full = sim.latency_stats()
        late = sim.latency_stats(start_s=10.0)
        assert late.count < full.count

    def test_availability_report(self):
        sim = DataCenterSimulation()
        sim.add_normal_traffic(rate_rps=50)
        sim.run(10.0)
        report = sim.availability_report()
        assert report.offered > 0
        assert report.availability > 0.95

    def test_energy_accounting_window(self):
        sim = DataCenterSimulation()
        sim.run(5.0)
        accountant = sim.start_energy_accounting()
        sim.run(10.0)
        report = accountant.report()
        assert report.duration_s == pytest.approx(10.0)
        assert report.load_energy_j == pytest.approx(4 * 38.0 * 10.0, rel=0.01)

    def test_new_rng_streams_independent(self):
        sim = DataCenterSimulation()
        a = sim.new_rng().random()
        b = sim.new_rng().random()
        assert a != b
