"""Crash-injection and ordering tests for :mod:`repro.runner.executor`.

The runner's promise is that a sweep is never killed by one bad cell:
an experiment that raises — or a worker process that dies hard — yields
a structured :class:`CellError` outcome, the pool survives, and every
other cell completes with its value in canonical order.
"""

import os

import pytest

from repro.runner import CellError, CellOutcome, CellSpec, run_cells

WORKERS = 3


def square(x, seed):
    return {"value": float(x * x + seed)}


def raise_on_two(x, seed):
    if x == 2:
        raise ValueError(f"injected failure at x={x}")
    return {"value": float(x)}


def exit_on_two(x, seed):
    if x == 2:
        os._exit(17)  # hard death: no exception, no cleanup, broken pool
    return {"value": float(x)}


def fail_once_marker(x, seed, marker_dir):
    marker = os.path.join(marker_dir, f"attempt-{x}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("first attempt\n")
        raise RuntimeError("flaky: first attempt always fails")
    return {"value": float(x)}


def specs_for(values, extra=None):
    extra = extra or {}
    return [
        CellSpec(index=i, params={"x": x, "seed": 0, **extra}, seed=0)
        for i, x in enumerate(values)
    ]


class TestSerialExecution:
    def test_values_in_spec_order(self):
        outcomes = run_cells(square, specs_for([3, 1, 2]))
        assert [o.value["value"] for o in outcomes] == [9.0, 1.0, 4.0]
        assert all(isinstance(o, CellOutcome) and o.ok for o in outcomes)

    def test_raising_cell_becomes_cell_error(self):
        outcomes = run_cells(raise_on_two, specs_for([1, 2, 3]))
        assert outcomes[0].ok and outcomes[2].ok
        err = outcomes[1].error
        assert isinstance(err, CellError)
        assert err.kind == "exception"
        assert err.exc_type == "ValueError"
        assert "injected failure" in err.message
        assert err.params["x"] == 2

    def test_deterministic_failure_is_retried_once(self):
        outcomes = run_cells(raise_on_two, specs_for([2]), retries=1)
        assert outcomes[0].error.attempts == 2

    def test_flaky_cell_succeeds_on_retry(self, tmp_path):
        outcomes = run_cells(
            fail_once_marker,
            specs_for([5], extra={"marker_dir": str(tmp_path)}),
            retries=1,
        )
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_zero_retries_fails_immediately(self, tmp_path):
        outcomes = run_cells(
            fail_once_marker,
            specs_for([5], extra={"marker_dir": str(tmp_path)}),
            retries=0,
        )
        assert not outcomes[0].ok
        assert outcomes[0].error.attempts == 1


class TestParallelExecution:
    def test_values_in_spec_order(self):
        outcomes = run_cells(square, specs_for([4, 2, 7, 1]), workers=WORKERS)
        assert [o.value["value"] for o in outcomes] == [16.0, 4.0, 49.0, 1.0]

    def test_raising_cell_survives_pool(self):
        outcomes = run_cells(
            raise_on_two, specs_for([0, 1, 2, 3, 4]), workers=WORKERS
        )
        values = {o.spec.params["x"]: o for o in outcomes}
        err = values[2].error
        assert isinstance(err, CellError)
        assert err.kind == "exception"
        assert err.attempts == 2  # retried once, then surfaced
        assert "injected failure" in err.traceback_text
        for x in (0, 1, 3, 4):
            assert values[x].ok and values[x].value["value"] == float(x)

    def test_flaky_cell_retried_in_pool(self, tmp_path):
        outcomes = run_cells(
            fail_once_marker,
            specs_for([1, 2, 3], extra={"marker_dir": str(tmp_path)}),
            workers=WORKERS,
        )
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)

    def test_hard_exit_yields_crash_error_and_pool_survives(self):
        outcomes = run_cells(
            exit_on_two, specs_for([0, 1, 2, 3, 4]), workers=WORKERS
        )
        values = {o.spec.params["x"]: o for o in outcomes}
        err = values[2].error
        assert isinstance(err, CellError)
        assert err.kind == "crash"
        assert err.exc_type == "WorkerCrash"
        assert err.attempts == 2  # one attributed crash + one retry
        # Every innocent cell still completed despite the broken pool.
        for x in (0, 1, 3, 4):
            assert values[x].ok and values[x].value["value"] == float(x)

    def test_cell_error_message_names_the_cell(self):
        outcomes = run_cells(raise_on_two, specs_for([2]), workers=2)
        message = str(outcomes[0].error)
        assert "cell 0" in message
        assert "ValueError" in message


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_cells(square, specs_for([1]), workers=0)

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError):
            run_cells(square, specs_for([1]), retries=-1)

    def test_empty_specs_is_empty_result(self):
        assert run_cells(square, []) == []
