"""Unit tests for the DPM planner (Algorithm 1)."""

import pytest

from repro.core import DPMPlanner, ThrottlePlan


def linear_predictor(suspect_w_per_level, innocent_w_per_level, base=0.0):
    """A simple monotone predictor: watts grow linearly with level."""

    def predict(p, q):
        return base + suspect_w_per_level * p + innocent_w_per_level * q

    return predict


class TestPhase1SuspectOnly:
    def test_no_throttle_when_budget_loose(self):
        planner = DPMPlanner(max_level=12)
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(500.0, predict, 12, 12)
        assert plan.suspect_level == 12
        assert plan.innocent_level == 12
        assert plan.feasible

    def test_throttles_suspect_pool_first(self):
        planner = DPMPlanner(max_level=12)
        # At (12, 12): 40 + 120 + 240 = 400.  Cap 360 needs suspect <= 8.
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(360.0, predict, 12, 12)
        assert plan.innocent_level == 12  # innocent untouched
        assert plan.suspect_level == 8
        assert plan.predicted_power_w <= 360.0

    def test_picks_highest_fitting_suspect_level(self):
        planner = DPMPlanner(max_level=12, hysteresis=0.0)
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(360.0, predict, 12, 12)
        assert predict(plan.suspect_level + 1, 12) > 360.0


class TestPhase2InnocentFallback:
    def test_innocent_throttled_only_when_suspect_insufficient(self):
        planner = DPMPlanner(max_level=12)
        # Even suspect at 0: 40 + 0 + 240 = 280 > cap 240 → innocent must drop.
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(240.0, predict, 12, 12)
        assert plan.suspect_level == 0
        assert plan.innocent_level < 12
        assert plan.predicted_power_w <= 240.0
        assert plan.feasible
        assert plan.degrades_innocent(12)

    def test_phase1_plans_do_not_degrade_innocent(self):
        planner = DPMPlanner(max_level=12)
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(360.0, predict, 12, 12)
        assert not plan.degrades_innocent(12)


class TestPhase3Infeasible:
    def test_idle_floor_dominated_goes_to_bottom(self):
        planner = DPMPlanner(max_level=12)
        predict = linear_predictor(10.0, 20.0, base=40.0)
        plan = planner.plan(30.0, predict, 12, 12)  # below the 40 W base
        assert plan.suspect_level == 0
        assert plan.innocent_level == 0
        assert not plan.feasible


class TestHysteresis:
    def test_raising_needs_guard_margin(self):
        planner = DPMPlanner(max_level=12, hysteresis=0.10)
        predict = linear_predictor(10.0, 0.0, base=0.0)
        # Current suspect level 5 (50 W).  Cap 100: level 10 fits the cap
        # exactly but not the 90 W guard; level 9 fits both.
        plan = planner.plan(100.0, predict, 5, 12)
        assert plan.suspect_level == 9

    def test_holding_does_not_need_guard(self):
        planner = DPMPlanner(max_level=12, hysteresis=0.10)
        predict = linear_predictor(10.0, 0.0, base=0.0)
        # Already at level 10 drawing exactly the cap: stay, don't drop.
        plan = planner.plan(100.0, predict, 10, 12)
        assert plan.suspect_level == 10

    def test_zero_hysteresis_raises_to_cap(self):
        planner = DPMPlanner(max_level=12, hysteresis=0.0)
        predict = linear_predictor(10.0, 0.0, base=0.0)
        plan = planner.plan(100.0, predict, 5, 12)
        assert plan.suspect_level == 10


class TestValidation:
    def test_levels_validated(self):
        planner = DPMPlanner(max_level=12)
        with pytest.raises(ValueError):
            planner.plan(100.0, lambda p, q: 0.0, 13, 12)
        with pytest.raises(ValueError):
            planner.plan(100.0, lambda p, q: 0.0, 12, -1)

    def test_negative_cap_rejected(self):
        planner = DPMPlanner(max_level=12)
        with pytest.raises(ValueError):
            planner.plan(-1.0, lambda p, q: 0.0, 12, 12)

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            DPMPlanner(max_level=12, hysteresis=1.5)
