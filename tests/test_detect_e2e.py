"""OnlineDetect end-to-end: quarantine, placement, faults, DOPE region.

The acceptance scenarios of the fifth scheme:

* a flood population is quarantined with zero false positives on the
  legitimate AliOS users;
* row placement carves one quarantine server per power-tree row;
* the detector keeps working (clamped, not amplifying garbage) under
  meter noise and dropout;
* **shrinkage** — a DOPE operating point the static Anti-DOPE suspect
  list cannot see (the attacker requests types outside the offline
  profile) is *detected* by OnlineDetect, and the fig11 analyzer's
  dope fraction shrinks accordingly;
* **evasion** — the probe-and-adjust attacker of Fig. 12, given a
  quarantine feedback signal and a mix-dilution evasion knob, still
  fails to reopen the region: the shrinkage survives adaptation.
"""

import json

import pytest

from repro import AntiDopeScheme, CappingScheme, OnlineDetectScheme
from repro.analysis import DopeRegionAnalyzer, detector_summary
from repro.faults import FaultInjector, FaultPlan
from repro.power import BudgetLevel
from repro.sim import DataCenterSimulation, SimulationConfig
from repro.workloads import COLLA_FILT, K_MEANS, TEXT_CONT, VOLUME_DOS, uniform_mix


def _flood_run(scheme, seed=1, duration_s=60.0, **config_kwargs):
    config = SimulationConfig(
        budget_level=BudgetLevel.LOW, seed=seed, **config_kwargs
    )
    sim = DataCenterSimulation(config, scheme=scheme)
    sim.add_normal_traffic(rate_rps=40.0, num_users=50)
    flood = sim.add_flood(
        mix=COLLA_FILT, rate_rps=220.0, num_agents=20, start_s=5.0
    )
    return sim, flood


def _violation_slots(sim):
    return sim.obs.counters.get("power.budget_violation_slots")


class TestQuarantine:
    def test_flood_quarantined_without_false_positives(self):
        scheme = OnlineDetectScheme()
        sim, flood = _flood_run(scheme)
        normal_pool = sim.generators[0].source_pool
        sim.run(60.0)
        suspects = scheme.suspect_sources
        assert all(flood.source_pool.contains(s) for s in suspects)
        assert not any(normal_pool.contains(s) for s in suspects)
        # The whole agent pool ends up flagged, not just a straggler.
        assert len(suspects) == flood.source_pool.size

    def test_report_is_deterministic_and_json_safe(self):
        def run():
            scheme = OnlineDetectScheme()
            sim, _ = _flood_run(scheme, duration_s=30.0)
            sim.run(30.0)
            return detector_summary(scheme)

        first, second = run(), run()
        assert first == second
        # allow_nan=False: the export contract — no NaN/Inf anywhere.
        payload = json.dumps(first, sort_keys=True, allow_nan=False)
        assert "online-detect" in payload
        assert first["warmed_up"] is True
        assert first["suspect_sources"]

    def test_detector_summary_none_for_static_schemes(self):
        assert detector_summary(CappingScheme()) is None


class TestRowPlacement:
    def test_row_placement_carves_one_server_per_row(self):
        config = SimulationConfig.for_topology(
            "tree-small", budget_level=BudgetLevel.LOW, seed=1,
            detect_placement="row",
        )
        scheme = OnlineDetectScheme(placement="row")
        sim = DataCenterSimulation(config, scheme=scheme)
        spec = config.topology_spec
        # One quarantine server per row, each the last of its row span.
        servers_per_row = spec.racks_per_row * spec.servers_per_rack
        expected = [
            (r + 1) * servers_per_row - 1 for r in range(spec.rows)
        ]
        assert scheme.policy.suspect_server_ids == expected
        sim.run(5.0)

    def test_flat_model_falls_back_to_dc_carve(self):
        scheme = OnlineDetectScheme(placement="row")
        sim, _ = _flood_run(scheme)
        # No tree bound: the dc carve (last server) stays in place.
        assert scheme.policy.suspect_server_ids == [
            sim.config.num_servers - 1
        ]


class TestFaultDegradation:
    def test_detector_survives_meter_noise_and_dropout(self):
        scheme = OnlineDetectScheme()
        sim, flood = _flood_run(scheme)
        plan = FaultPlan(seed=3)
        plan.meter_noise(10.0, sigma_w=8.0, bias_w=0.0)
        plan.meter_dropout(25.0, duration_s=15.0)
        FaultInjector(sim, plan).arm()
        sim.run(60.0)
        # Degraded sensing keeps the gain bounded …
        from repro.detect.features import GAIN_MAX, GAIN_MIN

        report = scheme.report()
        assert GAIN_MIN <= report["calibration_gain"] <= GAIN_MAX
        # … and the behavioural features still catch the flood.
        assert any(
            flood.source_pool.contains(s) for s in scheme.suspect_sources
        )

    def test_dropout_clamps_calibration_at_light_load(self):
        # A blind meter answers worst-case nameplate; on a mostly-idle
        # rack the raw sensed/modelled ratio (~2.6 here) exceeds
        # GAIN_MAX, so the extractor must clamp rather than amplify.
        scheme = OnlineDetectScheme()
        config = SimulationConfig(budget_level=BudgetLevel.LOW, seed=3)
        sim = DataCenterSimulation(config, scheme=scheme)
        sim.add_normal_traffic(rate_rps=5.0, num_users=20)
        plan = FaultPlan(seed=3)
        plan.meter_dropout(10.0, duration_s=20.0)
        FaultInjector(sim, plan).arm()
        sim.run(40.0)
        from repro.detect.features import GAIN_MAX

        assert sim.obs.counters.get("detect.calibration_clamped") > 0
        assert scheme.report()["calibration_gain"] <= GAIN_MAX


class TestRegionShrinkage:
    """The headline: the detector shrinks the undetectable DOPE region.

    The static suspect list is profiled on the *wrong* types (the
    adaptive attacker sidesteps the offline profile), so a colla-filt
    flood violates the budget with zero bans — a DOPE cell.  The online
    detector classifies by behaviour, not URL, and flags the same
    operating point.
    """

    SIDESTEP_TYPES = (TEXT_CONT, VOLUME_DOS)

    def _probe(self, scheme):
        config = SimulationConfig(budget_level=BudgetLevel.LOW, seed=5)
        sim = DataCenterSimulation(config, scheme=scheme)
        sim.add_normal_traffic(rate_rps=20.0, num_users=50)
        flood = sim.add_flood(
            mix=COLLA_FILT, rate_rps=250.0, num_agents=20
        )
        sim.run(30.0)
        peak = sim.meter.peak_power()
        flagged = bool(
            getattr(scheme, "suspect_sources", None)
        ) and any(
            flood.source_pool.contains(s) for s in scheme.suspect_sources
        )
        return peak, sim.budget.supply_w, sim.firewall.stats.bans, flagged

    def test_static_list_misses_what_online_detect_flags(self):
        peak, budget, bans, flagged = self._probe(
            AntiDopeScheme(profiled_types=self.SIDESTEP_TYPES)
        )
        assert peak > budget  # the attack lands …
        assert bans == 0 and not flagged  # … and stays invisible: DOPE.
        peak2, budget2, bans2, flagged2 = self._probe(OnlineDetectScheme())
        assert peak2 > budget2  # same operating point …
        assert flagged2  # … but now detected.

    def test_analyzer_dope_fraction_shrinks(self):
        kwargs = dict(
            config=SimulationConfig(budget_level=BudgetLevel.LOW, seed=5),
            window_s=15.0,
            num_agents=20,
        )
        types = (COLLA_FILT, K_MEANS)
        rates = (60.0, 250.0, 600.0)
        unmanaged = DopeRegionAnalyzer(**kwargs).sweep(types, rates)
        detected = DopeRegionAnalyzer(scheme="online-detect", **kwargs).sweep(
            types, rates
        )
        assert unmanaged.dope_fraction() > 0.0
        assert detected.dope_fraction() < unmanaged.dope_fraction()
        # Detector flags never appear without the detector.
        assert not any(c.detector_flagged for c in unmanaged.cells)
        assert any(c.detector_flagged for c in detected.cells)


class TestAdaptiveEvasion:
    """Fig. 12 attacker vs the detector: shrinkage survives adaptation."""

    ATTACK = dict(
        target_mix=uniform_mix((COLLA_FILT, K_MEANS)),
        initial_rate_rps=100.0,
        rate_step_rps=75.0,
        max_rate_rps=800.0,
        num_agents=20,
        adjust_interval_s=10.0,
    )
    DURATION_S = 180.0

    def _arm(self, scheme, **attacker_kwargs):
        config = SimulationConfig(budget_level=BudgetLevel.LOW, seed=9)
        sim = DataCenterSimulation(config, scheme=scheme)
        sim.add_normal_traffic(rate_rps=30.0)

        def effect():
            recent = sim.meter.samples[-20:]
            return bool(recent) and (
                max(s.power_w for s in recent) > sim.budget.supply_w
            )

        holder = {}

        def quarantine():
            att = holder.get("att")
            pool = getattr(scheme, "suspect_sources", None)
            if att is None or pool is None:
                return False
            return any(att.pool.contains(s) for s in pool)

        att = sim.add_dope_attacker(
            effect_signal=effect,
            quarantine_signal=quarantine,
            **self.ATTACK,
            **attacker_kwargs,
        )
        holder["att"] = att
        sim.run(self.DURATION_S)
        adjustments = att.stats.adjustments
        q_frac = (
            sum(1 for a in adjustments if a.quarantined) / len(adjustments)
            if adjustments
            else 0.0
        )
        return {
            "converged": att.stats.converged,
            "final_rate": att.stats.final_rate,
            "violations": _violation_slots(sim),
            "bans": sim.firewall.stats.bans,
            "peak": sim.meter.peak_power(),
            "q_frac": q_frac,
            "dilution": att.dilution,
        }

    def test_attacker_beats_sidestepped_static_list(self):
        out = self._arm(
            AntiDopeScheme(profiled_types=TestRegionShrinkage.SIDESTEP_TYPES)
        )
        # The classic DOPE endgame: converged, unbanned, over budget.
        assert out["converged"]
        assert out["bans"] == 0
        assert out["violations"] > 0

    def test_detector_denies_the_attacker(self):
        out = self._arm(OnlineDetectScheme())
        assert out["violations"] == 0
        assert out["q_frac"] > 0.5  # quarantined nearly the whole run

    def test_dilution_evasion_does_not_reopen_the_region(self):
        baseline = self._arm(OnlineDetectScheme())
        evading = self._arm(OnlineDetectScheme(), dilution_step=0.2)
        assert evading["dilution"] > 0.0  # the evasion actually engaged
        assert evading["violations"] == 0  # … and still bought nothing:
        assert evading["q_frac"] > 0.5  # rate/burstiness features hold.
        # Diluting toward the benign mix can only lower attack potency.
        assert evading["peak"] <= baseline["peak"] + 5.0
