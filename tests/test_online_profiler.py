"""Unit tests for the online URL power profiler."""

import numpy as np
import pytest

from repro.cluster import Rack
from repro.core.online_profiler import OnlineUrlPowerProfiler
from repro.network import NetworkLoadBalancer, Request
from repro.workloads import COLLA_FILT, TEXT_CONT, VOLUME_DOS, TrafficClass


@pytest.fixture
def setup(engine):
    rack = Rack(engine, num_servers=2, rng=np.random.default_rng(0))
    nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
    profiler = OnlineUrlPowerProfiler(engine, rack, interval_s=0.5, min_samples=10)
    return rack, nlb, profiler


def sustain(engine, nlb, rtype, until, rate=200.0):
    """Keep a steady stream of *rtype* flowing until *until*."""
    stop = {}

    def feed():
        nlb.dispatch(Request(rtype, 1, TrafficClass.ATTACK, engine.now))

    stop["fn"] = engine.every(1.0 / rate, feed)
    engine.schedule_at(until, lambda: stop["fn"]())


class TestAttribution:
    def test_learns_heavy_vs_light_ordering(self, engine, setup):
        rack, nlb, profiler = setup
        profiler.start()
        sustain(engine, nlb, COLLA_FILT, until=20.0, rate=100.0)
        sustain(engine, nlb, TEXT_CONT, until=20.0, rate=100.0)
        engine.run(until=20.0)
        heavy = profiler.full_load_estimate_w(COLLA_FILT.url)
        light = profiler.full_load_estimate_w(TEXT_CONT.url)
        assert heavy > light

    def test_estimate_near_model_truth_for_pure_load(self, engine, setup):
        rack, nlb, profiler = setup
        profiler.start()
        sustain(engine, nlb, COLLA_FILT, until=30.0, rate=150.0)
        engine.run(until=30.0)
        truth = rack.power_model.full_load_power(COLLA_FILT, 1.0)
        estimate = profiler.full_load_estimate_w(COLLA_FILT.url)
        assert estimate == pytest.approx(truth, rel=0.10)

    def test_unprofiled_url_raises(self, setup):
        _, _, profiler = setup
        with pytest.raises(KeyError):
            profiler.full_load_estimate_w("/never/seen")

    def test_min_samples_gate(self, engine, setup):
        rack, nlb, profiler = setup
        profiler.min_samples = 10_000
        profiler.start()
        sustain(engine, nlb, COLLA_FILT, until=5.0)
        engine.run(until=5.0)
        assert profiler.profiled_urls() == []


class TestSuspectListEmission:
    def test_learned_list_matches_offline_classification(self, engine, setup):
        rack, nlb, profiler = setup
        profiler.start()
        sustain(engine, nlb, COLLA_FILT, until=25.0, rate=120.0)
        sustain(engine, nlb, TEXT_CONT, until=25.0, rate=120.0)
        sustain(engine, nlb, VOLUME_DOS, until=25.0, rate=120.0)
        engine.run(until=25.0)
        sl = profiler.to_suspect_list(threshold_fraction=0.70)
        assert sl.is_suspect(COLLA_FILT.url)
        assert not sl.is_suspect(TEXT_CONT.url)
        assert not sl.is_suspect(VOLUME_DOS.url)

    def test_empty_profile_refuses_to_classify(self, setup):
        _, _, profiler = setup
        with pytest.raises(ValueError, match="samples"):
            profiler.to_suspect_list()


class TestLifecycle:
    def test_double_start_rejected(self, setup):
        _, _, profiler = setup
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()

    def test_stop_halts_sampling(self, engine, setup):
        rack, nlb, profiler = setup
        profiler.start()
        sustain(engine, nlb, COLLA_FILT, until=30.0)
        engine.run(until=5.0)
        profiler.stop()
        counts = profiler.observations[COLLA_FILT.url].samples
        engine.run(until=15.0)
        assert profiler.observations[COLLA_FILT.url].samples == counts

    def test_idle_servers_contribute_nothing(self, engine, setup):
        _, _, profiler = setup
        profiler.start()
        engine.run(until=5.0)
        assert profiler.observations == {}
