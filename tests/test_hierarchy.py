"""Unit and property tests for the facility budget allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.power.hierarchy import FacilityBudgetAllocator


class TestBasicAllocation:
    def test_underloaded_facility_satisfies_everyone(self):
        allocator = FacilityBudgetAllocator(1000.0)
        allocations = allocator.allocate([200.0, 300.0, 100.0])
        assert all(a.satisfied for a in allocations)
        assert [a.allocated_w for a in allocations] == [200.0, 300.0, 100.0]

    def test_overloaded_facility_shares_proportionally(self):
        allocator = FacilityBudgetAllocator(600.0, floor_fraction=0.0)
        allocations = allocator.allocate([400.0, 800.0])
        # 600 split 1:2 over demands 400:800.
        assert allocations[0].allocated_w == pytest.approx(200.0)
        assert allocations[1].allocated_w == pytest.approx(400.0)

    def test_surplus_reoffered_when_floor_exceeds_demand(self):
        # Floors of 225 W each: rack 0 caps at its 100 W demand and the
        # surplus flows to the hungry rack.
        allocator = FacilityBudgetAllocator(900.0, floor_fraction=0.5)
        allocations = allocator.allocate([100.0, 1000.0])
        assert allocations[0].allocated_w == pytest.approx(100.0)
        assert allocations[1].allocated_w == pytest.approx(800.0)

    def test_floor_keeps_starved_rack_alive(self):
        allocator = FacilityBudgetAllocator(1000.0, floor_fraction=0.2)
        allocations = allocator.allocate([10000.0, 50.0])
        # Rack 1's tiny demand would be swamped proportionally (~0.5 %);
        # the floor guarantees it up to 100 W (capped at demand 50).
        assert allocations[1].allocated_w == pytest.approx(50.0)

    def test_zero_demand_gets_zero(self):
        allocator = FacilityBudgetAllocator(100.0)
        allocations = allocator.allocate([0.0, 500.0])
        assert allocations[0].allocated_w == 0.0
        assert allocations[1].allocated_w == pytest.approx(100.0)

    def test_allocate_map(self):
        allocator = FacilityBudgetAllocator(100.0)
        out = allocator.allocate_map({7: 30.0, 3: 40.0})
        assert set(out) == {3, 7}
        assert out[3] + out[7] <= 100.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            FacilityBudgetAllocator(0.0)
        with pytest.raises(ValueError):
            FacilityBudgetAllocator(100.0).allocate([])


demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    min_size=1,
    max_size=12,
)
budgets = st.floats(min_value=1.0, max_value=10000.0, allow_nan=False)
floors = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestAllocatorProperties:
    @given(demands=demand_lists, budget=budgets, floor=floors)
    def test_never_exceeds_budget_or_demand(self, demands, budget, floor):
        allocator = FacilityBudgetAllocator(budget, floor_fraction=floor)
        allocations = allocator.allocate(demands)
        total = sum(a.allocated_w for a in allocations)
        assert total <= budget + 1e-6
        for a in allocations:
            assert -1e-9 <= a.allocated_w <= a.demand_w + 1e-6

    @given(demands=demand_lists, budget=budgets)
    def test_full_satisfaction_when_demand_fits(self, demands, budget):
        allocator = FacilityBudgetAllocator(budget)
        if sum(demands) <= budget:
            allocations = allocator.allocate(demands)
            assert all(a.satisfied for a in allocations)

    @given(demands=demand_lists, budget=budgets)
    def test_work_conserving_when_oversubscribed(self, demands, budget):
        """If demand exceeds the budget, (almost) all of it is handed out."""
        allocator = FacilityBudgetAllocator(budget, floor_fraction=0.0)
        if sum(demands) > budget and all(d > 0 for d in demands):
            allocations = allocator.allocate(demands)
            total = sum(a.allocated_w for a in allocations)
            assert total == pytest.approx(budget, rel=1e-6)

    @given(demands=demand_lists, budget=budgets)
    def test_monotone_in_demand(self, demands, budget):
        allocator = FacilityBudgetAllocator(budget, floor_fraction=0.0)
        allocations = allocator.allocate(demands)
        pairs = sorted(zip(demands, [a.allocated_w for a in allocations]))
        for (d1, a1), (d2, a2) in zip(pairs, pairs[1:]):
            assert a1 <= a2 + 1e-6
