"""Unit tests for the auto-scaler and server power gating."""

import numpy as np
import pytest

from repro.cluster import Rack
from repro.cluster.autoscaler import AutoScaler
from repro.network import NetworkLoadBalancer, Request
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass


def make_request(rtype=COLLA_FILT, source=0, t=0.0):
    return Request(rtype, source, TrafficClass.ATTACK, t)


class TestPowerGating:
    def test_gated_server_draws_nothing(self, server):
        server.set_powered(False)
        assert server.current_power() == 0.0

    def test_gated_server_rejects_requests(self, server):
        server.set_powered(False)
        assert not server.submit(make_request())
        assert server.rejected == 1

    def test_cannot_gate_busy_server(self, engine, server):
        server.submit(make_request())
        with pytest.raises(RuntimeError, match="in system"):
            server.set_powered(False)

    def test_gated_time_consumes_no_energy(self, engine, rng):
        from repro.cluster import Server

        server = Server(0, engine, rng)
        engine.schedule(5.0, lambda: server.set_powered(False))
        engine.schedule(15.0, lambda: None)
        engine.run()
        # 5 s of idle power, 10 s gated.
        assert server.energy_joules() == pytest.approx(38.0 * 5.0)

    def test_repower_restores_service(self, engine, server, collector):
        server.set_powered(False)
        server.set_powered(True)
        assert server.submit(make_request())
        engine.run()
        assert collector.records[0].completed


@pytest.fixture
def scaled(engine):
    rack = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
    nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
    scaler = AutoScaler(
        engine,
        rack,
        nlb,
        min_active=1,
        high_util=0.6,
        low_util=0.2,
        interval_s=1.0,
        cooldown_s=1.0,
    )
    return rack, nlb, scaler


class TestAutoScaler:
    def test_starts_at_minimum_footprint(self, scaled):
        rack, nlb, scaler = scaled
        assert scaler.num_active == 1
        assert nlb.servers == scaler.active
        assert sum(1 for s in rack.servers if s.powered_on) == 1

    def test_idle_rack_power_is_one_server(self, scaled):
        rack, _, _ = scaled
        assert rack.total_power() == pytest.approx(38.0)

    def test_scales_out_under_load(self, engine, scaled):
        rack, nlb, scaler = scaled
        scaler.start()
        # Sustained heavy load on the single active server.
        for i in range(8):
            nlb.dispatch(make_request(source=i))

        def keep_busy():
            while scaler.active[0].busy_workers < 8 and nlb.dispatch(
                make_request(source=99)
            ):
                pass

        stop = engine.every(0.05, keep_busy)
        engine.run(until=10.0)
        stop()
        assert scaler.num_active > 1
        assert scaler.stats.scale_outs >= 1

    def test_scales_in_when_idle(self, engine, scaled):
        rack, nlb, scaler = scaled
        # Manually activate all, then leave the rack idle.
        for _ in range(3):
            scaler._scale_out(1.0)
        assert scaler.num_active == 4
        scaler.start()
        engine.run(until=20.0)
        assert scaler.num_active == 1
        assert scaler.stats.scale_ins == 3
        # Drained servers are gated again.
        assert sum(1 for s in rack.servers if s.powered_on) == 1

    def test_scale_in_drains_before_gating(self, engine, scaled):
        rack, nlb, scaler = scaled
        scaler._scale_out(1.0)
        victim = scaler.active[-1]
        victim.submit(make_request())  # long K-means-ish request in flight
        scaler._scale_in(0.0)
        # Still powered while draining.
        assert victim.powered_on
        engine.run(until=5.0)
        scaler.step()
        assert not victim.powered_on

    def test_rotation_tracks_active_set(self, scaled):
        rack, nlb, scaler = scaled
        scaler._scale_out(1.0)
        assert len(nlb.servers) == 2
        scaler._scale_in(0.0)
        assert len(nlb.servers) == 1

    def test_cooldown_limits_action_rate(self, engine, scaled):
        rack, nlb, scaler = scaled
        scaler.cooldown_s = 100.0
        scaler.start()
        for i in range(8):
            nlb.dispatch(make_request(source=i))
        stop = engine.every(0.05, lambda: nlb.dispatch(make_request(source=77)))
        engine.run(until=10.0)
        stop()
        assert scaler.stats.scale_outs <= 1

    def test_respects_max_active(self, engine):
        import numpy as np

        rack = Rack(engine, num_servers=4, rng=np.random.default_rng(0))
        nlb = NetworkLoadBalancer(rack.servers, now=lambda: engine.now)
        scaler = AutoScaler(
            engine, rack, nlb, min_active=1, max_active=2, cooldown_s=0.001
        )
        scaler._scale_out(1.0)
        # Saturate both active servers so utilisation stays at 1.0.
        for s in scaler.active:
            for i in range(s.num_workers):
                s.submit(make_request(source=i))
        for _ in range(5):
            scaler.step()
        assert scaler.num_active == 2

    def test_validation(self, engine):
        import numpy as np

        rack = Rack(engine, num_servers=2, rng=np.random.default_rng(0))
        nlb = NetworkLoadBalancer(rack.servers)
        with pytest.raises(ValueError):
            AutoScaler(engine, rack, nlb, min_active=1, max_active=5)
        with pytest.raises(ValueError):
            AutoScaler(engine, rack, nlb, high_util=0.2, low_util=0.5)

    def test_double_start_rejected(self, scaled):
        _, _, scaler = scaled
        scaler.start()
        with pytest.raises(RuntimeError):
            scaler.start()
