"""Unit tests for the Shaving scheme (UPS peak shaving, Table 2 row 2)."""

import pytest

from repro.network import Request
from repro.power import Battery, PowerBudget, ShavingScheme
from repro.workloads import COLLA_FILT, TrafficClass


def load_rack(rack, per_server=8):
    for s in rack.servers:
        for i in range(per_server):
            s.submit(Request(COLLA_FILT, i, TrafficClass.ATTACK, 0.0))


def bind(engine, rack, supply_w, battery=None, **kwargs):
    scheme = ShavingScheme(**kwargs)
    battery = battery or Battery.for_rack(rack.nameplate_w, sustain_s=120.0)
    scheme.bind(engine, rack, PowerBudget(supply_w), battery, 1.0)
    return scheme, battery


class TestBatteryFirst:
    def test_battery_absorbs_peak_without_dvfs(self, engine, rack):
        scheme, battery = bind(engine, rack, supply_w=320.0)
        load_rack(rack)  # 400 W demand vs 320 W budget
        scheme.step()
        assert rack.levels() == [12] * 4  # no throttling
        assert battery.delivered_j > 0

    def test_full_carry_discharges_entire_load(self, engine, rack):
        scheme, battery = bind(engine, rack, supply_w=320.0, full_carry=True)
        load_rack(rack)
        scheme.step()
        # One slot at ~400 W means the whole rack power left the battery.
        assert battery.delivered_j == pytest.approx(400.0, rel=0.01)

    def test_partial_mode_discharges_deficit_only(self, engine, rack):
        scheme, battery = bind(engine, rack, supply_w=320.0, full_carry=False)
        load_rack(rack)
        scheme.step()
        assert battery.delivered_j == pytest.approx(80.0, rel=0.01)

    def test_paper_battery_exhausts_in_two_minutes_full_carry(self, engine, rack):
        # "a mini battery which can sustain 2 minutes when supporting
        # all the web application nodes".
        scheme, battery = bind(engine, rack, supply_w=320.0, soc_reserve=0.0)
        load_rack(rack)
        slots = 0
        while battery.soc_fraction > 0.01 and slots < 1000:
            scheme.step()
            slots += 1
        assert slots == pytest.approx(120, rel=0.1)


class TestDVFSFallback:
    def test_dvfs_engages_when_battery_exhausted(self, engine, rack):
        battery = Battery.for_rack(rack.nameplate_w, sustain_s=1.0)
        scheme, battery = bind(engine, rack, supply_w=320.0, battery=battery)
        load_rack(rack)
        # The tiny battery tops up the 80 W deficit for a few slots;
        # grid-side draw stays within budget throughout, and once the
        # battery is dry DVFS must take over.
        for _ in range(10):
            before = battery.delivered_j
            scheme.step()
            battery_w = battery.delivered_j - before
            assert rack.total_power() - battery_w <= 320.0 + 1e-6
        assert battery.soc_fraction <= scheme.soc_reserve + 0.05
        assert rack.levels()[0] < 12
        assert rack.total_power() <= 320.0 + 1e-6

    def test_recovery_restores_nominal(self, engine, rack, collector):
        battery = Battery.for_rack(rack.nameplate_w, sustain_s=1.0)
        scheme, battery = bind(engine, rack, supply_w=320.0, battery=battery)
        load_rack(rack)
        scheme.step()
        scheme.step()
        engine.run(until=120.0)  # load drains
        scheme.step()
        assert rack.levels() == [12] * 4


class TestRecharge:
    def test_recharges_from_headroom(self, engine, rack):
        battery = Battery.for_rack(rack.nameplate_w, sustain_s=120.0)
        battery.soc_j = 0.0
        scheme, battery = bind(engine, rack, supply_w=400.0, battery=battery)
        scheme.step()  # idle rack: plenty of headroom
        assert battery.soc_j > 0

    def test_no_recharge_during_violation(self, engine, rack):
        scheme, battery = bind(engine, rack, supply_w=320.0)
        load_rack(rack)
        soc_before = battery.soc_j
        scheme.step()
        assert battery.soc_j < soc_before

    def test_recharge_never_pushes_grid_draw_over_budget(self, engine, rack):
        # Regression: the charge offer must come from the headroom that
        # remains *after* the DVFS raise.  Worst case is the greediest
        # recharge (fraction=1.0) on a drained battery while the rack
        # sits throttled well below budget: the raise reclaims most of
        # the apparent headroom, so charging against the pre-raise
        # figure would overdraw the feed by ~max_charge_w.
        battery = Battery.for_rack(
            rack.nameplate_w, sustain_s=120.0, efficiency=0.9
        )
        battery.soc_j = 0.0
        scheme, battery = bind(
            engine,
            rack,
            supply_w=320.0,
            battery=battery,
            recharge_headroom_fraction=1.0,
        )
        load_rack(rack)
        rack.set_all_levels(0)  # throttled leftover from an earlier slot
        before_j = battery.absorbed_grid_j
        scheme.step()
        charge_w = (battery.absorbed_grid_j - before_j) / scheme.slot_s
        grid_w = rack.total_power() + charge_w
        assert grid_w <= 320.0 + 1e-6


class TestValidation:
    def test_requires_battery(self, engine, rack):
        scheme = ShavingScheme()
        with pytest.raises(ValueError, match="battery"):
            scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            ShavingScheme(recharge_headroom_fraction=1.5)
        with pytest.raises(ValueError):
            ShavingScheme(soc_reserve=1.0)


class TestDecisionTraceBound:
    def test_decision_trace_bounded_on_long_runs(self):
        """Hours of control slots hold the per-slot decision trace at
        ``max_decisions`` entries; the slot totals stay in counters."""
        from repro import BudgetLevel, DataCenterSimulation, SimulationConfig

        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=ShavingScheme(max_decisions=32),
        )
        sim.add_normal_traffic(rate_rps=20.0)
        sim.run(300.0)
        assert len(sim.scheme.decisions) == 32
        counters = sim.obs.counters.as_dict()
        assert counters["power.control_slots"] >= 300
        # The retained tuples are the most recent slots.
        assert sim.scheme.decisions[-1][0] == pytest.approx(300.0)

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            ShavingScheme(max_decisions=-1)
