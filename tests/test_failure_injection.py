"""Failure-injection tests: components degrading mid-run.

Each scenario breaks one piece of the infrastructure and checks the
system's behaviour stays sane (no crashes, conservative fallbacks) —
the situations a production deployment meets on its worst day.
"""

import numpy as np
import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
)
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))


class TestDeadBattery:
    def test_shaving_with_empty_battery_degrades_to_capping(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=2),
            scheme=ShavingScheme(),
        )
        sim.battery.soc_j = 0.0  # dead on arrival
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(mix=ATTACK, rate_rps=250, num_agents=20, start_s=10)
        sim.run(90.0)
        # No shaving possible: DVFS must be enforcing the budget.
        # Between-slot load fluctuation allows small transients; the
        # mean must comply and overshoots stay within a few watts.
        assert sim.rack.mean_freq_ghz() < 2.4
        powers = sim.meter.powers()[30:]
        assert powers.mean() < sim.budget.supply_w
        assert powers.max() < sim.budget.supply_w * 1.05

    def test_anti_dope_without_battery_still_enforces(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=2, use_battery=False),
            scheme=AntiDopeScheme(),
        )
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(mix=ATTACK, rate_rps=250, num_agents=20, start_s=10)
        sim.run(90.0)
        powers = sim.meter.powers()[30:]
        assert (powers > sim.budget.supply_w).mean() < 0.1


class TestFirewallOutage:
    def test_firewall_detached_mid_run_stops_banning(self):
        sim = DataCenterSimulation(
            SimulationConfig(seed=2, firewall_threshold_rps=50.0),
            scheme=CappingScheme(),
        )
        sim.add_normal_traffic(rate_rps=20)
        # A blatant single-source flood the firewall would catch.
        sim.add_flood(
            mix=COLLA_FILT,
            rate_rps=400,
            num_agents=1,
            start_s=30,
            closed_loop=False,
        )
        sim.engine.schedule_at(25.0, sim.firewall.detach)
        sim.run(90.0)
        assert sim.firewall.stats.bans == 0  # defence was down

    def test_firewall_restores_after_ban_expiry_and_reoffends(self):
        sim = DataCenterSimulation(
            SimulationConfig(
                seed=2,
                firewall_threshold_rps=50.0,
                firewall_poll_s=5.0,
                firewall_ban_s=20.0,
            ),
            scheme=CappingScheme(),
        )
        sim.add_flood(
            mix=COLLA_FILT,
            rate_rps=300,
            num_agents=1,
            closed_loop=False,
            label="recidivist",
        )
        sim.run(120.0)
        # The open-loop source keeps re-offending after every expiry.
        assert sim.firewall.stats.bans >= 3


class TestDegenerateConfigurations:
    def test_zero_queue_capacity_sheds_instead_of_crashing(self):
        sim = DataCenterSimulation(
            SimulationConfig(seed=2, queue_capacity=0), scheme=CappingScheme()
        )
        sim.add_normal_traffic(rate_rps=200)
        sim.run(30.0)
        counts = sim.collector.outcome_counts()
        from repro.network import RequestOutcome

        assert counts[RequestOutcome.COMPLETED] > 0
        # Workers saturate occasionally; overflow is shed, not queued.
        assert sim.rack.total_in_system() <= 4 * 8

    def test_single_server_rack_with_anti_dope_rejected(self):
        # PDF needs at least one innocent server besides the suspect pool.
        sim_config = SimulationConfig(seed=2, num_servers=1)
        with pytest.raises(ValueError, match="innocent"):
            DataCenterSimulation(sim_config, scheme=AntiDopeScheme())

    def test_budget_below_idle_floor_is_survivable(self):
        # Physically unenforceable budget: the schemes bottom out at the
        # deepest throttle and the simulation completes.
        cfg = SimulationConfig(seed=2)
        sim = DataCenterSimulation(cfg, scheme=CappingScheme())
        sim.budget.supply_w = 50.0  # far below the ~140 W idle floor
        sim.add_normal_traffic(rate_rps=30)
        sim.run(30.0)
        assert sim.rack.levels() == [0, 0, 0, 0]
        stats = sim.latency_stats()
        assert stats.count > 0  # service continued, slowly

    def test_attack_before_any_normal_traffic(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=2),
            scheme=AntiDopeScheme(),
        )
        sim.add_flood(mix=ATTACK, rate_rps=250, num_agents=20)
        sim.run(60.0)
        assert sim.collector.total(TrafficClass.ATTACK) > 0
        # No normal population: nothing to corrupt, nothing crashed.
        assert sim.collector.total(TrafficClass.NORMAL) == 0


class TestSchemeSwapMidRun:
    def test_manual_level_overrides_are_corrected_by_controller(self):
        sim = DataCenterSimulation(
            SimulationConfig(seed=2), scheme=CappingScheme()
        )
        sim.add_normal_traffic(rate_rps=20)
        # An operator (or a bug) yanks all servers to minimum mid-run;
        # with a loose budget the controller restores nominal frequency.
        sim.engine.schedule_at(10.0, lambda: sim.rack.set_all_levels(0))
        sim.run(30.0)
        assert sim.rack.levels() == [12, 12, 12, 12]
