"""Unit tests for availability accounting."""

import pytest

from repro.metrics import availability
from repro.network import CompletionRecord, Request, RequestOutcome
from repro.workloads import TEXT_CONT, TrafficClass


def rec(outcome, rt=0.1):
    req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
    return CompletionRecord(req, outcome, rt)


class TestAvailability:
    def test_all_served_in_sla(self):
        report = availability([rec(RequestOutcome.COMPLETED)] * 10, sla_s=1.0)
        assert report.availability == 1.0
        assert report.drop_fraction == 0.0
        assert report.goodput_fraction == 1.0

    def test_late_service_counts_against_availability(self):
        records = [rec(RequestOutcome.COMPLETED, rt=0.5)] * 5 + [
            rec(RequestOutcome.COMPLETED, rt=2.0)
        ] * 5
        report = availability(records, sla_s=1.0)
        assert report.availability == pytest.approx(0.5)
        assert report.served_late == 5
        assert report.goodput_fraction == 1.0

    def test_drops_count_against_availability(self):
        records = [rec(RequestOutcome.COMPLETED)] * 8 + [
            rec(RequestOutcome.DROPPED_TOKEN),
            rec(RequestOutcome.DROPPED_QUEUE_FULL),
        ]
        report = availability(records, sla_s=1.0)
        assert report.availability == pytest.approx(0.8)
        assert report.drop_fraction == pytest.approx(0.2)

    def test_boundary_exactly_at_sla_is_in(self):
        report = availability([rec(RequestOutcome.COMPLETED, rt=1.0)], sla_s=1.0)
        assert report.availability == 1.0

    def test_empty_population_is_fully_available(self):
        report = availability([], sla_s=1.0)
        assert report.availability == 1.0
        assert report.offered == 0

    def test_invalid_sla_rejected(self):
        with pytest.raises(ValueError):
            availability([], sla_s=0.0)

    def test_str_rendering(self):
        text = str(availability([rec(RequestOutcome.COMPLETED)], sla_s=1.0))
        assert "availability=100.0%" in text
