"""Unit tests for request and completion-record primitives."""

import pytest

from repro.network import CompletionRecord, Request, RequestOutcome
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass


class TestRequest:
    def test_ids_are_unique_and_increasing(self):
        a = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
        b = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
        assert b.request_id > a.request_id

    def test_url_delegates_to_type(self):
        req = Request(COLLA_FILT, 0, TrafficClass.ATTACK, 1.0)
        assert req.url == COLLA_FILT.url

    def test_initial_state(self):
        req = Request(TEXT_CONT, 3, TrafficClass.NORMAL, 2.5)
        assert req.start_service_time_s is None
        assert req.server_id is None
        assert req.on_terminal is None
        assert req.arrival_time_s == 2.5
        assert req.source_id == 3


class TestCompletionRecord:
    def test_response_time(self):
        req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 10.0)
        rec = CompletionRecord(req, RequestOutcome.COMPLETED, 10.25)
        assert rec.response_time == pytest.approx(0.25)

    def test_completed_flag(self):
        req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, 0.0)
        assert CompletionRecord(req, RequestOutcome.COMPLETED, 1.0).completed
        for outcome in (
            RequestOutcome.DROPPED_FIREWALL,
            RequestOutcome.DROPPED_TOKEN,
            RequestOutcome.DROPPED_QUEUE_FULL,
            RequestOutcome.TIMED_OUT,
        ):
            assert not CompletionRecord(req, outcome, 1.0).completed

    def test_record_snapshots_request_fields(self):
        req = Request(COLLA_FILT, 7, TrafficClass.ATTACK, 5.0)
        req.server_id = 2
        rec = CompletionRecord(req, RequestOutcome.COMPLETED, 6.0)
        assert rec.type_name == "colla-filt"
        assert rec.traffic_class is TrafficClass.ATTACK
        assert rec.server_id == 2
        assert rec.request_id == req.request_id
