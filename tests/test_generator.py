"""Unit tests for the open-loop traffic generator."""

import pytest

from repro.network import SourceRegistry
from repro.trace import ConstantRateProcess, PoissonProcess
from repro.workloads import (
    COLLA_FILT,
    TEXT_CONT,
    RequestMix,
    TrafficClass,
)
from repro.workloads.generator import TrafficGenerator


@pytest.fixture
def registry():
    return SourceRegistry()


def make_generator(engine, rng, registry, rate=10.0, agents=4, mix=TEXT_CONT):
    pool = registry.allocate("gen", TrafficClass.ATTACK, agents)
    received = []
    gen = TrafficGenerator(
        engine=engine,
        dispatch=lambda r: received.append(r) or True,
        rng=rng,
        source_pool=pool,
        mix=mix,
        process=ConstantRateProcess(rate),
        label="gen",
    )
    return gen, received


class TestGeneration:
    def test_rate_is_respected(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0)
        gen.start()
        engine.run(until=10.0)
        assert len(received) == pytest.approx(100, abs=2)

    def test_sources_cycle_round_robin(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0, agents=4)
        gen.start()
        engine.run(until=2.0)
        sources = [r.source_id for r in received]
        assert sources[:8] == [
            sources[0],
            sources[0] + 1,
            sources[0] + 2,
            sources[0] + 3,
        ] * 2

    def test_traffic_class_tagging(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry)
        gen.start()
        engine.run(until=1.0)
        assert all(r.traffic_class is TrafficClass.ATTACK for r in received)

    def test_single_type_wrapped_as_mix(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, mix=COLLA_FILT)
        gen.start()
        engine.run(until=1.0)
        assert all(r.rtype is COLLA_FILT for r in received)

    def test_mix_sampling(self, engine, rng, registry):
        mix = RequestMix({COLLA_FILT: 0.5, TEXT_CONT: 0.5})
        gen, received = make_generator(engine, rng, registry, rate=100.0, mix=mix)
        gen.start()
        engine.run(until=10.0)
        names = {r.rtype.name for r in received}
        assert names == {"colla-filt", "text-cont"}


class TestLifecycle:
    def test_start_delay(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0)
        gen.start(delay_s=5.0)
        engine.run(until=5.05)
        assert len(received) == 0
        engine.run(until=6.0)
        assert len(received) > 0

    def test_stop_halts_generation(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0)
        gen.start()
        engine.schedule(2.0, gen.stop)
        engine.run(until=10.0)
        assert len(received) == pytest.approx(20, abs=2)

    def test_run_window(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0)
        gen.run_window(3.0, 5.0)
        engine.run(until=10.0)
        times = [r.arrival_time_s for r in received]
        assert all(3.0 <= t <= 5.0 for t in times)
        assert len(times) == pytest.approx(20, abs=2)

    def test_double_start_rejected(self, engine, rng, registry):
        gen, _ = make_generator(engine, rng, registry)
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_set_rate_changes_pacing(self, engine, rng, registry):
        gen, received = make_generator(engine, rng, registry, rate=10.0)
        gen.start()
        engine.schedule(5.0, lambda: gen.set_rate(100.0))
        engine.run(until=10.0)
        early = sum(1 for r in received if r.arrival_time_s < 5.0)
        late = sum(1 for r in received if r.arrival_time_s >= 5.0)
        assert early == pytest.approx(50, abs=3)
        assert late == pytest.approx(500, abs=10)

    def test_generated_and_accepted_counters(self, engine, rng, registry):
        pool = registry.allocate("g2", TrafficClass.NORMAL, 1)
        flags = iter([True, False, True, True])
        gen = TrafficGenerator(
            engine,
            lambda r: next(flags, True),
            rng,
            pool,
            TEXT_CONT,
            ConstantRateProcess(10.0),
        )
        gen.start()
        engine.run(until=0.45)
        assert gen.generated == 4
        assert gen.accepted == 3
