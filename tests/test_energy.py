"""Unit tests for energy accounting."""

import pytest

from repro.metrics import EnergyAccountant, EnergyReport, normalized_energy
from repro.power import Battery


class TestEnergyReport:
    def test_utility_split(self):
        report = EnergyReport(
            duration_s=100.0,
            load_energy_j=10000.0,
            battery_delivered_j=2000.0,
            battery_recharge_grid_j=1000.0,
        )
        assert report.utility_energy_j == pytest.approx(9000.0)
        assert report.mean_load_power_w == pytest.approx(100.0)
        assert report.mean_utility_power_w == pytest.approx(90.0)

    def test_no_battery_case(self):
        report = EnergyReport(10.0, 500.0, 0.0, 0.0)
        assert report.utility_energy_j == 500.0


class TestEnergyAccountant:
    def test_measures_window_delta_only(self, engine, rack):
        engine.schedule(5.0, lambda: None)
        engine.run()  # 5 s of warm-up energy
        accountant = EnergyAccountant(rack)
        engine.schedule(10.0, lambda: None)
        engine.run()
        report = accountant.report()
        assert report.duration_s == pytest.approx(10.0)
        assert report.load_energy_j == pytest.approx(4 * 38.0 * 10.0)

    def test_battery_flows_tracked(self, engine, rack):
        battery = Battery.for_rack(400.0)
        accountant = EnergyAccountant(rack, battery)
        battery.discharge(100.0, 2.0)
        battery.charge(50.0, 2.0)
        engine.schedule(10.0, lambda: None)
        engine.run()
        report = accountant.report()
        assert report.battery_delivered_j == pytest.approx(200.0)
        assert report.battery_recharge_grid_j == pytest.approx(100.0)

    def test_pre_window_battery_flows_excluded(self, engine, rack):
        battery = Battery.for_rack(400.0)
        battery.discharge(100.0, 1.0)
        accountant = EnergyAccountant(rack, battery)
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert accountant.report().battery_delivered_j == 0.0

    def test_zero_window_rejected(self, engine, rack):
        accountant = EnergyAccountant(rack)
        with pytest.raises(ValueError):
            accountant.report()


class TestNormalizedEnergy:
    def test_exact_budget_consumption_is_one(self):
        report = EnergyReport(100.0, 32000.0, 0.0, 0.0)
        assert normalized_energy(report, supply_w=320.0) == pytest.approx(1.0)

    def test_battery_losses_raise_utility_share(self):
        # Same load energy; the battery path adds recharge losses.
        direct = EnergyReport(100.0, 32000.0, 0.0, 0.0)
        via_battery = EnergyReport(100.0, 32000.0, 5000.0, 5556.0)
        assert normalized_energy(via_battery, 320.0) > normalized_energy(
            direct, 320.0
        )

    def test_invalid_supply_rejected(self):
        report = EnergyReport(1.0, 1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            normalized_energy(report, supply_w=0.0)


class TestBatteryDebt:
    def test_unreplenished_discharge_creates_debt(self):
        report = EnergyReport(100.0, 10000.0, 900.0, 0.0, battery_efficiency=0.9)
        assert report.battery_debt_j == pytest.approx(1000.0)
        assert report.committed_utility_energy_j == pytest.approx(
            10000.0 - 900.0 + 1000.0
        )

    def test_fully_recharged_battery_has_no_debt(self):
        # 900 J delivered; 1000 J drawn from grid stores 900 J back.
        report = EnergyReport(100.0, 10000.0, 900.0, 1000.0, battery_efficiency=0.9)
        assert report.battery_debt_j == 0.0
        assert report.committed_utility_energy_j == report.utility_energy_j

    def test_battery_heavy_scheme_costs_more_committed_energy(self):
        # Same load: riding on the battery defers and inflates the bill.
        direct = EnergyReport(100.0, 10000.0, 0.0, 0.0)
        battery_ride = EnergyReport(100.0, 10000.0, 3000.0, 0.0)
        assert (
            battery_ride.committed_utility_energy_j
            > direct.committed_utility_energy_j
        )
