"""``python -m repro bench`` and the bench driver's JSON contract."""

import json

import pytest

from repro.bench import BenchPlan, plan_for, run_bench
from repro.cli import main
from repro.obs import BENCH_SCHEMA_ID, validate_bench_payload


def _valid_payload():
    """A minimal hand-built document that satisfies repro-bench/1."""
    return {
        "schema": BENCH_SCHEMA_ID,
        "name": "t",
        "mode": "smoke",
        "version": "1.2.0",
        "seed": 7,
        "config_hash": "ab" * 32,
        "headline": {"metric": "events_per_wall_s", "value": 1000.0},
        "counters": {"engine.events_dispatched": 10},
        "timings_s": {"engine.run": {"total_s": 0.01, "count": 1}},
        "derived": {
            "events_per_wall_s": 1000.0,
            "sim_time_per_wall_s": 50.0,
            "runner_cache_hit_rate": 0.5,
        },
        "phases": [{"name": "bench.attack_scenario", "wall_s": 0.01}],
    }


# ----------------------------------------------------------------------
# Schema validator
# ----------------------------------------------------------------------


def test_validator_accepts_valid_payload():
    assert validate_bench_payload(_valid_payload()) == []


@pytest.mark.parametrize("missing", ["schema", "headline", "derived", "phases"])
def test_validator_flags_missing_keys(missing):
    payload = _valid_payload()
    del payload[missing]
    assert any(missing in problem for problem in validate_bench_payload(payload))


def test_validator_rejects_bool_seed():
    # Type errors short-circuit before content checks.
    payload = _valid_payload()
    payload["seed"] = True
    assert validate_bench_payload(payload) == ["key 'seed' must be an int"]


def test_validator_rejects_wrong_schema_and_mode():
    payload = _valid_payload()
    payload["schema"] = "other/9"
    payload["mode"] = "hyper"
    problems = "\n".join(validate_bench_payload(payload))
    assert "schema" in problems
    assert "mode" in problems


def test_validator_rejects_headline_metric_not_in_derived():
    payload = _valid_payload()
    payload["headline"]["metric"] = "made_up_metric"
    assert any(
        "made_up_metric" in problem for problem in validate_bench_payload(payload)
    )


def test_validator_rejects_malformed_timings_and_phases():
    payload = _valid_payload()
    payload["timings_s"]["bad"] = {"total_s": "fast"}
    payload["phases"].append({"name": 3})
    problems = "\n".join(validate_bench_payload(payload))
    assert "timing 'bad'" in problems
    assert "phases[1]" in problems


def test_validator_rejects_non_object():
    assert validate_bench_payload([1, 2]) != []


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def test_plans_cover_both_modes_and_reject_others():
    smoke = plan_for("smoke")
    full = plan_for("full")
    assert isinstance(smoke, BenchPlan) and smoke.mode == "smoke"
    assert full.mode == "full"
    # Smoke must be a strict subset of full's workload.
    assert smoke.attack_duration_s < full.attack_duration_s
    assert len(smoke.region_types) < len(full.region_types)
    assert len(smoke.region_rates_rps) < len(full.region_rates_rps)
    with pytest.raises(ValueError, match="mode"):
        plan_for("nightly")


# ----------------------------------------------------------------------
# The real driver, end to end (smoke-sized: a few seconds)
# ----------------------------------------------------------------------


def test_bench_cli_smoke_emits_schema_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["bench", "--smoke", "--out", str(out)]) == 0
    assert "events_per_wall_s" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert validate_bench_payload(payload) == []
    assert payload["mode"] == "smoke"
    assert payload["name"] == "bench-smoke"
    assert payload["schema"] == BENCH_SCHEMA_ID

    counters = payload["counters"]
    # Every instrumented layer shows up in one bench run.
    assert counters["engine.events_dispatched"] > 0
    assert counters["network.nlb_forwarded"] > 0
    assert counters["power.control_slots"] > 0
    assert counters["cluster.power_model_evals"] > 0
    assert counters["runner.cells_total"] == 2 * counters["runner.cells_executed"]

    derived = payload["derived"]
    assert derived["events_per_wall_s"] > 0.0
    assert derived["sim_time_per_wall_s"] > 0.0
    # Cold pass misses, warm pass hits: exactly half the lookups hit.
    assert derived["runner_cache_hit_rate"] == pytest.approx(0.5)
    assert payload["headline"]["value"] == derived["events_per_wall_s"]

    phase_names = {phase["name"] for phase in payload["phases"]}
    assert phase_names == {
        "bench.attack_scenario",
        "bench.chaos_scenario",
        "bench.online_detect",
        "bench.prediction",
        "bench.tree_topology",
        "bench.volume_flood",
        "bench.region_sweep_cold",
        "bench.region_sweep_warm",
    }
    # Default engine is the full-speed fluid path, recorded in the payload.
    assert payload["engine"] == "fluid"
    assert counters["engine.fluid_segments"] > 0
    assert counters["engine.cohorts_dispatched"] > 0


def test_run_bench_counters_deterministic_across_calls():
    a = run_bench(mode="smoke", seed=3)
    b = run_bench(mode="smoke", seed=3)
    assert a["counters"] == b["counters"]
    assert a["config_hash"] == b["config_hash"]
    # Wall-clock blocks exist but are not required to agree.
    assert set(a["timings_s"]) == set(b["timings_s"])


# ----------------------------------------------------------------------
# Engine selection (REPRO_BENCH_ENGINE)
# ----------------------------------------------------------------------


def test_bench_engine_env_var_selects_engine(monkeypatch):
    from repro.bench import BENCH_ENGINE_ENV, bench_engine, resolve_engine

    monkeypatch.delenv(BENCH_ENGINE_ENV, raising=False)
    assert bench_engine() == "fluid"
    for name in ("scalar", "batched", "fluid"):
        monkeypatch.setenv(BENCH_ENGINE_ENV, name)
        assert bench_engine() == name
    monkeypatch.setenv(BENCH_ENGINE_ENV, "Batched ")
    assert bench_engine() == "batched"
    monkeypatch.setenv(BENCH_ENGINE_ENV, "turbo")
    with pytest.raises(ValueError, match="REPRO_BENCH_ENGINE"):
        bench_engine()

    assert resolve_engine("scalar") == ("scalar", False)
    assert resolve_engine("batched") == ("batched", False)
    assert resolve_engine("fluid") == ("batched", True)
    with pytest.raises(ValueError, match="engine"):
        resolve_engine("turbo")


def test_support_runner_follows_bench_engine(monkeypatch):
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
    try:
        import _support
    finally:
        sys.path.pop(0)
    from repro.bench import BENCH_ENGINE_ENV

    monkeypatch.setenv(BENCH_ENGINE_ENV, "scalar")
    sim = _support.run_attack_scenario(duration=5.0, attack=False)
    assert sim.engine.mode == "scalar" and not sim.engine.fluid
    monkeypatch.setenv(BENCH_ENGINE_ENV, "fluid")
    sim = _support.run_attack_scenario(duration=5.0, attack=False)
    assert sim.engine.mode == "batched" and sim.engine.fluid
    # An explicit argument wins over the environment.
    sim = _support.run_attack_scenario(duration=5.0, attack=False, engine="batched")
    assert sim.engine.mode == "batched" and not sim.engine.fluid
