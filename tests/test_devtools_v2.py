"""Tests for the devtools v2 analysis suite.

Covers the project-scope engine (crash isolation, cross-module
analysis), the REP009 dimension algebra, the baseline workflow, SARIF
rendering, the ``repro lint`` CLI surface, and the runtime contracts
the new rules enforce (obs name registry, outcome partition).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import (
    Finding,
    ProjectInfo,
    ProjectRule,
    lint_paths,
    lint_project,
    lint_source,
    load_module,
)
from repro.devtools.baseline import (
    fingerprint,
    load_baseline,
    render_baseline,
    unbaselined,
)
from repro.devtools.dimensions import (
    DIMENSIONLESS,
    ENERGY,
    POWER,
    RATE,
    TIME,
    UNKNOWN,
    combine_div,
    combine_mul,
    dimension_of_name,
)
from repro.devtools.lint import main as lint_main
from repro.devtools.sarif import render_sarif
from repro.obs.contract import (
    COUNTER_NAMES,
    TIMER_NAMES,
    is_declared_counter,
    is_declared_timer,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "devtools_fixtures"


# ---------------------------------------------------------------------------
# Engine v2: project scope and crash isolation.
# ---------------------------------------------------------------------------


def test_project_info_indexes_by_name_and_path(tmp_path):
    file_a = tmp_path / "a.py"
    file_a.write_text("x = 1\n", encoding="utf-8")
    module = load_module(str(file_a))
    project = ProjectInfo(modules=[module])
    assert project.by_path[str(file_a)] is module
    # a path outside src/repro has no dotted module identity
    assert module.module is None and project.by_name == {}


def test_empty_module_lints_clean():
    assert lint_source("", module="repro.fixtures.empty") == []


def test_crashing_rule_does_not_mask_other_rules(monkeypatch):
    import repro.devtools.engine as engine

    class CrashingModuleRule(engine.Rule):
        rule_id = "REP901"
        summary = "crashes at call time"

        def check(self, module):
            raise RuntimeError("boom")

    class CrashingProjectRule(ProjectRule):
        rule_id = "REP902"
        summary = "yields one finding, then crashes"

        def check_project(self, project):
            yield Finding(
                path=project.modules[0].path,
                line=1,
                col=0,
                rule=self.rule_id,
                message="partial finding before the crash",
            )
            raise ValueError("mid-iteration boom")

    registry = dict(engine._REGISTRY)
    registry["REP901"] = CrashingModuleRule
    registry["REP902"] = CrashingProjectRule
    monkeypatch.setattr(engine, "_REGISTRY", registry)

    findings = lint_source(
        "import random\n",
        module="repro.fixtures.crashy",
        rules=["REP001", "REP901", "REP902"],
    )
    by_rule = {}
    for finding in findings:
        by_rule.setdefault(finding.rule, []).append(finding)

    # the healthy rule still reports its finding
    assert len(by_rule["REP001"]) == 1
    # the call-time crash became a synthetic finding on the rule's id
    assert "rule crashed" in by_rule["REP901"][0].message
    # the mid-iteration crash kept its partial finding AND the marker
    messages = [f.message for f in by_rule["REP902"]]
    assert "partial finding before the crash" in messages
    assert any("rule crashed" in message for message in messages)


def test_project_rule_sees_across_modules(tmp_path):
    """REP010 attributes a race in module B to a cell defined in module A."""
    package = tmp_path / "src" / "repro" / "pkg"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("", encoding="utf-8")
    (package / "state.py").write_text(
        "_BUCKET = []\n"
        "\n"
        "\n"
        "def remember(value):\n"
        "    _BUCKET.append(value)\n",
        encoding="utf-8",
    )
    (package / "cells.py").write_text(
        "from repro.pkg.state import remember\n"
        "\n"
        "\n"
        "def probe_cell(spec):\n"
        "    remember(spec)\n"
        "    return spec\n",
        encoding="utf-8",
    )
    findings = lint_paths([str(tmp_path / "src" / "repro")], rules=["REP010"])
    assert len(findings) == 1
    assert findings[0].path.endswith("state.py")
    assert "_BUCKET" in findings[0].message
    assert "probe_cell" in findings[0].message


# ---------------------------------------------------------------------------
# REP009 dimension algebra.
# ---------------------------------------------------------------------------


def test_dimension_algebra_products_and_quotients():
    assert combine_mul(POWER, TIME) == ENERGY
    assert combine_mul(TIME, POWER) == ENERGY  # symmetric
    assert combine_div(ENERGY, TIME) == POWER
    assert combine_div(ENERGY, POWER) == TIME
    assert combine_div(DIMENSIONLESS, TIME) == RATE
    assert combine_div(POWER, POWER) == DIMENSIONLESS
    assert combine_mul(DIMENSIONLESS, POWER) == POWER
    # unlisted combinations abstain rather than guess
    assert combine_mul(POWER, POWER) is UNKNOWN
    assert combine_div(TIME, POWER) is UNKNOWN
    assert combine_mul(UNKNOWN, POWER) is UNKNOWN


def test_dimension_of_name_longest_suffix_wins():
    assert dimension_of_name("peak_power_w") == POWER
    assert dimension_of_name("arrival_rate_rps") == RATE  # _rps beats _s
    assert dimension_of_name("headroom_fraction") == DIMENSIONLESS
    assert dimension_of_name("count") is UNKNOWN


def test_rep009_legal_product_chain_stays_quiet():
    source = (
        "def energy(power_w, dt_s):\n"
        "    total_j = power_w * dt_s\n"
        "    back_w = total_j / dt_s\n"
        "    return total_j, back_w\n"
    )
    assert lint_source(source, module="repro.fixtures.chain", rules=["REP009"]) == []


def test_rep009_catches_seeded_power_plus_energy():
    source = (
        "def broken(power_w, energy_j):\n"
        "    return power_w + energy_j\n"
    )
    findings = lint_source(source, module="repro.fixtures.bad", rules=["REP009"])
    assert len(findings) == 1
    assert "mixed dimensions" in findings[0].message


# ---------------------------------------------------------------------------
# Baseline workflow.
# ---------------------------------------------------------------------------


def _finding(path="src/repro/x.py", line=3, rule="REP009", message="m"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


def test_baseline_round_trip_ignores_line_numbers():
    before = _finding(line=3)
    baseline = load_baseline(render_baseline([before]))
    moved = _finding(line=42)  # same finding, shifted by an edit above it
    assert unbaselined([moved], baseline) == []
    novel = _finding(message="a different defect")
    assert unbaselined([novel], baseline) == [novel]


def test_baseline_fingerprint_is_path_rule_message():
    assert fingerprint(_finding()) == ("src/repro/x.py", "REP009", "m")


@pytest.mark.parametrize(
    "text",
    [
        "not json",
        "[]",
        '{"version": 99, "findings": []}',
        '{"version": 1, "findings": {}}',
        '{"version": 1, "findings": [{"path": "p"}]}',
    ],
)
def test_baseline_rejects_malformed_documents(text):
    with pytest.raises(ValueError):
        load_baseline(text)


def test_checked_in_baseline_is_empty_and_loadable():
    text = (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
    assert load_baseline(text) == set()


# ---------------------------------------------------------------------------
# SARIF rendering.
# ---------------------------------------------------------------------------


def test_sarif_document_shape_and_rule_metadata():
    payload = json.loads(render_sarif([_finding()]))
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-devtools"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "REP009" in rule_ids and "REP012" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "REP009"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    assert location["region"]["startLine"] == 3
    assert location["region"]["startColumn"] == 1  # SARIF is 1-based


def test_sarif_output_is_deterministic():
    findings = [_finding(), _finding(rule="REP011", message="other")]
    assert render_sarif(findings) == render_sarif(findings)


# ---------------------------------------------------------------------------
# CLI: formats, baseline flags, the `repro lint` subcommand and alias.
# ---------------------------------------------------------------------------


def test_cli_sarif_format_on_clean_tree(capsys):
    assert lint_main([str(SRC_REPRO), "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"] == []


def test_cli_sarif_exit_one_on_violation(capsys):
    rc = lint_main(
        [
            str(FIXTURES / "rep009_violation.py"),
            "--rules",
            "REP009",
            "--format",
            "sarif",
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"]


def test_cli_write_baseline_then_suppress(tmp_path, capsys):
    target = str(FIXTURES / "rep011_violation.py")
    baseline_file = tmp_path / "baseline.json"

    rc = lint_main(
        [target, "--rules", "REP011", "--write-baseline", str(baseline_file)]
    )
    assert rc == 0
    expected = (FIXTURES / "rep011_violation.py").read_text().count("# VIOLATION")
    assert f"wrote {expected} finding(s)" in capsys.readouterr().out

    # the same findings are now suppressed...
    rc = lint_main(
        [target, "--rules", "REP011", "--baseline", str(baseline_file)]
    )
    assert rc == 0
    # ...but an empty baseline suppresses nothing
    empty = tmp_path / "empty.json"
    empty.write_text('{"version": 1, "findings": []}', encoding="utf-8")
    rc = lint_main([target, "--rules", "REP011", "--baseline", str(empty)])
    assert rc == 1


def test_cli_out_flag_writes_report_file(tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    rc = lint_main(
        [str(SRC_REPRO), "--format", "sarif", "--out", str(out_file)]
    )
    assert rc == 0
    capsys.readouterr()  # nothing useful on stdout
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["version"] == "2.1.0"


def test_repro_lint_subcommand_matches_alias(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(SRC_REPRO)]) == 0
    sub_out = capsys.readouterr().out
    assert lint_main([str(SRC_REPRO)]) == 0
    assert capsys.readouterr().out == sub_out


def test_module_alias_entry_point_still_works():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "REP012" in proc.stdout


# ---------------------------------------------------------------------------
# Runtime contracts the rules enforce.
# ---------------------------------------------------------------------------


def test_obs_contract_declares_prefixed_families():
    assert is_declared_counter("runner.cache_hits")
    assert is_declared_counter("faults.injected.server_crash")
    assert is_declared_counter("network.nlb_dropped.dropped_token")
    assert not is_declared_counter("runner.cache_hitz")
    assert is_declared_timer("runner.cell")
    assert not is_declared_timer("runner.cel")
    # registries are disjoint namespaces
    assert not COUNTER_NAMES & TIMER_NAMES


def test_outcome_partition_is_total_and_disjoint():
    from repro.network.request import (
        FAULT_OUTCOMES,
        POLICY_OUTCOMES,
        RequestOutcome,
    )

    members = set(RequestOutcome)
    assert FAULT_OUTCOMES | POLICY_OUTCOMES == members - {
        RequestOutcome.COMPLETED
    }
    assert not FAULT_OUTCOMES & POLICY_OUTCOMES


def test_policy_outcomes_exported_from_network_package():
    from repro.network import POLICY_OUTCOMES as exported
    from repro.network.request import POLICY_OUTCOMES

    assert exported is POLICY_OUTCOMES
