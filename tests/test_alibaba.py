"""Unit tests for the Alibaba trace substrate."""

import numpy as np
import pytest

from repro.trace import (
    ClusterTrace,
    SyntheticAlibabaTrace,
    load_machine_usage,
    write_machine_usage,
)


@pytest.fixture
def small_trace():
    return SyntheticAlibabaTrace().generate(
        num_machines=16, duration_s=3600.0, interval_s=60.0, seed=42
    )


class TestClusterTrace:
    def test_shape_and_duration(self, small_trace):
        assert small_trace.num_machines == 16
        assert small_trace.num_intervals == 60
        assert small_trace.duration_s == pytest.approx(3600.0)

    def test_values_in_unit_interval(self, small_trace):
        assert np.all(small_trace.utilization >= 0)
        assert np.all(small_trace.utilization <= 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ClusterTrace(np.array([[1.5]]), 30.0)
        with pytest.raises(ValueError):
            ClusterTrace(np.array([[-0.1]]), 30.0)

    def test_wrong_dims_rejected(self):
        with pytest.raises(ValueError):
            ClusterTrace(np.zeros(10), 30.0)

    def test_aggregate_load_is_machine_mean(self, small_trace):
        agg = small_trace.aggregate_load()
        assert agg.shape == (60,)
        assert agg[0] == pytest.approx(small_trace.utilization[:, 0].mean())

    def test_normalized_load_peaks_at_one(self, small_trace):
        norm = small_trace.normalized_load()
        assert norm.max() == pytest.approx(1.0)
        assert np.all(norm >= 0)

    def test_slice_time(self, small_trace):
        sliced = small_trace.slice_time(600.0, 1800.0)
        assert sliced.num_intervals == 20
        np.testing.assert_array_equal(
            sliced.utilization, small_trace.utilization[:, 10:30]
        )

    def test_slice_validation(self, small_trace):
        with pytest.raises(ValueError):
            small_trace.slice_time(100.0, 100.0)


class TestRateFunction:
    def test_rate_bounds(self, small_trace):
        rate = small_trace.to_rate_function(10.0, 100.0)
        values = [rate(t) for t in np.linspace(0, small_trace.duration_s - 1, 200)]
        assert min(values) >= 10.0
        assert max(values) <= 100.0
        assert max(values) == pytest.approx(100.0)

    def test_looping_past_horizon(self, small_trace):
        rate = small_trace.to_rate_function(10.0, 100.0, loop=True)
        assert rate(small_trace.duration_s + 30.0) == rate(30.0)

    def test_no_loop_falls_back_to_base(self, small_trace):
        rate = small_trace.to_rate_function(10.0, 100.0, loop=False)
        assert rate(small_trace.duration_s + 1) == 10.0

    def test_negative_time_rejected(self, small_trace):
        rate = small_trace.to_rate_function(10.0, 100.0)
        with pytest.raises(ValueError):
            rate(-1.0)

    def test_peak_below_base_rejected(self, small_trace):
        with pytest.raises(ValueError):
            small_trace.to_rate_function(100.0, 10.0)


class TestSyntheticGenerator:
    def test_reproducible_per_seed(self):
        gen = SyntheticAlibabaTrace()
        a = gen.generate(num_machines=4, duration_s=600, interval_s=30, seed=1)
        b = gen.generate(num_machines=4, duration_s=600, interval_s=30, seed=1)
        np.testing.assert_array_equal(a.utilization, b.utilization)

    def test_different_seeds_differ(self):
        gen = SyntheticAlibabaTrace()
        a = gen.generate(num_machines=4, duration_s=600, interval_s=30, seed=1)
        b = gen.generate(num_machines=4, duration_s=600, interval_s=30, seed=2)
        assert not np.array_equal(a.utilization, b.utilization)

    def test_mean_util_near_published_value(self):
        trace = SyntheticAlibabaTrace().generate(
            num_machines=64, duration_s=12 * 3600, interval_s=60, seed=0
        )
        assert trace.summary().mean_util == pytest.approx(0.40, abs=0.08)

    def test_diurnal_component_visible(self):
        # Over 12 h the half-cycle should produce a rising-then-varying
        # envelope: the aggregate load is not flat.
        trace = SyntheticAlibabaTrace(ar1_sigma=0.01, burst_prob=0.0).generate(
            num_machines=32, duration_s=12 * 3600, interval_s=300, seed=0
        )
        agg = trace.aggregate_load()
        assert agg.max() - agg.min() > 0.15

    def test_summary_fields(self):
        trace = SyntheticAlibabaTrace().generate(8, 1200, 60, seed=3)
        s = trace.summary()
        assert s.num_machines == 8
        assert 0 < s.mean_util <= s.p95_util <= s.max_util <= 1


class TestCSVRoundTrip:
    def test_write_then_load(self, tmp_path, small_trace):
        path = str(tmp_path / "machine_usage.csv")
        write_machine_usage(small_trace, path)
        loaded = load_machine_usage(path, interval_s=small_trace.interval_s)
        assert loaded.num_machines == small_trace.num_machines
        # Bin alignment can shift the last column; compare the bulk.
        np.testing.assert_allclose(
            loaded.utilization[:, :-1], small_trace.utilization[:, :-1], atol=5e-3
        )

    def test_max_machines_limit(self, tmp_path, small_trace):
        path = str(tmp_path / "machine_usage.csv")
        write_machine_usage(small_trace, path)
        loaded = load_machine_usage(path, interval_s=60.0, max_machines=4)
        assert loaded.num_machines == 4

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_machine_usage(str(path))
