"""Cross-scheme invariants: properties every power scheme must satisfy.

One parametrized net over the full scheme zoo (the Table-2 four plus
the extension arms).  Each invariant encodes something no power
management design may violate regardless of policy: budget compliance
in steady state, recovery after the attack ends, determinism per seed,
and sane accounting.
"""

import numpy as np
import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.core.oracle import OracleScheme
from repro.power import LocalCappingScheme
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))

MANAGED_SCHEMES = [
    CappingScheme,
    LocalCappingScheme,
    ShavingScheme,
    TokenScheme,
    AntiDopeScheme,
    OracleScheme,
]


def run(scheme_factory, seed=7, duration=150.0, attack_end=None):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=scheme_factory(),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(
        mix=ATTACK, rate_rps=250, num_agents=20, start_s=20, end_s=attack_end
    )
    sim.run(duration)
    return sim


@pytest.mark.parametrize("scheme_factory", MANAGED_SCHEMES)
class TestEverySchemeInvariants:
    def test_steady_state_budget_compliance(self, scheme_factory):
        """Grid-side mean power over the attack window fits the budget.

        Battery-backed schemes may draw load power above the budget
        while discharging; the *grid* draw (load minus battery delivery)
        is what the supply constrains.
        """
        sim = run(scheme_factory)
        powers = sim.meter.powers()
        times = sim.meter.times()
        window = powers[(times > 60)]
        grid_mean = float(np.mean(window))
        if sim.battery is not None:
            grid_mean -= sim.battery.delivered_j / (sim.now - 60.0)
        assert grid_mean <= sim.budget.supply_w * 1.02

    def test_deterministic_per_seed(self, scheme_factory):
        a = run(scheme_factory, seed=3, duration=60.0)
        b = run(scheme_factory, seed=3, duration=60.0)
        assert len(a.collector) == len(b.collector)
        assert a.meter.powers().tolist() == b.meter.powers().tolist()
        sa = a.latency_stats(traffic_class=TrafficClass.NORMAL)
        sb = b.latency_stats(traffic_class=TrafficClass.NORMAL)
        assert sa.mean == sb.mean

    def test_recovery_after_attack_ends(self, scheme_factory):
        """Once the flood stops, every scheme returns the rack to
        nominal frequency and power falls back to the quiet level."""
        sim = run(scheme_factory, duration=240.0, attack_end=120.0)
        assert sim.rack.levels() == [12] * 4
        tail_power = sim.meter.powers()[sim.meter.times() > 200].mean()
        assert tail_power < 0.55 * sim.rack.nameplate_w

    def test_normal_traffic_survives(self, scheme_factory):
        """No scheme may starve legitimate traffic outright."""
        sim = run(scheme_factory)
        report = sim.availability_report(
            sla_s=2.0, traffic_class=TrafficClass.NORMAL, start_s=30.0
        )
        assert report.offered > 1000
        assert report.availability > 0.5

    def test_energy_accounting_consistent(self, scheme_factory):
        """Load energy equals the mean power integral within tolerance."""
        sim = run(scheme_factory, duration=100.0)
        energy = sim.rack.total_energy_joules()
        approx = sim.meter.mean_power() * sim.now
        assert energy == pytest.approx(approx, rel=0.05)

    def test_no_firewall_bans_under_dope(self, scheme_factory):
        """The flood is a DOPE flood: invisible regardless of defence."""
        sim = run(scheme_factory, duration=60.0)
        assert sim.firewall.stats.bans == 0


class TestUnmanagedContrast:
    def test_null_scheme_violates_where_managed_do_not(self):
        unmanaged = run(NullScheme)
        powers = unmanaged.meter.powers()
        times = unmanaged.meter.times()
        window = powers[times > 60]
        # The unmanaged rack sits above budget through the attack.
        assert (window > unmanaged.budget.supply_w).mean() > 0.9
