"""Unit tests for the offline suspect-list profiling."""

import math

import pytest

from repro.cluster import ServerPowerModel
from repro.core import SuspectList
from repro.workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VOLUME_DOS,
    WORD_COUNT,
)


class TestFromModel:
    def test_paper_classification_at_default_threshold(self, power_model):
        # The attack-capable types (Fig 4a: Colla-Filt, K-means,
        # Word-Count "generate power surges with light traffic rate")
        # are suspect; the light text endpoint and volume floods are not.
        sl = SuspectList.from_model(ALL_TYPES, power_model)
        assert sl.is_suspect(COLLA_FILT.url)
        assert sl.is_suspect(K_MEANS.url)
        assert sl.is_suspect(WORD_COUNT.url)
        assert not sl.is_suspect(TEXT_CONT.url)
        assert not sl.is_suspect(VOLUME_DOS.url)

    def test_threshold_sweep_changes_boundary(self, power_model):
        strict = SuspectList.from_model(ALL_TYPES, power_model, 0.85)
        assert strict.is_suspect(COLLA_FILT.url)
        assert strict.is_suspect(K_MEANS.url)
        assert not strict.is_suspect(WORD_COUNT.url)

    def test_profiles_match_power_model(self, power_model):
        sl = SuspectList.from_model(ALL_TYPES, power_model)
        profile = sl.profile(COLLA_FILT.url)
        assert profile.full_load_power_w == pytest.approx(
            power_model.full_load_power(COLLA_FILT, 1.0)
        )
        assert profile.energy_per_request_j == pytest.approx(
            power_model.energy_per_request(COLLA_FILT, 1.0)
        )

    def test_suspect_and_innocent_partition(self, power_model):
        sl = SuspectList.from_model(ALL_TYPES, power_model)
        assert set(sl.suspect_urls) | set(sl.innocent_urls) == {
            t.url for t in ALL_TYPES
        }
        assert not set(sl.suspect_urls) & set(sl.innocent_urls)
        assert len(sl) == len(ALL_TYPES)

    def test_unknown_url_defaults_innocent(self, power_model):
        sl = SuspectList.from_model(ALL_TYPES, power_model)
        assert not sl.is_suspect("/never/profiled")

    def test_profile_unknown_url_raises(self, power_model):
        sl = SuspectList.from_model(ALL_TYPES, power_model)
        with pytest.raises(KeyError):
            sl.profile("/never/profiled")

    def test_empty_types_rejected(self, power_model):
        with pytest.raises(ValueError):
            SuspectList.from_model([], power_model)

    def test_invalid_threshold_rejected(self, power_model):
        with pytest.raises(ValueError):
            SuspectList.from_model(ALL_TYPES, power_model, threshold_fraction=0.0)


class TestFromMeasurements:
    def test_classifies_by_mean_observed_power(self):
        samples = [
            ("/api/heavy", 95.0),
            ("/api/heavy", 90.0),
            ("/api/light", 45.0),
            ("/api/light", 55.0),
        ]
        sl = SuspectList.from_measurements(samples, nameplate_w=100.0)
        assert sl.is_suspect("/api/heavy")
        assert not sl.is_suspect("/api/light")

    def test_energy_is_nan_for_measured_profiles(self):
        sl = SuspectList.from_measurements([("/x", 80.0)], nameplate_w=100.0)
        assert math.isnan(sl.profile("/x").energy_per_request_j)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            SuspectList.from_measurements([], nameplate_w=100.0)
