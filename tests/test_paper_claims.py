"""Integration tests asserting the paper's qualitative claims.

These are the calibration targets from DESIGN.md §5: each test pins a
*shape* the paper reports (who wins, in which direction, by a floor on
the factor) rather than an absolute number.  One matrix of simulations
is shared module-wide to keep the suite fast.
"""

import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    NullScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.workloads import (
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TrafficClass,
    uniform_mix,
)

ATTACK_START = 30.0
DURATION = 240.0
MEASURE_FROM = 60.0
ATTACK_RATE = 300.0


def run_scenario(scheme_factory, budget, attack=True, seed=7):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=budget, seed=seed), scheme=scheme_factory()
    )
    sim.add_normal_traffic(rate_rps=40)
    if attack:
        sim.add_flood(
            mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
            rate_rps=ATTACK_RATE,
            num_agents=20,
            start_s=ATTACK_START,
        )
    sim.run(DURATION)
    return sim


@pytest.fixture(scope="module")
def matrix():
    """Baseline plus each scheme under Low-PB attack."""
    runs = {"baseline": run_scenario(NullScheme, BudgetLevel.NORMAL, attack=False)}
    for name, factory in (
        ("capping", CappingScheme),
        ("shaving", ShavingScheme),
        ("token", TokenScheme),
        ("anti-dope", AntiDopeScheme),
    ):
        runs[name] = run_scenario(factory, BudgetLevel.LOW)
    return runs


def normal_stats(sim):
    return sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=MEASURE_FROM, end_s=DURATION
    )


class TestBaseline:
    def test_baseline_mean_below_50ms(self, matrix):
        # Fig 16: "all the service response time ... is below 40 ms"
        # under Normal-PB; our queueing model lands in the same decade.
        assert normal_stats(matrix["baseline"]).mean < 0.050

    def test_baseline_power_well_under_nameplate(self, matrix):
        sim = matrix["baseline"]
        assert sim.meter.mean_power() < 0.5 * sim.rack.nameplate_w


class TestDopeDamage:
    def test_capping_inflates_mean_severalfold(self, matrix):
        # Fig 7: DOPE under a power-insufficient budget with blind
        # capping multiplies the mean response time (paper: 7.4x).
        base = normal_stats(matrix["baseline"]).mean
        capped = normal_stats(matrix["capping"]).mean
        assert capped > 4.0 * base

    def test_capping_inflates_tail_severalfold(self, matrix):
        # Fig 7: 8.9x 90th-percentile inflation.
        base = normal_stats(matrix["baseline"]).p90
        capped = normal_stats(matrix["capping"]).p90
        assert capped > 3.0 * base

    def test_attack_violates_budget_without_management(self):
        sim = run_scenario(NullScheme, BudgetLevel.LOW)
        assert sim.meter.peak_power() > sim.budget.supply_w

    def test_attack_stays_under_firewall_radar(self, matrix):
        # The defining DOPE property (Fig 11): the flood that causes
        # all this damage is never detected.
        for name in ("capping", "shaving", "anti-dope"):
            assert matrix[name].firewall.stats.bans == 0


class TestShaving:
    def test_battery_exhausted_by_sustained_peak(self, matrix):
        # Fig 18: Shaving's battery drains "as soon as" under the
        # long DOPE peak.
        assert matrix["shaving"].battery.soc_fraction < 0.15

    def test_shaving_no_better_than_capping_long_run(self, matrix):
        # "batteries do not function well with such a long-duration
        # power peak": after exhaustion Shaving degenerates to Capping.
        shaving = normal_stats(matrix["shaving"]).mean
        capping = normal_stats(matrix["capping"]).mean
        assert shaving > 0.5 * capping


class TestToken:
    def test_token_keeps_latency_short(self, matrix):
        # Fig 16: "Token has far shorter service time than the others."
        token = normal_stats(matrix["token"]).mean
        capping = normal_stats(matrix["capping"]).mean
        assert token < 0.5 * capping

    def test_token_abandons_over_half_the_flood(self, matrix):
        # "it abandons more than 60% of the packages to satisfy the
        # power limit" — measured at the bucket, which sees the whole
        # offered flood.
        assert matrix["token"].scheme.bucket.drop_fraction > 0.5


class TestAntiDopeHeadline:
    def test_mean_response_time_improvement(self, matrix):
        # Abstract: "44% shorter average response time" vs the other
        # power controlling methods.
        anti = normal_stats(matrix["anti-dope"]).mean
        best_conventional = min(
            normal_stats(matrix["capping"]).mean,
            normal_stats(matrix["shaving"]).mean,
        )
        assert anti < (1 - 0.44) * best_conventional

    def test_tail_latency_improvement(self, matrix):
        # Abstract: "improves the 90th percentile tail latency by 68.1%".
        anti = normal_stats(matrix["anti-dope"]).p90
        best_conventional = min(
            normal_stats(matrix["capping"]).p90,
            normal_stats(matrix["shaving"]).p90,
        )
        assert anti < (1 - 0.681) * best_conventional

    def test_anti_dope_keeps_power_capped(self, matrix):
        sim = matrix["anti-dope"]
        powers = sim.meter.powers()
        over = (powers > sim.budget.supply_w).mean()
        assert over < 0.05

    def test_anti_dope_near_baseline_for_innocent_traffic(self, matrix):
        # Fig 15b: normal users' light requests barely degrade.
        base = matrix["baseline"].latency_stats(
            type_name="text-cont", start_s=MEASURE_FROM
        )
        anti = matrix["anti-dope"].latency_stats(
            traffic_class=TrafficClass.NORMAL,
            type_name="text-cont",
            start_s=MEASURE_FROM,
        )
        assert anti.mean < 1.5 * base.mean
