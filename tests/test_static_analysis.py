"""Tier-1 gate and unit tests for the ``repro.devtools`` lint suite.

The first test is the gate: the whole ``src/repro`` tree must lint
clean.  The rest pin down each rule against fixtures under
``tests/devtools_fixtures/`` — every line carrying a ``# VIOLATION``
marker must produce exactly one finding for the rule under test, and
the matching ``*_clean.py`` twin must produce none.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import (
    ALLOWED_IMPORTS,
    build_rules,
    lint_paths,
    lint_source,
    node_for,
    registered_rules,
    render_json,
    render_text,
    validate_layering,
)
from repro.devtools.engine import infer_module_name
from repro.devtools.lint import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "devtools_fixtures"

ALL_RULE_IDS = [
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP007",
    "REP008",
    "REP009",
    "REP010",
    "REP011",
    "REP012",
]


def violation_lines(source: str) -> list:
    """Line numbers carrying a ``# VIOLATION`` marker."""
    return [
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if "# VIOLATION" in text
    ]


def lint_fixture(name: str, rule_id: str, module: str) -> tuple:
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    findings = lint_source(
        source, path=str(path), module=module, rules=[rule_id]
    )
    return source, findings


# ---------------------------------------------------------------------------
# The gate: src/repro must be clean under every rule.
# ---------------------------------------------------------------------------


def test_src_repro_lints_clean():
    findings = lint_paths([str(SRC_REPRO)])
    assert findings == [], "\n" + render_text(findings)


def test_all_twelve_rules_registered():
    assert [cls.rule_id for cls in registered_rules()] == ALL_RULE_IDS


# ---------------------------------------------------------------------------
# Per-rule fixtures: exact rule ids and line numbers.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_fires_on_violation_fixture(rule_id):
    stem = rule_id.lower()
    module = (
        f"repro.cluster.{stem}_violation"
        if rule_id == "REP004"
        else f"repro.fixtures.{stem}_violation"
    )
    source, findings = lint_fixture(f"{stem}_violation.py", rule_id, module)
    assert findings, f"{rule_id} produced no findings on its fixture"
    assert sorted(f.line for f in findings) == violation_lines(source)
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_quiet_on_clean_fixture(rule_id):
    stem = rule_id.lower()
    module = (
        f"repro.cluster.{stem}_clean"
        if rule_id == "REP004"
        else f"repro.fixtures.{stem}_clean"
    )
    _, findings = lint_fixture(f"{stem}_clean.py", rule_id, module)
    assert findings == [], "\n" + render_text(findings)


def test_finding_format_is_path_line_col_rule():
    _, findings = lint_fixture(
        "rep002_violation.py", "REP002", "repro.fixtures.rep002_violation"
    )
    text = findings[0].format()
    assert "rep002_violation.py:5:" in text
    assert " REP002 " in text


# ---------------------------------------------------------------------------
# Suppression pragmas.
# ---------------------------------------------------------------------------


def test_suppression_pragmas_silence_named_and_star():
    source, findings = lint_fixture(
        "suppression.py", "REP001", "repro.fixtures.suppression"
    )
    # Only the unsuppressed call survives; ignore[REP001], the
    # comma-separated form, and ignore[*] all silence their lines.
    assert sorted(f.line for f in findings) == violation_lines(source)


def test_suppression_of_other_rule_does_not_silence():
    findings = lint_source(
        "import random  # repro: ignore[REP003]\n",
        module="repro.fixtures.snippet",
        rules=["REP001"],
    )
    assert [f.rule for f in findings] == ["REP001"]


# ---------------------------------------------------------------------------
# Layering model.
# ---------------------------------------------------------------------------


def test_declared_layering_is_acyclic():
    order = validate_layering()
    assert set(order) == set(ALLOWED_IMPORTS)
    seen = set()
    for node in order:
        assert ALLOWED_IMPORTS[node] <= seen
        seen.add(node)


def test_node_for_maps_kernel_and_catalog_splits():
    assert node_for("repro.sim.engine") == "sim.kernel"
    assert node_for("repro.sim.clock") == "sim.kernel"
    assert node_for("repro.sim.simulation") == "sim"
    assert node_for("repro.workloads.catalog") == "workloads.catalog"
    assert node_for("repro.workloads.generator") == "workloads"
    assert node_for("repro._validation") == "validation"
    assert node_for("repro.cli") == "root"
    assert node_for("repro") == "root"


def test_validate_layering_raises_on_cycle(monkeypatch):
    import repro.devtools.layering as layering

    cyclic = {"a": frozenset({"b"}), "b": frozenset({"a"})}
    monkeypatch.setattr(layering, "ALLOWED_IMPORTS", cyclic)
    with pytest.raises(ValueError, match="layering cycle"):
        layering.validate_layering()


def test_infer_module_name_roots_at_repro():
    module, is_package = infer_module_name("src/repro/sim/engine.py")
    assert (module, is_package) == ("repro.sim.engine", False)
    module, is_package = infer_module_name("src/repro/power/__init__.py")
    assert (module, is_package) == ("repro.power", True)
    module, is_package = infer_module_name("tests/devtools_fixtures/x.py")
    assert (module, is_package) == (None, False)


# ---------------------------------------------------------------------------
# Engine edges.
# ---------------------------------------------------------------------------


def test_syntax_error_becomes_rep000_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    findings = lint_paths([str(bad)])
    assert [f.rule for f in findings] == ["REP000"]


def test_build_rules_rejects_unknown_id():
    with pytest.raises(ValueError, match="unknown rule"):
        build_rules(only=["REP999"])


def test_render_json_round_trips():
    _, findings = lint_fixture(
        "rep005_violation.py", "REP005", "repro.fixtures.rep005_violation"
    )
    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings) == 3
    assert payload["findings"][0]["rule"] == "REP005"
    assert {"path", "line", "col", "rule", "message"} <= set(
        payload["findings"][0]
    )


# ---------------------------------------------------------------------------
# CLI: exit codes and output formats.
# ---------------------------------------------------------------------------


def test_cli_exits_zero_on_src_repro(capsys):
    assert lint_main([str(SRC_REPRO)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exits_nonzero_on_seeded_violation(capsys):
    rc = lint_main([str(FIXTURES / "rep001_violation.py"), "--rules", "REP001"])
    assert rc == 1
    assert "REP001" in capsys.readouterr().out


def test_cli_json_format(capsys):
    rc = lint_main(
        [
            str(FIXTURES / "rep002_violation.py"),
            "--rules",
            "REP002",
            "--format",
            "json",
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "REP001" in proc.stdout
