"""Unit tests for the power meter."""

import numpy as np
import pytest

from repro.network import Request
from repro.power import Battery, PowerMeter
from repro.workloads import COLLA_FILT, TrafficClass


class TestSampling:
    def test_samples_at_interval(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=5.0)
        assert len(meter) == 6  # t=0 (immediate) plus 1..5
        np.testing.assert_allclose(meter.times(), [0, 1, 2, 3, 4, 5])

    def test_no_initial_sample_option(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start(sample_now=False)
        engine.run(until=3.0)
        np.testing.assert_allclose(meter.times(), [1, 2, 3])

    def test_sample_captures_power_change(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()

        def load():
            for s in rack.servers:
                for i in range(8):
                    s.submit(Request(COLLA_FILT, i, TrafficClass.ATTACK, engine.now))

        engine.schedule(2.5, load)
        engine.schedule(2.6, meter.sample)  # mid-burst snapshot
        engine.run(until=4.0)
        powers = meter.powers()
        assert powers[0] == pytest.approx(152.0)
        assert meter.peak_power() > 350.0

    def test_mean_level_tracks_dvfs(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.schedule(1.5, lambda: rack.set_all_levels(0))
        engine.run(until=3.0)
        levels = meter.mean_levels()
        assert levels[0] == 12.0
        assert levels[-1] == 0.0

    def test_battery_soc_sampled(self, engine, rack):
        battery = Battery.for_rack(rack.nameplate_w)
        meter = PowerMeter(engine, rack, interval_s=1.0, battery=battery)
        meter.start()
        engine.schedule(1.5, lambda: battery.discharge(400.0, 60.0))
        engine.run(until=3.0)
        socs = meter.socs()
        assert socs[0] == 1.0
        assert socs[-1] == pytest.approx(0.5)

    def test_socs_nan_without_battery(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=1.0)
        assert np.all(np.isnan(meter.socs()))


class TestStatistics:
    def test_peak_and_mean(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=3.0)
        assert meter.peak_power() == pytest.approx(152.0)
        assert meter.mean_power() == pytest.approx(152.0)

    def test_empty_meter_raises(self, engine, rack):
        meter = PowerMeter(engine, rack)
        with pytest.raises(RuntimeError):
            meter.peak_power()

    def test_time_over_threshold(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=10.0)
        assert meter.time_over(100.0) == pytest.approx(10.0)
        assert meter.time_over(500.0) == 0.0

    def test_window_view(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=10.0)
        view = meter.window(3.0, 6.0)
        np.testing.assert_allclose(view.times(), [3, 4, 5])


class TestLifecycle:
    def test_double_start_rejected(self, engine, rack):
        meter = PowerMeter(engine, rack)
        meter.start()
        with pytest.raises(RuntimeError):
            meter.start()

    def test_stop_halts_sampling(self, engine, rack):
        meter = PowerMeter(engine, rack, interval_s=1.0)
        meter.start()
        engine.run(until=2.0)
        meter.stop()
        engine.run(until=10.0)
        assert meter.times()[-1] == 2.0
