"""Unit tests for the rack aggregate."""

import pytest

from repro.cluster import Rack
from repro.network import Request
from repro.workloads import COLLA_FILT, TrafficClass


class TestAggregation:
    def test_paper_rack_nameplate(self, rack):
        assert rack.nameplate_w == pytest.approx(400.0)

    def test_total_power_is_sum_of_servers(self, rack):
        assert rack.total_power() == pytest.approx(
            sum(s.current_power() for s in rack.servers)
        )

    def test_idle_rack_power(self, rack):
        assert rack.total_power() == pytest.approx(4 * 38.0)

    def test_idle_floor_matches_total_when_empty(self, rack):
        assert rack.idle_floor() == pytest.approx(rack.total_power())

    def test_total_in_system(self, engine, rack):
        rack.servers[0].submit(Request(COLLA_FILT, 0, TrafficClass.NORMAL, 0.0))
        rack.servers[2].submit(Request(COLLA_FILT, 1, TrafficClass.NORMAL, 0.0))
        assert rack.total_in_system() == 2

    def test_total_energy_sums_servers(self, engine, rack):
        engine.schedule(5.0, lambda: None)
        engine.run()
        assert rack.total_energy_joules() == pytest.approx(4 * 38.0 * 5.0)


class TestBulkDVFS:
    def test_set_all_levels(self, rack):
        rack.set_all_levels(3)
        assert rack.levels() == [3, 3, 3, 3]

    def test_set_levels_vector(self, rack):
        rack.set_levels([0, 4, 8, 12])
        assert rack.levels() == [0, 4, 8, 12]

    def test_set_levels_wrong_length_rejected(self, rack):
        with pytest.raises(ValueError):
            rack.set_levels([1, 2])

    def test_step_all_down(self, rack):
        rack.step_all(-2)
        assert rack.levels() == [10, 10, 10, 10]

    def test_step_all_up_saturates(self, rack):
        rack.step_all(5)
        assert rack.levels() == [12, 12, 12, 12]

    def test_mean_freq(self, rack):
        rack.set_all_levels(0)
        assert rack.mean_freq_ghz() == pytest.approx(1.2)


class TestSubset:
    def test_subset_returns_requested_servers(self, rack):
        subset = rack.subset([1, 3])
        assert [s.server_id for s in subset] == [1, 3]

    def test_subset_out_of_range_rejected(self, rack):
        with pytest.raises(IndexError):
            rack.subset([7])

    def test_for_each_applies(self, rack):
        rack.for_each(lambda s: s.set_level(5))
        assert rack.levels() == [5] * 4


class TestDeterminism:
    def test_server_seeds_deterministic(self, engine, collector):
        import numpy as np

        r1 = Rack(engine, rng=np.random.default_rng(9))
        r2 = Rack(engine, rng=np.random.default_rng(9))
        s1 = [float(s.rng.random()) for s in r1.servers]
        s2 = [float(s.rng.random()) for s in r2.servers]
        assert s1 == s2

    def test_servers_have_distinct_streams(self, rack):
        draws = [float(s.rng.random()) for s in rack.servers]
        assert len(set(draws)) == len(draws)


class TestValidation:
    def test_zero_servers_rejected(self, engine):
        with pytest.raises(ValueError):
            Rack(engine, num_servers=0)
