"""The online-detection pipeline: features, scorer, registry, scheme.

Unit coverage of ``repro.detect``'s three layers — the streaming
feature extractor (bounds, decay, calibration clamp), the anomaly
scorer (warm-up, hysteresis, determinism) and the scheme registry —
plus Hypothesis properties for the feature algebra the scorer depends
on: entropy bounded by the catalog size, rates non-negative, and the
decay windows monotone in elapsed time.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.detect import (
    OnlineAnomalyModel,
    OnlineDetectScheme,
    SCHEME_NAMES,
    StreamingFeatureExtractor,
    make_scheme,
    validate_scheme_names,
)
from repro.detect.features import GAIN_MAX, GAIN_MIN
from repro.sim import SimulationConfig
from repro.workloads import ALL_TYPES, COLLA_FILT, K_MEANS


# ----------------------------------------------------------------------
# StreamingFeatureExtractor
# ----------------------------------------------------------------------


class TestFeatureExtractor:
    def test_arrivals_raise_rate(self):
        ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=10.0)
        for i in range(20):
            ex.observe_arrival(1, COLLA_FILT, now=i * 0.1)
        assert ex.features(1, now=2.0).rate_rps > 0.0

    def test_single_type_stream_has_zero_entropy(self):
        ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=10.0)
        for i in range(50):
            ex.observe_arrival(1, K_MEANS, now=i * 0.05)
        assert ex.features(1, now=2.5).entropy_bits == 0.0

    def test_uniform_mix_approaches_max_entropy(self):
        ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=1e6)
        for i, rtype in enumerate(ALL_TYPES * 40):
            ex.observe_arrival(1, rtype, now=i * 0.01)
        feats = ex.features(1, now=2.0)
        assert feats.entropy_bits == pytest.approx(ex.max_entropy_bits, rel=1e-6)

    def test_energy_attribution_scales_power(self):
        ex = StreamingFeatureExtractor(
            ALL_TYPES, tau_s=10.0, energy_of=lambda rtype: 2.5
        )
        for i in range(10):
            ex.observe_completion(1, COLLA_FILT, now=i * 0.1)
        # 10 completions x 2.5 J over a 10 s window, no decay to speak of.
        assert ex.features(1, now=1.0).power_w == pytest.approx(2.5, rel=0.2)

    def test_calibration_clamp_flags_and_bounds(self):
        ex = StreamingFeatureExtractor(ALL_TYPES)
        ex.set_calibration(1.3)
        assert not ex.gain_clamped
        assert ex.calibration_gain == pytest.approx(1.3)
        ex.set_calibration(50.0)  # meter dropout: worst-case/modelled
        assert ex.gain_clamped
        assert ex.calibration_gain == GAIN_MAX
        ex.set_calibration(0.0)
        assert ex.gain_clamped
        assert ex.calibration_gain == GAIN_MIN

    def test_forget_drops_window(self):
        ex = StreamingFeatureExtractor(ALL_TYPES)
        ex.observe_arrival(7, COLLA_FILT, now=0.0)
        assert len(ex) == 1
        ex.forget(7)
        assert len(ex) == 0
        assert list(ex.sources()) == []

    def test_sources_sorted(self):
        ex = StreamingFeatureExtractor(ALL_TYPES)
        for sid in (9, 3, 5):
            ex.observe_arrival(sid, COLLA_FILT, now=0.0)
        assert list(ex.sources()) == [3, 5, 9]


# ----------------------------------------------------------------------
# Hypothesis: the feature algebra
# ----------------------------------------------------------------------

arrival_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # source id
        st.sampled_from(ALL_TYPES),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),  # gap
    ),
    min_size=1,
    max_size=60,
)


class TestFeatureProperties:
    @given(stream=arrival_streams)
    @settings(max_examples=50, deadline=None)
    def test_entropy_bounded_by_catalog(self, stream):
        """entropy ∈ [0, log2(|types|)] for every arrival sequence."""
        ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=5.0)
        now = 0.0
        for sid, rtype, gap in stream:
            now += gap
            ex.observe_arrival(sid, rtype, now)
        for sid in ex.sources():
            feats = ex.features(sid, now)
            assert 0.0 <= feats.entropy_bits <= ex.max_entropy_bits + 1e-9

    @given(stream=arrival_streams)
    @settings(max_examples=50, deadline=None)
    def test_rates_and_power_non_negative(self, stream):
        ex = StreamingFeatureExtractor(
            ALL_TYPES, tau_s=5.0, energy_of=lambda rtype: 1.0
        )
        now = 0.0
        for sid, rtype, gap in stream:
            now += gap
            ex.observe_arrival(sid, rtype, now)
            ex.observe_completion(sid, rtype, now)
        for sid in ex.sources():
            feats = ex.features(sid, now)
            assert feats.rate_rps >= 0.0
            assert feats.power_w >= 0.0
            assert feats.burstiness >= 0.0

    @given(
        arrivals=st.integers(min_value=1, max_value=30),
        dt1=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        dt2=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_decay_window_monotone_in_elapsed_time(self, arrivals, dt1, dt2):
        """With no new arrivals, rate and power never increase with time."""

        def rate_after(idle_s):
            ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=5.0)
            for i in range(arrivals):
                ex.observe_arrival(1, COLLA_FILT, now=i * 0.1)
                ex.observe_completion(1, COLLA_FILT, now=i * 0.1)
            feats = ex.features(1, now=arrivals * 0.1 + idle_s)
            return feats.rate_rps, feats.power_w

        early = rate_after(min(dt1, dt2))
        late = rate_after(max(dt1, dt2))
        assert late[0] <= early[0] + 1e-12
        assert late[1] <= early[1] + 1e-12


# ----------------------------------------------------------------------
# OnlineAnomalyModel
# ----------------------------------------------------------------------


def _feats(ex, sid, now):
    return ex.features(sid, now)


class TestAnomalyModel:
    def _population(self):
        """A tight benign population plus one screaming outlier."""
        ex = StreamingFeatureExtractor(ALL_TYPES, tau_s=10.0)
        now = 0.0
        for step in range(60):
            now = step * 1.0
            for sid in range(10):
                ex.observe_arrival(sid, ALL_TYPES[sid % len(ALL_TYPES)], now)
        for i in range(400):
            ex.observe_arrival(99, COLLA_FILT, now=now + i * 0.01)
        return ex, now + 4.0

    def test_warmup_blocks_verdicts(self):
        model = OnlineAnomalyModel(warmup_observations=1000)
        ex, now = self._population()
        assert not model.update(99, _feats(ex, 99, now))
        assert not model.warmed_up

    def test_outlier_flagged_after_warmup(self):
        model = OnlineAnomalyModel(warmup_observations=10)
        ex, now = self._population()
        for _ in range(3):
            for sid in range(10):
                model.update(sid, _feats(ex, sid, now))
        assert model.warmed_up
        assert model.update(99, _feats(ex, 99, now))
        assert model.is_suspect(99)
        assert model.last_scores[99] > model.enter_threshold

    def test_hysteresis_band(self):
        model = OnlineAnomalyModel(
            warmup_observations=1, enter_threshold=2.0, exit_threshold=1.0
        )
        # Force the moments directly through observe() on a synthetic
        # population so score() is analytically predictable.
        from repro.detect.features import SourceFeatures

        base = SourceFeatures(1.0, 1.0, 1.0, 1.0)
        for _ in range(50):
            model.observe(base)
        assert model.score(base) == pytest.approx(0.0, abs=1e-9)
        # A vector scoring between exit and enter must NOT flip an
        # innocent source, but must KEEP a suspect one.
        mid = SourceFeatures(1.075, 1.075, 1.075, 1.075)  # z = 1.5 per feature
        assert 1.0 < model.score(mid) < 2.0
        assert not model.update(1, mid)
        model._suspects[2] = True
        assert model.update(2, mid)

    def test_update_scores_before_absorbing(self):
        from repro.detect.features import SourceFeatures

        model = OnlineAnomalyModel(warmup_observations=1)
        base = SourceFeatures(1.0, 1.0, 1.0, 1.0)
        for _ in range(20):
            model.observe(base)
        outlier = SourceFeatures(100.0, 100.0, 100.0, 100.0)
        before = model.score(outlier)
        model.update(5, outlier)
        assert model.last_scores[5] == before

    def test_fixed_sequence_is_deterministic(self):
        def run():
            model = OnlineAnomalyModel(seed=3, warmup_observations=5)
            ex, now = TestAnomalyModel._population(self)
            out = []
            for _ in range(4):
                for sid in list(ex.sources()):
                    out.append((sid, model.update(sid, _feats(ex, sid, now))))
            return out, model.last_scores

        assert run() == run()

    def test_validation(self):
        with pytest.raises(Exception):
            OnlineAnomalyModel(enter_threshold=1.0, exit_threshold=1.5)
        with pytest.raises(Exception):
            OnlineAnomalyModel(decay=1.0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_six_schemes(self):
        assert set(SCHEME_NAMES) == {
            "anti-dope",
            "capping",
            "online-detect",
            "prediction",
            "shaving",
            "token",
        }

    def test_unknown_name_error_lists_menu(self):
        with pytest.raises(ValueError) as exc:
            validate_scheme_names(["capping", "typo-scheme"])
        message = str(exc.value)
        assert "typo-scheme" in message
        for name in SCHEME_NAMES:
            assert name in message

    def test_make_scheme_threads_placement(self):
        config = SimulationConfig.for_topology(
            "tree-small", detect_placement="row"
        )
        scheme = make_scheme("online-detect", config)
        assert isinstance(scheme, OnlineDetectScheme)
        assert scheme.placement == "row"

    def test_make_scheme_builds_all(self):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name)
            assert scheme.name == name


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------


class TestDetectPlacementConfig:
    def test_default_serialises_without_key(self):
        # The delete-at-default contract: pre-detector configs (and
        # their hashes / cached experiment ids) are unchanged.
        assert "detect_placement" not in SimulationConfig().to_dict()

    def test_non_default_round_trips(self):
        cfg = SimulationConfig(detect_placement="row")
        data = cfg.to_dict()
        assert data["detect_placement"] == "row"
        assert SimulationConfig.from_dict(data) == cfg

    def test_invalid_placement_rejected(self):
        with pytest.raises(Exception):
            SimulationConfig(detect_placement="rack")

    def test_json_round_trip(self):
        cfg = SimulationConfig(detect_placement="row")
        data = json.loads(json.dumps(cfg.to_dict()))
        assert SimulationConfig.from_dict(data) == cfg
