"""Unit tests for the flood-attack models and the Fig. 3 taxonomy."""

import pytest

from repro.network import NetworkLoadBalancer, SourceRegistry
from repro.workloads import (
    ATTACK_SCENARIOS,
    COLLA_FILT,
    POWER_CLASSES,
    VOLUME_DOS,
    TrafficClass,
)
from repro.workloads.attacks import make_flood
from repro.workloads.generator import ClosedLoopGenerator, TrafficGenerator


@pytest.fixture
def registry():
    return SourceRegistry()


class TestMakeFlood:
    def test_closed_loop_by_default(self, engine, rng, registry):
        gen = make_flood(
            engine, lambda r: True, registry, rng, mix=COLLA_FILT, rate_rps=50.0
        )
        assert isinstance(gen, ClosedLoopGenerator)

    def test_open_loop_option(self, engine, rng, registry):
        gen = make_flood(
            engine,
            lambda r: True,
            registry,
            rng,
            mix=COLLA_FILT,
            rate_rps=50.0,
            closed_loop=False,
        )
        assert isinstance(gen, TrafficGenerator)

    def test_agents_allocated(self, engine, rng, registry):
        make_flood(
            engine,
            lambda r: True,
            registry,
            rng,
            mix=COLLA_FILT,
            rate_rps=10.0,
            num_agents=7,
            label="bots",
        )
        assert registry.get("bots").size == 7
        assert registry.get("bots").traffic_class is TrafficClass.ATTACK

    def test_open_loop_spreads_rate_across_agents(self, engine, rng, registry):
        received = []
        gen = make_flood(
            engine,
            lambda r: received.append(r) or True,
            registry,
            rng,
            mix=COLLA_FILT,
            rate_rps=100.0,
            num_agents=10,
            closed_loop=False,
        )
        gen.start()
        engine.run(until=5.0)
        per_source = {}
        for r in received:
            per_source[r.source_id] = per_source.get(r.source_id, 0) + 1
        # 100 rps over 10 agents for 5 s → ~50 requests per agent.
        assert len(per_source) == 10
        assert all(40 <= c <= 60 for c in per_source.values())

    def test_invalid_rate_rejected(self, engine, rng, registry):
        with pytest.raises(ValueError):
            make_flood(
                engine, lambda r: True, registry, rng, mix=COLLA_FILT, rate_rps=0.0
            )


class TestScenarioCatalog:
    def test_seven_scenarios_defined(self):
        assert len(ATTACK_SCENARIOS) == 7

    def test_power_classes_partition_scenarios(self):
        named = set()
        for names in POWER_CLASSES.values():
            named.update(names)
        assert named == set(ATTACK_SCENARIOS)

    def test_application_layer_floods_are_high_power(self):
        assert "http-flood" in POWER_CLASSES["high"]
        assert "dns-flood" in POWER_CLASSES["high"]

    def test_volume_floods_are_low_power(self):
        for name in ("syn-flood", "udp-flood", "icmp-flood"):
            assert name in POWER_CLASSES["low"]

    def test_volume_scenarios_use_volume_type(self):
        for name in ("syn-flood", "udp-flood", "icmp-flood"):
            mix = ATTACK_SCENARIOS[name].mix
            assert mix.types == (VOLUME_DOS,)

    def test_volume_rates_exceed_app_layer_rates(self):
        # Network-layer floods achieve far higher packet rates.
        app = ATTACK_SCENARIOS["http-flood"].default_rate_rps
        vol = ATTACK_SCENARIOS["udp-flood"].default_rate_rps
        assert vol > 5 * app

    def test_build_returns_generator_matching_layer(self, engine, rng, registry):
        http = ATTACK_SCENARIOS["http-flood"].build(
            engine, lambda r: True, registry, rng
        )
        assert isinstance(http, ClosedLoopGenerator)
        syn = ATTACK_SCENARIOS["syn-flood"].build(
            engine, lambda r: True, registry, rng
        )
        assert isinstance(syn, TrafficGenerator)

    def test_build_rate_override(self, engine, rng, registry):
        gen = ATTACK_SCENARIOS["udp-flood"].build(
            engine, lambda r: True, registry, rng, rate_rps=123.0
        )
        assert gen.current_rate == pytest.approx(123.0)
