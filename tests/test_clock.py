"""Unit tests for the simulation clock."""

import pytest

from repro.sim import SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_custom_start(self):
        assert SimulationClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_is_ok(self):
        clock = SimulationClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_rejected(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.999)

    def test_advance_to_nan_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance_to(float("nan"))
