"""Unit tests for the flash-crowd generator and config serialisation."""

import json

import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    DataCenterSimulation,
    NullScheme,
    SimulationConfig,
)
from repro.workloads import TrafficClass, flash_sale_mix, make_flash_crowd


class TestFlashCrowd:
    def test_surge_is_tagged_normal(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1), scheme=NullScheme())
        gen = make_flash_crowd(
            sim.engine,
            sim.nlb.dispatch,
            sim.registry,
            sim.new_rng(),
            rate_rps=100.0,
            num_users=200,
            start_s=5.0,
            duration_s=20.0,
        )
        sim.run(40.0)
        records = sim.collector.filtered(traffic_class=TrafficClass.NORMAL)
        assert records, "the surge generated traffic"
        assert all(r.traffic_class is TrafficClass.NORMAL for r in records)

    def test_window_respected(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1), scheme=NullScheme())
        make_flash_crowd(
            sim.engine,
            sim.nlb.dispatch,
            sim.registry,
            sim.new_rng(),
            rate_rps=100.0,
            start_s=10.0,
            duration_s=10.0,
        )
        sim.run(40.0)
        arrivals = [r.arrival_time_s for r in sim.collector.records]
        assert min(arrivals) >= 10.0
        assert max(arrivals) <= 21.0

    def test_mix_is_heavy(self):
        mix = flash_sale_mix()
        names = {t.name for t in mix.types}
        assert names == {"colla-filt", "k-means", "word-count"}

    def test_many_distinct_sources_evade_nothing_needed(self):
        # A genuine crowd: per-source rate microscopic, firewall silent.
        sim = DataCenterSimulation(
            SimulationConfig(seed=1, firewall_threshold_rps=150.0),
            scheme=NullScheme(),
        )
        make_flash_crowd(
            sim.engine,
            sim.nlb.dispatch,
            sim.registry,
            sim.new_rng(),
            rate_rps=200.0,
            num_users=500,
            start_s=0.0,
            duration_s=30.0,
        )
        sim.run(40.0)
        assert sim.firewall.stats.bans == 0

    def test_anti_dope_throttles_the_crowd_too(self):
        """The false-positive cost: a legitimate heavy surge is routed
        to the suspect pool exactly like an attack."""
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=AntiDopeScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        make_flash_crowd(
            sim.engine,
            sim.nlb.dispatch,
            sim.registry,
            sim.new_rng(),
            rate_rps=200.0,
            num_users=500,
            start_s=10.0,
            duration_s=60.0,
        )
        sim.run(80.0)
        pdf = sim.scheme.pdf
        # The surge went to the suspect pool.
        assert pdf.suspect_forwarded > 1000

    def test_validation(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        with pytest.raises(ValueError):
            make_flash_crowd(
                sim.engine,
                sim.nlb.dispatch,
                sim.registry,
                sim.new_rng(),
                rate_rps=0.0,
            )


class TestConfigSerialisation:
    def test_roundtrip_default(self):
        cfg = SimulationConfig()
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_roundtrip_custom(self):
        cfg = SimulationConfig(
            budget_level=BudgetLevel.LOW,
            num_servers=8,
            queue_timeout_s=2.0,
            seed=42,
        )
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_compatible(self):
        payload = json.dumps(SimulationConfig().to_dict())
        cfg = SimulationConfig.from_dict(json.loads(payload))
        assert cfg == SimulationConfig()

    def test_budget_level_as_name(self):
        d = SimulationConfig(budget_level=BudgetLevel.MEDIUM).to_dict()
        assert d["budget_level"] == "MEDIUM"

    def test_unknown_keys_rejected(self):
        d = SimulationConfig().to_dict()
        d["bogus"] = 1
        with pytest.raises(ValueError, match="unknown config keys"):
            SimulationConfig.from_dict(d)

    def test_invalid_values_still_validated(self):
        d = SimulationConfig().to_dict()
        d["num_servers"] = 0
        with pytest.raises(ValueError):
            SimulationConfig.from_dict(d)
