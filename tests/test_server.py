"""Unit tests for the leaf-server queueing/power state machine."""

import pytest

from repro.cluster import Server
from repro.network import Request, RequestOutcome
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass


def make_request(rtype=TEXT_CONT, t=0.0, source=0):
    return Request(rtype, source, TrafficClass.NORMAL, t)


def noiseless(rtype):
    """A copy of *rtype* with deterministic service time."""
    from dataclasses import replace

    return replace(rtype, service_cv=0.0)


class TestSubmitAndServe:
    def test_completion_recorded(self, engine, server, collector):
        assert server.submit(make_request())
        engine.run()
        assert len(collector.records) == 1
        record = collector.records[0]
        assert record.outcome is RequestOutcome.COMPLETED
        assert record.response_time > 0

    def test_service_time_matches_model_when_noiseless(self, engine, server):
        rtype = noiseless(TEXT_CONT)
        done = []
        req = make_request(rtype)
        req.on_terminal = lambda r, o, t: done.append(t)
        server.submit(req)
        engine.run()
        assert done[0] == pytest.approx(rtype.base_service_s)

    def test_concurrent_requests_use_workers(self, engine, server):
        for i in range(server.num_workers):
            server.submit(make_request(source=i))
        assert server.busy_workers == server.num_workers
        assert server.queue_length == 0

    def test_excess_requests_queue(self, engine, server):
        for i in range(server.num_workers + 3):
            server.submit(make_request(source=i))
        assert server.busy_workers == server.num_workers
        assert server.queue_length == 3

    def test_queue_drains_fifo(self, engine, rng, collector):
        server = Server(0, engine, rng, completion_sink=collector.sink)
        rtype = noiseless(TEXT_CONT)
        reqs = [make_request(rtype, source=i) for i in range(12)]
        for r in reqs:
            server.submit(r)
        engine.run()
        finished = [rec.request_id for rec in collector.records]
        # First 8 start together; the queued 4 finish strictly after in
        # submission order.
        assert finished[8:] == [r.request_id for r in reqs[8:]]

    def test_queue_overflow_rejected(self, engine, rng):
        server = Server(0, engine, rng, queue_capacity=2)
        accepted = [server.submit(make_request(source=i)) for i in range(12)]
        # 8 workers + 2 queue slots = 10 accepted.
        assert accepted.count(True) == 10
        assert accepted.count(False) == 2
        assert server.rejected == 2


class TestDVFSRescaling:
    def test_throttle_stretches_inflight_request(self, engine, rng):
        server = Server(0, engine, rng)
        rtype = noiseless(COLLA_FILT)
        done = []
        req = make_request(rtype)
        req.on_terminal = lambda r, o, t: done.append(t)
        server.submit(req)
        # Halfway through, throttle to the bottom of the ladder.
        half = rtype.base_service_s / 2
        engine.schedule(half, lambda: server.set_level(0))
        engine.run()
        # Remaining half of the work runs at speedup(0.5).
        expected = half + half / rtype.speedup(0.5)
        assert done[0] == pytest.approx(expected, rel=1e-9)

    def test_speedup_shrinks_inflight_request(self, engine, rng):
        server = Server(0, engine, rng)
        server.set_level(0)
        rtype = noiseless(COLLA_FILT)
        done = []
        req = make_request(rtype)
        req.on_terminal = lambda r, o, t: done.append(t)
        server.submit(req)
        slow_total = rtype.base_service_s / rtype.speedup(0.5)
        engine.schedule(
            slow_total / 2, lambda: server.set_level(server.ladder.max_level)
        )
        engine.run()
        remaining_work = rtype.base_service_s / 2
        assert done[0] == pytest.approx(slow_total / 2 + remaining_work, rel=1e-9)

    def test_set_same_level_is_noop(self, engine, server):
        server.submit(make_request())
        before = server.level
        server.set_level(before)
        assert server.level == before

    def test_level_clamped(self, engine, server):
        server.set_level(-5)
        assert server.level == 0
        server.set_level(99)
        assert server.level == server.ladder.max_level

    def test_step_down_and_up(self, server):
        top = server.ladder.max_level
        server.step_down(3)
        assert server.level == top - 3
        server.step_up(1)
        assert server.level == top - 2


class TestPowerAccounting:
    def test_idle_power_when_empty(self, server):
        assert server.current_power() == pytest.approx(
            server.power_model.idle_power(1.0)
        )

    def test_power_rises_with_load(self, engine, server):
        idle = server.current_power()
        server.submit(make_request(COLLA_FILT))
        assert server.current_power() > idle

    def test_energy_integral_exact_for_idle_server(self, engine, rng):
        server = Server(0, engine, rng)
        engine.schedule(10.0, lambda: None)
        engine.run()
        expected = server.power_model.idle_power(1.0) * 10.0
        assert server.energy_joules() == pytest.approx(expected)

    def test_energy_accounts_for_busy_period(self, engine, rng):
        server = Server(0, engine, rng)
        rtype = noiseless(COLLA_FILT)
        server.submit(make_request(rtype))
        engine.schedule(10.0, lambda: None)
        engine.run()
        idle = server.power_model.idle_power(1.0)
        busy_extra = server.power_model.worker_power(rtype, 1.0)
        expected = idle * 10.0 + busy_extra * rtype.base_service_s
        assert server.energy_joules() == pytest.approx(expected, rel=1e-6)

    def test_busy_worker_seconds(self, engine, rng):
        server = Server(0, engine, rng)
        rtype = noiseless(TEXT_CONT)
        server.submit(make_request(rtype))
        server.submit(make_request(rtype, source=1))
        engine.run()
        assert server.busy_worker_seconds() == pytest.approx(
            2 * rtype.base_service_s
        )


class TestValidation:
    def test_negative_server_id_rejected(self, engine, rng):
        with pytest.raises(ValueError):
            Server(-1, engine, rng)

    def test_negative_queue_capacity_rejected(self, engine, rng):
        with pytest.raises(ValueError):
            Server(0, engine, rng, queue_capacity=-1)


class TestQueueTimeout:
    def test_stale_queued_requests_are_abandoned(self, engine, rng, collector):
        from repro.cluster import Server

        server = Server(
            0, engine, rng, completion_sink=collector.sink, queue_timeout_s=0.05
        )
        rtype = noiseless(COLLA_FILT)  # 150 ms service
        # Fill all workers, then queue more than can start within 50 ms.
        for i in range(server.num_workers + 4):
            server.submit(make_request(rtype, source=i))
        engine.run()
        outcomes = collector.outcome_counts()
        # Workers' own requests complete; queued ones wait >= 150 ms and
        # are abandoned when a worker frees up.
        assert outcomes[RequestOutcome.TIMED_OUT] == 4
        assert outcomes[RequestOutcome.COMPLETED] == server.num_workers
        assert server.timed_out == 4

    def test_fast_queue_is_unaffected(self, engine, rng, collector):
        from repro.cluster import Server

        server = Server(
            0, engine, rng, completion_sink=collector.sink, queue_timeout_s=10.0
        )
        for i in range(server.num_workers + 4):
            server.submit(make_request(noiseless(TEXT_CONT), source=i))
        engine.run()
        outcomes = collector.outcome_counts()
        assert outcomes[RequestOutcome.TIMED_OUT] == 0
        assert outcomes[RequestOutcome.COMPLETED] == server.num_workers + 4

    def test_on_terminal_fires_for_timeout(self, engine, rng):
        from repro.cluster import Server

        server = Server(0, engine, rng, queue_timeout_s=0.01)
        rtype = noiseless(COLLA_FILT)
        for i in range(server.num_workers):
            server.submit(make_request(rtype, source=i))
        seen = []
        victim = make_request(rtype, source=99)
        victim.on_terminal = lambda r, o, t: seen.append(o)
        server.submit(victim)
        engine.run()
        assert seen == [RequestOutcome.TIMED_OUT]

    def test_invalid_timeout_rejected(self, engine, rng):
        from repro.cluster import Server

        with pytest.raises(ValueError):
            Server(0, engine, rng, queue_timeout_s=0.0)
