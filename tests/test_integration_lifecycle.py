"""End-to-end lifecycle: profile online → deploy Anti-DOPE → survive DOPE.

The full operator story in one test module: a deployment that has never
seen the paper's offline profile learns its suspect list from live
telemetry during peacetime, deploys Anti-DOPE with the learned list,
and then withstands the same attack the offline-profiled deployment
withstands.
"""

import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    DataCenterSimulation,
    NullScheme,
    SimulationConfig,
)
from repro.core import OnlineUrlPowerProfiler
from repro.workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TrafficClass,
    uniform_mix,
)

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))


@pytest.fixture(scope="module")
def learned_suspect_list():
    """Peacetime telemetry profiling on an unmanaged deployment."""
    sim = DataCenterSimulation(
        SimulationConfig(seed=21, use_firewall=False), scheme=NullScheme()
    )
    profiler = OnlineUrlPowerProfiler(
        sim.engine, sim.rack, interval_s=0.5, min_samples=25
    )
    profiler.start()
    sim.add_normal_traffic(rate_rps=60)
    for t in ALL_TYPES:
        rate = 40.0 if t.base_service_s > 0.01 else 1500.0
        sim.add_flood(mix=t, rate_rps=rate, num_agents=5, label=f"canary-{t.name}")
    sim.run(100.0)
    return profiler.to_suspect_list(threshold_fraction=0.70)


def run_defended(suspect_list):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=22),
        scheme=AntiDopeScheme(suspect_list=suspect_list),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=ATTACK, rate_rps=300, num_agents=20, start_s=30)
    sim.run(180.0)
    return sim


class TestLearnedDefence:
    def test_learned_list_matches_paper_trio(self, learned_suspect_list):
        assert set(learned_suspect_list.suspect_urls) == {
            COLLA_FILT.url,
            K_MEANS.url,
            WORD_COUNT.url,
        }

    def test_learned_defence_caps_power(self, learned_suspect_list):
        sim = run_defended(learned_suspect_list)
        powers = sim.meter.powers()
        assert (powers > sim.budget.supply_w).mean() < 0.05

    def test_learned_defence_matches_offline_defence(self, learned_suspect_list):
        learned = run_defended(learned_suspect_list)
        offline = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=22),
            scheme=AntiDopeScheme(),  # analytic offline profile
        )
        offline.add_normal_traffic(rate_rps=40)
        offline.add_flood(mix=ATTACK, rate_rps=300, num_agents=20, start_s=30)
        offline.run(180.0)

        learned_stats = learned.latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        offline_stats = offline.latency_stats(
            traffic_class=TrafficClass.NORMAL, start_s=60.0
        )
        # Identical classification → identical defence (same seed).
        assert learned_stats.mean == pytest.approx(offline_stats.mean, rel=0.01)
        assert learned_stats.p90 == pytest.approx(offline_stats.p90, rel=0.01)

    def test_attack_confined_by_learned_list(self, learned_suspect_list):
        sim = run_defended(learned_suspect_list)
        suspect_id = sim.scheme.suspect_server_ids[0]
        attack_servers = {
            r.server_id
            for r in sim.collector.filtered(traffic_class=TrafficClass.ATTACK)
            if r.server_id is not None
        }
        assert attack_servers == {suspect_id}
