"""Tests for the DOPE-region analyzer (paper Fig. 11)."""

import pytest

from repro.analysis import DopeRegionAnalyzer, RegionCell
from repro.power import BudgetLevel
from repro.sim import SimulationConfig
from repro.workloads import COLLA_FILT, VOLUME_DOS


class TestRegionCell:
    def test_zone_classification(self):
        base = dict(
            type_name="x", rate_rps=1.0, num_agents=1,
            peak_power_w=0.0, budget_w=100.0,
        )
        assert RegionCell(**base, violated=True, detected=False).zone == "dope"
        assert RegionCell(**base, violated=True, detected=True).zone == "detected"
        assert RegionCell(**base, violated=False, detected=True).zone == "filtered"
        assert RegionCell(**base, violated=False, detected=False).zone == "benign"


@pytest.fixture(scope="module")
def analyzer():
    return DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.LOW, seed=5),
        window_s=40.0,
        num_agents=20,
        background_rate_rps=20.0,
    )


class TestProbe:
    def test_low_rate_heavy_traffic_is_benign(self, analyzer):
        cell = analyzer.probe(COLLA_FILT, rate_rps=20.0)
        assert cell.zone == "benign"

    def test_high_rate_heavy_traffic_is_dope(self, analyzer):
        # Spread over 20 agents, 400 rps of Colla-Filt violates the
        # Low-PB budget while every agent stays under 150 req/s.
        cell = analyzer.probe(COLLA_FILT, rate_rps=400.0)
        assert cell.violated
        assert not cell.detected
        assert cell.zone == "dope"

    def test_volume_flood_from_few_agents_is_filtered(self):
        analyzer = DopeRegionAnalyzer(
            config=SimulationConfig(budget_level=BudgetLevel.LOW, seed=5),
            window_s=40.0,
            num_agents=2,  # 2500 rps per agent >> 150 threshold
        )
        cell = analyzer.probe(VOLUME_DOS, rate_rps=5000.0)
        assert cell.detected
        assert not cell.violated


class TestSweep:
    def test_sweep_covers_grid(self, analyzer):
        result = analyzer.sweep([COLLA_FILT], [30.0, 400.0])
        assert len(result.cells) == 2
        assert result.zone_of("colla-filt", 30.0) == "benign"
        assert result.zone_of("colla-filt", 400.0) == "dope"

    def test_onset_rate(self, analyzer):
        result = analyzer.sweep([COLLA_FILT], [30.0, 400.0])
        assert result.dope_onset_rate("colla-filt") == 400.0

    def test_onset_none_when_never_dope(self, analyzer):
        result = analyzer.sweep([COLLA_FILT], [10.0])
        assert result.dope_onset_rate("colla-filt") is None

    def test_unknown_cell_raises(self, analyzer):
        result = analyzer.sweep([COLLA_FILT], [10.0])
        with pytest.raises(KeyError):
            result.zone_of("k-means", 10.0)

    def test_as_rows(self, analyzer):
        result = analyzer.sweep([COLLA_FILT], [10.0])
        rows = result.as_rows()
        assert len(rows) == 1
        assert rows[0][0] == "colla-filt"
