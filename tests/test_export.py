"""Unit tests for result export."""

import csv
import io
import json

import pytest

from repro import DataCenterSimulation, SimulationConfig
from repro.analysis.export import (
    collector_summary,
    meter_to_csv,
    records_to_csv,
    stats_to_json,
)
from repro.metrics import LatencyStats


@pytest.fixture(scope="module")
def sim():
    sim = DataCenterSimulation(SimulationConfig(seed=2))
    sim.add_normal_traffic(rate_rps=30)
    sim.run(20.0)
    return sim


class TestRecordsCSV:
    def test_roundtrip_row_count(self, sim, tmp_path):
        path = str(tmp_path / "records.csv")
        n = records_to_csv(sim.collector.records, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == n == len(sim.collector.records)

    def test_columns_and_values(self, sim):
        buf = io.StringIO()
        records_to_csv(sim.collector.records[:3], buf)
        buf.seek(0)
        rows = list(csv.DictReader(buf))
        assert set(rows[0]) == {
            "request_id",
            "type",
            "class",
            "outcome",
            "arrival_s",
            "finish_s",
            "response_ms",
            "server",
            "weight",
        }
        assert rows[0]["class"] == "normal"
        assert float(rows[0]["response_ms"]) > 0
        assert rows[0]["weight"] == "1"

    def test_aggregate_record_weight_column(self):
        from repro.network.request import CompletionRecord, RequestOutcome
        from repro.workloads import TrafficClass

        record = CompletionRecord.aggregate(
            37,
            "volume_dos",
            TrafficClass.ATTACK,
            RequestOutcome.DROPPED_FIREWALL,
            9.0,
        )
        buf = io.StringIO()
        records_to_csv([record], buf)
        buf.seek(0)
        row = next(csv.DictReader(buf))
        assert row["weight"] == "37"
        assert row["request_id"] == "-1"


class TestMeterCSV:
    def test_sample_export(self, sim):
        buf = io.StringIO()
        n = meter_to_csv(sim.meter, buf)
        buf.seek(0)
        rows = list(csv.DictReader(buf))
        assert len(rows) == n == len(sim.meter)
        assert float(rows[0]["power_w"]) > 0
        assert float(rows[-1]["battery_soc"]) == 1.0


class TestStatsJSON:
    def test_json_payload(self, sim, tmp_path):
        path = str(tmp_path / "stats.json")
        stats_to_json(
            {"normal": sim.latency_stats()},
            path,
            extra={"seed": 2, "scheme": "none"},
        )
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["meta"]["seed"] == 2
        assert payload["latency"]["normal"]["count"] > 0
        assert payload["latency"]["normal"]["mean_ms"] > 0

    def test_empty_stats_serialisable(self, tmp_path):
        buf = io.StringIO()
        stats_to_json({"empty": LatencyStats.from_times([])}, buf)
        text = buf.getvalue()
        # Regression: empty-window NaN moments must become JSON nulls,
        # never bare NaN tokens (which strict parsers reject).
        assert "NaN" not in text
        payload = json.loads(text)
        empty = payload["latency"]["empty"]
        assert empty["count"] == 0
        assert empty["mean_ms"] is None
        assert empty["p90_ms"] is None


class TestCollectorSummary:
    def test_summary_structure(self, sim):
        summary = collector_summary(sim.collector)
        assert summary["total"] == len(sim.collector)
        assert "normal" in summary["by_class"]
        normal = summary["by_class"]["normal"]
        assert normal["count"] > 0
        assert normal["outcomes"]["completed"] > 0
        assert normal["latency"]["mean_ms"] > 0

    def test_empty_collector(self):
        from repro.metrics import MetricsCollector

        summary = collector_summary(MetricsCollector())
        assert summary["total"] == 0
        assert summary["by_class"] == {}
