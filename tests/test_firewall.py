"""Unit tests for the DDoS-deflate-style rate-limit firewall."""

import pytest

from repro.network import NullFirewall, RateLimitFirewall


def make_firewall(threshold=10.0, poll=1.0, ban=60.0):
    return RateLimitFirewall(
        threshold_rps=threshold, poll_interval_s=poll, ban_duration_s=ban
    )


class TestAdmission:
    def test_admits_below_threshold(self, engine):
        fw = make_firewall()
        fw.attach(engine)
        for _ in range(5):
            assert fw.admit(source_id=1)
        engine.run(until=1.0)  # poll: 5 req over 1 s < 10 rps
        assert fw.admit(source_id=1)
        assert fw.stats.bans == 0

    def test_bans_source_above_threshold(self, engine):
        fw = make_firewall()
        fw.attach(engine)
        for _ in range(20):
            fw.admit(source_id=1)
        engine.run(until=1.0)  # poll sees 20 > 10
        assert fw.is_banned(1)
        assert not fw.admit(source_id=1)
        assert fw.stats.bans == 1

    def test_per_source_accounting(self, engine):
        # The DOPE evasion: the same aggregate spread over many agents
        # never trips the per-source threshold.
        fw = make_firewall()
        fw.attach(engine)
        for i in range(20):
            fw.admit(source_id=i)  # 1 request per source
        engine.run(until=1.0)
        assert fw.stats.bans == 0

    def test_initiating_delay_lets_early_traffic_through(self, engine):
        # Before the first poll, even a blatant flood is admitted —
        # Fig 10's early power spikes under firewall protection.
        fw = make_firewall(poll=10.0)
        fw.attach(engine)
        admitted = sum(fw.admit(source_id=1) for _ in range(1000))
        assert admitted == 1000

    def test_first_detection_time_recorded(self, engine):
        fw = make_firewall(poll=2.0)
        fw.attach(engine)
        for _ in range(100):
            fw.admit(1)
        engine.run(until=2.0)
        assert fw.stats.first_detection_time_s == pytest.approx(2.0)


class TestBanLifecycle:
    def test_ban_expires(self, engine):
        fw = make_firewall(ban=5.0)
        fw.attach(engine)
        for _ in range(50):
            fw.admit(1)
        engine.run(until=1.0)
        assert fw.is_banned(1)
        engine.run(until=6.5)
        assert not fw.is_banned(1)
        assert fw.admit(1)

    def test_banned_sources_set(self, engine):
        fw = make_firewall()
        fw.attach(engine)
        for _ in range(50):
            fw.admit(1)
            fw.admit(2)
        fw.admit(3)
        engine.run(until=1.0)
        assert fw.banned_sources() == {1, 2}

    def test_window_resets_each_poll(self, engine):
        fw = make_firewall(threshold=10.0, poll=1.0)
        fw.attach(engine)
        # 6 requests per poll window (offset from the poll instants) —
        # never above 10/s in any window.  Without the per-poll reset
        # the cumulative count would cross the threshold by t=2.
        stop = engine.every(
            1.0, lambda: [fw.admit(1) for _ in range(6)], start_delay_s=0.5
        )
        engine.run(until=10.0)
        stop()
        assert fw.stats.bans == 0

    def test_rejected_counter(self, engine):
        fw = make_firewall()
        fw.attach(engine)
        for _ in range(50):
            fw.admit(1)
        engine.run(until=1.0)
        fw.admit(1)
        fw.admit(1)
        assert fw.stats.rejected == 2


class TestAttachment:
    def test_double_attach_rejected(self, engine):
        fw = make_firewall()
        fw.attach(engine)
        with pytest.raises(RuntimeError):
            fw.attach(engine)

    def test_detach_stops_polling(self, engine):
        fw = make_firewall(poll=1.0)
        fw.attach(engine)
        fw.detach()
        for _ in range(100):
            fw.admit(1)
        engine.run(until=5.0)
        assert fw.stats.polls == 0
        assert fw.stats.bans == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimitFirewall(threshold_rps=0)
        with pytest.raises(ValueError):
            RateLimitFirewall(poll_interval_s=-1)


class TestNullFirewall:
    def test_admits_everything(self, engine):
        fw = NullFirewall()
        fw.attach(engine)
        for _ in range(10000):
            assert fw.admit(1)
        engine.run(until=100.0)
        assert fw.stats.bans == 0
        assert fw.stats.admitted == 10000


class TestHistoryBound:
    def test_banned_history_bounded_on_long_runs(self):
        """A multi-hour run of continuous bans holds the ban-event trace
        at ``history_cap`` entries while ``stats.bans`` stays exact."""
        fw = RateLimitFirewall(
            threshold_rps=1.0,
            poll_interval_s=1.0,
            ban_duration_s=0.5,
            history_cap=16,
        )
        for i in range(5000):
            t = float(i)
            fw._now = lambda now=t: now
            fw.admit(i, now=t)
            fw.admit(i, now=t)  # 2 req/s > threshold: banned at the poll
            fw.poll()
        assert fw.stats.bans == 5000
        assert len(fw.stats.banned_history) == 16
        # The retained events are the most recent ones.
        assert fw.stats.banned_history[-1][1] == 4999
        assert fw.stats.banned_history[0][1] == 4984

    def test_zero_cap_keeps_no_history(self):
        fw = RateLimitFirewall(
            threshold_rps=1.0, poll_interval_s=1.0, history_cap=0
        )
        fw.admit(1, now=0.0)
        fw.admit(1, now=0.0)
        fw.poll()
        assert fw.stats.bans == 1
        assert fw.stats.banned_history == []

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            RateLimitFirewall(history_cap=-1)
