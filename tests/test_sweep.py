"""Unit tests for sweep/replication utilities."""

import numpy as np
import pytest

from repro.analysis.sweep import GridSweep, MetricSummary, replicate


class TestReplicate:
    def test_mean_and_std(self):
        def experiment(seed):
            return {"value": float(seed)}

        out = replicate(experiment, seeds=[1, 2, 3])
        assert out["value"].mean == pytest.approx(2.0)
        assert out["value"].std == pytest.approx(1.0)
        assert out["value"].n == 3

    def test_confidence_interval_brackets_mean(self):
        rng = np.random.default_rng(0)
        data = {s: float(rng.normal(10.0, 2.0)) for s in range(30)}

        out = replicate(lambda s: {"x": data[s]}, seeds=list(range(30)))
        summary = out["x"]
        assert summary.ci_low < summary.mean < summary.ci_high
        # 95% z CI half-width = 1.96 * std / sqrt(n).
        assert summary.ci_half_width == pytest.approx(
            1.96 * summary.std / np.sqrt(30), rel=1e-3
        )

    def test_single_seed_has_zero_ci(self):
        out = replicate(lambda s: {"x": 5.0}, seeds=[0])
        assert out["x"].std == 0.0
        assert out["x"].ci_half_width == 0.0

    def test_deterministic_experiment_is_tight(self):
        out = replicate(lambda s: {"x": 7.0}, seeds=[1, 2, 3, 4])
        assert out["x"].std == 0.0

    def test_inconsistent_metrics_rejected(self):
        def experiment(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="metrics"):
            replicate(experiment, seeds=[0, 1])

    def test_unsupported_confidence_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[0, 1], confidence=0.5)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[])


class TestGridSweep:
    def test_points_cartesian_product(self):
        sweep = GridSweep({"a": [1, 2], "b": ["x", "y", "z"]})
        points = sweep.points()
        assert len(points) == 6
        assert len(sweep) == 6
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "z"} in points

    def test_run_attaches_metrics_to_params(self):
        sweep = GridSweep({"k": [2, 3]})

        def experiment(k, seed):
            return {"square": float(k * k + seed)}

        rows = sweep.run(experiment, seeds=[0, 2])
        assert len(rows) == 2
        by_k = {row["k"]: row for row in rows}
        assert by_k[2]["square"].mean == pytest.approx(5.0)  # (4+6)/2
        assert by_k[3]["square"].mean == pytest.approx(10.0)  # (9+11)/2
        assert isinstance(by_k[2]["square"], MetricSummary)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            GridSweep({"a": []})
        with pytest.raises(ValueError):
            GridSweep({})
