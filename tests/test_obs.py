"""The observability layer: counters, timers, manifests, the boundary.

The contract under test is the determinism boundary: counters are
deterministic output (same-seed runs agree exactly; the instrumented
hot path still exports byte-identical artifacts), while wall timings
are segregated and provably excluded from every deterministic hash.
"""

import json

import pytest

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    DataCenterSimulation,
    SimulationConfig,
)
from repro.obs import (
    Counters,
    Recorder,
    RunManifest,
    WallTimers,
    config_hash,
    deterministic_hash,
)
from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix


class FakeClock:
    """Scriptable monotonic clock for exact timer assertions."""

    def __init__(self):
        self.now_s = 0.0

    def __call__(self):
        return self.now_s

    def advance(self, dt_s):
        self.now_s += dt_s


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


def test_counters_inc_get_default():
    c = Counters()
    assert c.get("missing") == 0
    c.inc("a")
    c.inc("a", 2)
    c.inc("b", 0.5)
    assert c.get("a") == 3
    assert c.get("b") == 0.5
    assert len(c) == 2
    assert "a" in c and "missing" not in c


def test_counters_as_dict_is_name_sorted():
    c = Counters()
    c.inc("z")
    c.inc("a")
    c.inc("m")
    assert list(c.as_dict()) == ["a", "m", "z"]


def test_counters_merge_is_commutative():
    a, b = Counters(), Counters()
    a.inc("x", 2)
    a.inc("y", 1)
    b.inc("y", 3)
    b.inc("z", 5)
    ab, ba = Counters(), Counters()
    ab.merge(a)
    ab.merge(b)
    ba.merge(b)
    ba.merge(a)
    assert ab.as_dict() == ba.as_dict() == {"x": 2, "y": 4, "z": 5}


def test_counters_merge_accepts_plain_mapping_and_clear():
    c = Counters()
    c.merge({"a": 1, "b": 2})
    assert c.as_dict() == {"a": 1, "b": 2}
    c.clear()
    assert len(c) == 0


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------


def test_timers_phase_accumulates_exactly():
    clock = FakeClock()
    t = WallTimers(clock)
    with t.phase("p"):
        clock.advance(1.5)
    with t.phase("p"):
        clock.advance(0.25)
    assert t.total_s("p") == pytest.approx(1.75)
    assert t.count("p") == 2
    assert t.as_dict() == {"p": {"total_s": 1.75, "count": 2}}


def test_timers_phase_charges_time_even_when_block_raises():
    clock = FakeClock()
    t = WallTimers(clock)
    with pytest.raises(RuntimeError):
        with t.phase("p"):
            clock.advance(2.0)
            raise RuntimeError("boom")
    assert t.total_s("p") == pytest.approx(2.0)


def test_timers_negative_interval_clamped_to_zero():
    t = WallTimers(FakeClock())
    t.add("p", -3.0)
    assert t.total_s("p") == 0.0
    assert t.count("p") == 1


def test_timers_merge_folds_totals_and_counts():
    a = WallTimers(FakeClock())
    b = WallTimers(FakeClock())
    a.add("p", 1.0)
    b.add("p", 2.0)
    b.add("q", 0.5)
    a.merge(b)
    assert a.as_dict() == {
        "p": {"total_s": 3.0, "count": 2},
        "q": {"total_s": 0.5, "count": 1},
    }


def test_timers_unknown_name_defaults_and_clear():
    t = WallTimers(FakeClock())
    assert t.total_s("never") == 0.0
    assert t.count("never") == 0
    t.add("p", 1.0)
    t.clear()
    assert len(t) == 0


def test_recorder_snapshot_keeps_tables_separate():
    clock = FakeClock()
    rec = Recorder(timer_clock=clock)
    rec.counters.inc("events", 7)
    with rec.timers.phase("run"):
        clock.advance(0.5)
    snap = rec.snapshot()
    assert snap["counters"] == {"events": 7}
    assert snap["timings_s"] == {"run": {"total_s": 0.5, "count": 1}}


# ----------------------------------------------------------------------
# Manifests and hashes
# ----------------------------------------------------------------------


def _manifest(**overrides):
    kwargs = dict(
        name="t",
        seed=3,
        config_hash=config_hash({"k": 1}),
        counters={"engine.events_dispatched": 10},
        timings_s={"engine.run": {"total_s": 0.123, "count": 1}},
    )
    kwargs.update(overrides)
    return RunManifest(**kwargs)


def test_manifest_round_trips_through_json():
    m = _manifest()
    back = RunManifest.from_json(m.to_json())
    assert back == m
    assert back.deterministic_hash() == m.deterministic_hash()


def test_manifest_rejects_tampered_hash():
    doc = json.loads(_manifest().to_json())
    doc["counters"]["engine.events_dispatched"] = 999
    with pytest.raises(ValueError, match="deterministic_hash mismatch"):
        RunManifest.from_dict(doc)


def test_manifest_hash_excludes_wall_timings():
    fast = _manifest(timings_s={"engine.run": {"total_s": 0.01, "count": 1}})
    slow = _manifest(timings_s={"engine.run": {"total_s": 9.99, "count": 4}})
    assert fast.deterministic_hash() == slow.deterministic_hash()
    assert fast.to_dict() != slow.to_dict()


def test_manifest_hash_covers_counters_and_identity():
    base = _manifest()
    assert _manifest(counters={"x": 1}).deterministic_hash() != base.deterministic_hash()
    assert _manifest(seed=4).deterministic_hash() != base.deterministic_hash()
    assert _manifest(name="u").deterministic_hash() != base.deterministic_hash()


def test_manifest_requires_non_negative_int_seed():
    with pytest.raises(ValueError):
        _manifest(seed=-1)
    with pytest.raises(TypeError):
        _manifest(seed=1.5)


def test_deterministic_hash_is_key_order_independent():
    assert deterministic_hash({"a": 1, "b": 2}) == deterministic_hash(
        {"b": 2, "a": 1}
    )
    assert deterministic_hash({"a": 1}) != deterministic_hash({"a": 2})


# ----------------------------------------------------------------------
# End to end: instrumented simulations stay deterministic
# ----------------------------------------------------------------------


def _instrumented_run(seed):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=AntiDopeScheme(),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS)),
        rate_rps=200,
        num_agents=10,
        start_s=10,
    )
    sim.run(45.0)
    return sim


def test_same_seed_runs_produce_identical_counters():
    a = _instrumented_run(seed=9)
    b = _instrumented_run(seed=9)
    counters = a.obs.counters.as_dict()
    assert counters == b.obs.counters.as_dict()
    # The instrumentation actually observed the hot path.
    assert counters["engine.events_dispatched"] > 0
    assert counters["network.nlb_forwarded"] > 0
    assert counters["network.pdf_suspect_forwarded"] > 0
    assert counters["power.control_slots"] == 45
    assert counters["cluster.power_model_evals"] > 0


def test_same_seed_run_manifests_share_deterministic_hash():
    a = _instrumented_run(seed=9).run_manifest("x")
    b = _instrumented_run(seed=9).run_manifest("x")
    assert a.deterministic_hash() == b.deterministic_hash()
    # Wall timings are real and (almost surely) differ — and must not
    # be able to perturb the hash either way.
    assert a.timings_s["engine.run"]["total_s"] > 0.0


def test_different_seed_counters_diverge():
    a = _instrumented_run(seed=9)
    b = _instrumented_run(seed=10)
    assert a.obs.counters.as_dict() != b.obs.counters.as_dict()
