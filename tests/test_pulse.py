"""Unit tests for the pulse (duty-cycled) DOPE attacker."""

import numpy as np
import pytest

from repro import BudgetLevel, DataCenterSimulation, NullScheme, SimulationConfig
from repro.network import SourceRegistry
from repro.workloads import TrafficClass
from repro.workloads.pulse import PulseAttacker


@pytest.fixture
def sim():
    return DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=4), scheme=NullScheme()
    )


def make_pulse(sim, **kwargs):
    kwargs.setdefault("rate_rps", 200.0)
    kwargs.setdefault("period_s", 20.0)
    kwargs.setdefault("duty", 0.5)
    return PulseAttacker(
        sim.engine, sim.nlb.dispatch, sim.registry, sim.new_rng(), **kwargs
    )


class TestPulsing:
    def test_square_wave_transitions(self, sim):
        attacker = make_pulse(sim)
        attacker.start()
        sim.run(65.0)
        kinds = [k for _, k in attacker.stats.transitions]
        assert kinds[:6] == ["on", "off", "on", "off", "on", "off"]
        times = [t for t, _ in attacker.stats.transitions]
        gaps = np.diff(times)
        np.testing.assert_allclose(gaps, 10.0, atol=0.01)

    def test_traffic_only_during_on_phase(self, sim):
        attacker = make_pulse(sim, period_s=20.0, duty=0.5)
        attacker.start()
        sim.run(60.0)
        arrivals = [
            r.arrival_time_s
            for r in sim.collector.filtered(traffic_class=TrafficClass.ATTACK)
        ]
        # Arrivals fall inside on-windows [0,10), [20,30), [40,50)
        # (plus terminal drain just past each boundary).
        for t in arrivals:
            phase = t % 20.0
            assert phase < 10.5, f"arrival at {t} outside on-phase"

    def test_mean_rate_is_duty_scaled(self, sim):
        attacker = make_pulse(sim, rate_rps=200.0, duty=0.3)
        assert attacker.mean_rate_rps == pytest.approx(60.0)

    def test_power_oscillates_with_pulses(self, sim):
        attacker = make_pulse(sim, rate_rps=250.0, period_s=30.0, duty=0.5)
        attacker.start()
        sim.run(120.0)
        powers = sim.meter.powers()
        # High during on-phases, near idle during off-phases.
        assert powers.max() > 320.0
        assert powers.min() < 200.0
        swing = powers.max() - powers.min()
        assert swing > 100.0

    def test_stop_ends_attack(self, sim):
        attacker = make_pulse(sim)
        attacker.start()
        sim.run(15.0)
        attacker.stop()
        n = attacker.generator.generated
        sim.run(60.0)
        assert attacker.generator.generated == n

    def test_restart_rejected_while_running(self, sim):
        attacker = make_pulse(sim)
        attacker.start()
        with pytest.raises(RuntimeError):
            attacker.start()

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            make_pulse(sim, duty=0.0)
        with pytest.raises(ValueError):
            make_pulse(sim, duty=1.0)
        with pytest.raises(ValueError):
            make_pulse(sim, period_s=0.0)


class TestBatteryRatchet:
    def test_pulses_ratchet_shaving_battery_down(self):
        """A duty cycle denser than the recharge rate walks the SoC
        down pulse by pulse — the battery-targeting extension."""
        from repro import ShavingScheme

        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=4),
            scheme=ShavingScheme(),
        )
        sim.add_normal_traffic(rate_rps=30)
        attacker = PulseAttacker(
            sim.engine,
            sim.nlb.dispatch,
            sim.registry,
            sim.new_rng(),
            rate_rps=300.0,
            period_s=60.0,
            duty=0.7,
        )
        attacker.start(10.0)
        sim.run(400.0)
        socs = sim.meter.socs()
        # Multiple discharge cycles happened and the envelope decays.
        assert sim.battery.discharge_cycles >= 3
        assert socs[-1] < 0.6
