"""Unit tests for the DVFS frequency ladder."""

import pytest

from repro.cluster import PAPER_FREQUENCIES_GHZ, FrequencyLadder


class TestPaperLadder:
    def test_paper_ladder_has_13_levels(self, ladder):
        assert ladder.num_levels == 13

    def test_paper_ladder_bounds(self, ladder):
        assert ladder.f_min == pytest.approx(1.2)
        assert ladder.f_max == pytest.approx(2.4)

    def test_paper_ladder_step_is_100mhz(self, ladder):
        freqs = ladder.frequencies_ghz
        steps = [round(b - a, 6) for a, b in zip(freqs, freqs[1:])]
        assert all(s == pytest.approx(0.1) for s in steps)

    def test_module_constant_matches(self, ladder):
        assert ladder.frequencies_ghz == PAPER_FREQUENCIES_GHZ


class TestRatios:
    def test_max_level_ratio_is_one(self, ladder):
        assert ladder.ratio(ladder.max_level) == pytest.approx(1.0)

    def test_min_level_ratio(self, ladder):
        assert ladder.ratio(0) == pytest.approx(0.5)

    def test_ratios_are_increasing(self, ladder):
        ratios = ladder.ratios()
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_frequency_lookup(self, ladder):
        assert ladder.frequency(0) == pytest.approx(1.2)
        assert ladder.frequency(6) == pytest.approx(1.8)


class TestStepping:
    def test_step_down_saturates_at_zero(self, ladder):
        assert ladder.step_down(0) == 0
        assert ladder.step_down(1, steps=5) == 0

    def test_step_up_saturates_at_max(self, ladder):
        assert ladder.step_up(ladder.max_level) == ladder.max_level
        assert ladder.step_up(11, steps=5) == ladder.max_level

    def test_step_amounts(self, ladder):
        assert ladder.step_down(5, steps=2) == 3
        assert ladder.step_up(5, steps=3) == 8

    def test_clamp(self, ladder):
        assert ladder.clamp(-3) == 0
        assert ladder.clamp(100) == ladder.max_level
        assert ladder.clamp(7) == 7


class TestValidation:
    def test_level_out_of_range_rejected(self, ladder):
        with pytest.raises(ValueError):
            ladder.ratio(13)
        with pytest.raises(ValueError):
            ladder.frequency(-1)

    def test_non_increasing_frequencies_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLadder([2.0, 1.0])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLadder([1.0, 1.0, 2.0])

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            FrequencyLadder([])

    def test_custom_ladder(self):
        ladder = FrequencyLadder([1.0, 2.0, 4.0])
        assert ladder.num_levels == 3
        assert ladder.ratio(0) == pytest.approx(0.25)
