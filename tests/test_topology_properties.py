"""Property-based tests (hypothesis) on the topology + fabric layers.

Three contracts the topology PR rests on:

* **Flowlet conservation** — every request handed to the fabric exits
  on exactly one path: the chosen backend is one of the offered
  servers and the per-rack ``fabric.forwarded.rackN`` counters sum to
  exactly the number of selects, for any flow/timing pattern.
* **ECMP hash determinism** — path choice is a pure function of
  (salt, flow, flowlet, path-space): same inputs, same path, always in
  range.  This is what makes tree runs byte-identical across engines
  and worker processes.
* **Per-level power bit-identity** — a node's power reading is the
  left-to-right Python sum over its leaf slice, bitwise equal to
  summing those leaf servers by hand, for arbitrary float magnitudes.
  (Bitwise, not approx: per-level readings feed deterministic-hash
  regression gates.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PowerTopology, TopologySpec
from repro.network import FlowletEcmpFabric, ecmp_path
from repro.obs import Recorder


class _FakeServer:
    def __init__(self, server_id: int) -> None:
        self.server_id = server_id


class _FakeRequest:
    def __init__(self, source_id: int, arrival_time_s: float) -> None:
        self.source_id = source_id
        self.arrival_time_s = arrival_time_s


class _StubRack:
    """Stands in for Rack where only per_server_power() is consumed."""

    def __init__(self, powers_w) -> None:
        self._powers_w = list(powers_w)

    def per_server_power(self):
        return list(self._powers_w)


# ----------------------------------------------------------------------
# Flowlet conservation
# ----------------------------------------------------------------------

_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # flow id
        st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
        ),  # inter-arrival gap
    ),
    min_size=1,
    max_size=200,
)


class TestFlowletConservation:
    @settings(max_examples=50, deadline=None)
    @given(requests=_requests, gap_on=st.booleans())
    def test_every_request_exits_on_exactly_one_path(self, requests, gap_on):
        obs = Recorder()
        fabric = FlowletEcmpFabric(
            num_racks=4,
            servers_per_rack=4,
            flowlet_gap_s=0.05 if gap_on else None,
            salt=7,
            obs=obs,
        )
        servers = [_FakeServer(i) for i in range(16)]
        now_s = 0.0
        for flow_id, gap_s in requests:
            now_s += gap_s
            chosen = fabric.select(_FakeRequest(flow_id, now_s), servers)
            assert chosen in servers  # exactly one backend, from the offer
        counters = obs.counters.as_dict()
        forwarded = sum(
            value
            for name, value in counters.items()
            if name.startswith("fabric.forwarded.rack")
        )
        assert forwarded == len(requests)
        # Flows seen equals distinct source ids, regardless of timing.
        assert counters.get("fabric.flows") == len(
            {flow_id for flow_id, _ in requests}
        )

    @settings(max_examples=50, deadline=None)
    @given(requests=_requests)
    def test_pinned_flows_never_change_rack(self, requests):
        fabric = FlowletEcmpFabric(
            num_racks=4, servers_per_rack=4, flowlet_gap_s=None, salt=3
        )
        servers = [_FakeServer(i) for i in range(16)]
        rack_of_flow = {}
        now_s = 0.0
        for flow_id, gap_s in requests:
            now_s += gap_s
            chosen = fabric.select(_FakeRequest(flow_id, now_s), servers)
            rack = chosen.server_id // 4
            assert rack_of_flow.setdefault(flow_id, rack) == rack


# ----------------------------------------------------------------------
# ECMP hash determinism
# ----------------------------------------------------------------------

_u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestEcmpDeterminism:
    @settings(max_examples=200, deadline=None)
    @given(
        salt=_u64,
        flow_id=_u64,
        flowlet_id=st.integers(min_value=0, max_value=1 << 32),
        num_paths=st.integers(min_value=1, max_value=1024),
    )
    def test_path_is_a_pure_in_range_function(
        self, salt, flow_id, flowlet_id, num_paths
    ):
        path = ecmp_path(salt, flow_id, flowlet_id, num_paths)
        assert path == ecmp_path(salt, flow_id, flowlet_id, num_paths)
        assert 0 <= path < num_paths

    @settings(max_examples=50, deadline=None)
    @given(salt=st.integers(min_value=0, max_value=1 << 32))
    def test_fresh_fabrics_with_the_same_salt_agree(self, salt):
        # Two fabric instances (e.g. two worker processes) must route
        # identically — no per-instance or per-process hash state.
        a = FlowletEcmpFabric(
            num_racks=4, servers_per_rack=2, flowlet_gap_s=None, salt=salt
        )
        b = FlowletEcmpFabric(
            num_racks=4, servers_per_rack=2, flowlet_gap_s=None, salt=salt
        )
        servers = [_FakeServer(i) for i in range(8)]
        for flow_id in range(30):
            request = _FakeRequest(flow_id, 0.0)
            assert (
                a.select(request, servers).server_id
                == b.select(request, servers).server_id
            )


# ----------------------------------------------------------------------
# Per-level power bit-identity
# ----------------------------------------------------------------------

_powers = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=16,
    max_size=16,
)


class TestPerLevelPowerIdentity:
    @settings(max_examples=100, deadline=None)
    @given(powers_w=_powers)
    def test_node_power_is_bitwise_leaf_sum(self, powers_w):
        topology = PowerTopology(
            TopologySpec(
                name="prop-tree", rows=2, racks_per_row=2, servers_per_rack=4
            ),
            server_nameplate_w=100.0,
            budget_fraction=0.8,
        )
        rack = _StubRack(powers_w)
        per_node = topology.per_node_power(rack)
        for name, node in topology.nodes.items():
            expected = 0.0
            for value in powers_w[node.start : node.stop]:
                expected += value
            assert per_node[name] == expected  # bitwise
            assert topology.node_power_w(name, rack) == expected
        # The feed covers every leaf in the same order as the flat
        # rack total: one reduction order everywhere.
        full_sum = 0.0
        for value in powers_w:
            full_sum += value
        assert per_node["feed"] == full_sum
