"""Unit tests for the empirical CDF helper."""

import numpy as np
import pytest

from repro.analysis import EmpiricalCDF


class TestEvaluation:
    def test_step_function_values(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0
        assert cdf.evaluate(99.0) == 1.0

    def test_vectorised_evaluation(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        out = cdf.evaluate(np.array([0.0, 1.5, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_quantile_inverts(self):
        data = np.linspace(0, 1, 101)
        cdf = EmpiricalCDF(data)
        assert cdf.quantile(0.5) == pytest.approx(0.5)
        assert cdf.median() == pytest.approx(0.5)

    def test_steps_for_plotting(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        x, y = cdf.steps()
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(y, [1 / 3, 2 / 3, 1.0])


class TestNormalization:
    def test_normalized_divides_by_reference(self):
        cdf = EmpiricalCDF([50.0, 100.0]).normalized(100.0)
        np.testing.assert_allclose(cdf.values, [0.5, 1.0])

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).normalized(0.0)


class TestSpread:
    def test_subvertical_cdf_has_small_spread(self):
        # The paper's Colla-Filt power CDF is "sub-vertical": nearly all
        # mass at one value.
        tight = EmpiricalCDF([0.99, 1.0, 1.0, 1.0, 1.01])
        wide = EmpiricalCDF([0.2, 0.4, 0.6, 0.8, 1.0])
        assert tight.spread() < 0.1 * wide.spread()

    def test_spread_bounds_validated(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0]).spread(0.9, 0.1)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, float("nan")])

    def test_n_property(self):
        assert EmpiricalCDF([1, 2, 3]).n == 3
