"""Byte-identical reproducibility of same-seed simulation runs.

The static-analysis suite (REP001) bans unseeded randomness and
wall-clock reads precisely so that this holds: two simulations built
from the same :class:`SimulationConfig` seed must produce *identical*
exported artifacts, byte for byte — not merely statistically similar
ones.  This is the regression test that backs that guarantee.
"""

import io

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    SimulationConfig,
)
from repro.analysis.export import meter_to_csv, records_to_csv
from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS))


def run_and_export(seed, scheme_factory=CappingScheme, duration_s=90.0):
    """Run one attack scenario and serialise everything observable."""
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=scheme_factory(),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=ATTACK, rate_rps=200, num_agents=10, start_s=15)
    sim.run(duration_s)

    records = io.StringIO()
    records_to_csv(sim.collector.records, records)
    meter = io.StringIO()
    meter_to_csv(sim.meter, meter)
    return records.getvalue().encode() + b"\x00" + meter.getvalue().encode()


def test_same_seed_runs_are_byte_identical():
    assert run_and_export(seed=11) == run_and_export(seed=11)


def test_same_seed_byte_identical_with_battery_scheme():
    a = run_and_export(seed=5, scheme_factory=AntiDopeScheme)
    b = run_and_export(seed=5, scheme_factory=AntiDopeScheme)
    assert a == b


def test_different_seeds_diverge():
    # A sanity guard on the test itself: if the export ignored the
    # stochastic state entirely, the identity checks above would be
    # vacuous.
    assert run_and_export(seed=11) != run_and_export(seed=12)
