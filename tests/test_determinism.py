"""Byte-identical reproducibility of same-seed simulation runs.

The static-analysis suite (REP001) bans unseeded randomness and
wall-clock reads precisely so that this holds: two simulations built
from the same :class:`SimulationConfig` seed must produce *identical*
exported artifacts, byte for byte — not merely statistically similar
ones.  This is the regression test that backs that guarantee.
"""

import csv
import io
import json

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    CappingScheme,
    DataCenterSimulation,
    OnlineDetectScheme,
    SimulationConfig,
)
from repro.analysis import DopeRegionAnalyzer, GridSweep
from repro.analysis.export import detector_summary, meter_to_csv, records_to_csv
from repro.faults import run_chaos, validate_chaos_payload
from repro.obs import Recorder
from repro.workloads import COLLA_FILT, K_MEANS, TEXT_CONT, get_type, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS))


def run_and_export(seed, scheme_factory=CappingScheme, duration_s=90.0):
    """Run one attack scenario and serialise everything observable."""
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=scheme_factory(),
    )
    sim.add_normal_traffic(rate_rps=40)
    sim.add_flood(mix=ATTACK, rate_rps=200, num_agents=10, start_s=15)
    sim.run(duration_s)

    records = io.StringIO()
    records_to_csv(sim.collector.records, records)
    meter = io.StringIO()
    meter_to_csv(sim.meter, meter)
    return records.getvalue().encode() + b"\x00" + meter.getvalue().encode()


def test_same_seed_runs_are_byte_identical():
    assert run_and_export(seed=11) == run_and_export(seed=11)


def test_same_seed_byte_identical_with_battery_scheme():
    a = run_and_export(seed=5, scheme_factory=AntiDopeScheme)
    b = run_and_export(seed=5, scheme_factory=AntiDopeScheme)
    assert a == b


def test_different_seeds_diverge():
    # A sanity guard on the test itself: if the export ignored the
    # stochastic state entirely, the identity checks above would be
    # vacuous.
    assert run_and_export(seed=11) != run_and_export(seed=12)


# ----------------------------------------------------------------------
# Parallel execution must not perturb a single byte of any export.
# ----------------------------------------------------------------------

# The Fig 11 region-grid axes, shortened (window and rate count) so the
# equivalence check runs the grid twice inside a unit-test budget.
REGION_TYPES = (COLLA_FILT, K_MEANS, TEXT_CONT)
REGION_RATES = (60.0, 250.0)
REGION_SEED = 5


def region_probe(type_name, rate_rps, seed):
    """One Fig 11 cell as a GridSweep experiment (picklable)."""
    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=seed),
        window_s=20.0,
        num_agents=20,
    )
    cell = analyzer.probe(get_type(type_name), rate_rps)
    return {
        "peak_power_w": cell.peak_power_w,
        "violated": float(cell.violated),
        "detected": float(cell.detected),
    }


def grid_rows_to_csv_bytes(rows) -> bytes:
    """Exported CSV of sweep rows, full-precision (repr) floats."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    for row in rows:
        flat = []
        for key in sorted(row):
            value = row[key]
            if hasattr(value, "mean"):  # MetricSummary
                flat.extend(
                    [key, repr(value.mean), repr(value.std), value.n]
                )
            else:
                flat.extend([key, repr(value)])
        writer.writerow(flat)
    return buf.getvalue().encode()


def test_grid_sweep_parallel_rows_byte_identical_to_serial():
    """GridSweep over the Fig 11 grid: workers=4 == workers=1, byte-wise.

    The runner's observation counters must obey the same equivalence:
    cells/executed/retries/errors tallies are deterministic output, so
    fanning out over 4 processes may not change a single count (wall
    timings, by design, may and do differ).
    """
    sweep = GridSweep(
        {
            "type_name": [t.name for t in REGION_TYPES],
            "rate_rps": list(REGION_RATES),
        }
    )
    rec_serial = Recorder()
    rec_parallel = Recorder()
    serial = sweep.run(
        region_probe, seeds=(REGION_SEED,), workers=1, recorder=rec_serial
    )
    parallel = sweep.run(
        region_probe, seeds=(REGION_SEED,), workers=4, recorder=rec_parallel
    )
    assert grid_rows_to_csv_bytes(parallel) == grid_rows_to_csv_bytes(serial)
    assert rec_parallel.counters.as_dict() == rec_serial.counters.as_dict()
    assert rec_serial.counters.get("runner.cells_total") == len(REGION_TYPES) * len(
        REGION_RATES
    )


def test_region_sweep_parallel_cells_byte_identical_to_serial():
    """DopeRegionAnalyzer.sweep: merged parallel output == serial output."""
    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=REGION_SEED),
        window_s=20.0,
        num_agents=20,
    )
    serial = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=1)
    parallel = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=4)
    assert repr(parallel.as_rows()) == repr(serial.as_rows())
    assert [c.zone for c in parallel.cells] == [c.zone for c in serial.cells]


def test_online_detect_region_sweep_parallel_byte_identical_to_serial():
    """The detector-armed fig11 sweep is worker-count invariant too.

    OnlineDetect adds per-slot scoring and a dynamic suspect set to
    every probe; none of it may read anything a process boundary could
    perturb, so the flagged/zone columns must survive a 4-way fan-out
    byte-for-byte.
    """
    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=REGION_SEED),
        window_s=20.0,
        num_agents=20,
        scheme="online-detect",
    )
    serial = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=1)
    parallel = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=4)
    assert repr(parallel.as_rows()) == repr(serial.as_rows())
    assert [c.detector_flagged for c in parallel.cells] == [
        c.detector_flagged for c in serial.cells
    ]


def test_online_detect_scalar_batched_byte_identical():
    """OnlineDetect under the batched engine == scalar, byte for byte.

    The detector taps arrivals inside the forwarding policy and scores
    on control-slot boundaries; both paths must be execution-mode
    invariant, like every other scheme.
    """

    def run(mode):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=7),
            scheme=OnlineDetectScheme(),
            engine_mode=mode,
        )
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(mix=ATTACK, rate_rps=200, num_agents=10, start_s=15)
        sim.run(60.0)
        records = io.StringIO()
        records_to_csv(sim.collector.records, records)
        meter = io.StringIO()
        meter_to_csv(sim.meter, meter)
        report = json.dumps(
            detector_summary(sim.scheme), sort_keys=True, allow_nan=False
        )
        return (
            records.getvalue().encode()
            + b"\x00"
            + meter.getvalue().encode()
            + b"\x00"
            + report.encode()
        )

    assert run("scalar") == run("batched")


def test_prediction_region_sweep_parallel_byte_identical_to_serial():
    """The prediction-armed fig11 sweep is worker-count invariant too.

    The predictor adds a per-slot quantile/floor update and an
    admission-filter refill retune to every probe; none of it may read
    anything a process boundary could perturb, so the zone columns must
    survive a 4-way fan-out byte-for-byte.
    """
    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=REGION_SEED),
        window_s=20.0,
        num_agents=20,
        scheme="prediction",
    )
    serial = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=1)
    parallel = analyzer.sweep(REGION_TYPES, REGION_RATES, workers=4)
    assert repr(parallel.as_rows()) == repr(serial.as_rows())
    assert [c.zone for c in parallel.cells] == [c.zone for c in serial.cells]


def test_prediction_scalar_batched_byte_identical():
    """Prediction under the batched engine == scalar, byte for byte.

    The predictor observes measured power on control-slot boundaries
    and retunes the admission filter's refill rate mid-run; both paths
    must be execution-mode invariant, like every other scheme — down to
    the JSON-serialised predictor report.
    """
    from repro import PredictionScheme

    def run(mode):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=7),
            scheme=PredictionScheme(),
            engine_mode=mode,
        )
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(mix=ATTACK, rate_rps=200, num_agents=10, start_s=15)
        sim.run(60.0)
        records = io.StringIO()
        records_to_csv(sim.collector.records, records)
        meter = io.StringIO()
        meter_to_csv(sim.meter, meter)
        report = json.dumps(
            detector_summary(sim.scheme), sort_keys=True, allow_nan=False
        )
        return (
            records.getvalue().encode()
            + b"\x00"
            + meter.getvalue().encode()
            + b"\x00"
            + report.encode()
        )

    assert run("scalar") == run("batched")


def test_chaos_parallel_cells_byte_identical_to_serial():
    """run_chaos: the faulted scheme matrix is worker-count invariant.

    Fault schedules, injected-fault tallies, and fault-vs-policy drop
    attribution are deterministic output, so the whole payload — and the
    merged runner counters — must be byte-identical between a serial run
    and a 4-process fan-out.
    """
    rec_serial = Recorder()
    rec_parallel = Recorder()
    serial = run_chaos(mode="smoke", seed=5, workers=1, recorder=rec_serial)
    parallel = run_chaos(mode="smoke", seed=5, workers=4, recorder=rec_parallel)
    dump = lambda payload: json.dumps(  # noqa: E731
        payload, sort_keys=True, allow_nan=False
    ).encode()
    assert dump(parallel) == dump(serial)
    assert rec_parallel.counters.as_dict() == rec_serial.counters.as_dict()
    assert validate_chaos_payload(serial) == []
    cell = serial["cells"][0]
    assert cell["faults_injected"]["server_crash"] >= 1
