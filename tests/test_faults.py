"""Unit tests for the fault-injection & graceful-degradation layer."""

import json

import numpy as np
import pytest

from repro import DataCenterSimulation, SimulationConfig
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    chaos_cell,
    validate_chaos_payload,
)
from repro.metrics import availability
from repro.network import (
    FAULT_OUTCOMES,
    NetworkLoadBalancer,
    Request,
    RequestOutcome,
    RetryPolicy,
)
from repro.power import Battery, BudgetLevel, PowerBudget
from repro.power.manager import NullScheme
from repro.power.sensor import FaultyPowerSensor, TruePowerSensor
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass, uniform_mix


def make_request(i=0, rtype=TEXT_CONT, cls=TrafficClass.NORMAL, t=0.0):
    return Request(rtype, i, cls, t)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_builders_chain_and_append(self):
        plan = (
            FaultPlan(seed=3)
            .server_crash(10.0, 1, 5.0)
            .meter_noise(20.0, sigma_w=4.0, bias_w=1.0)
            .pdu_trip(30.0, 2.0)
            .battery_fade(40.0, 0.5)
        )
        assert len(plan) == 4
        assert [e.kind for e in plan.events] == [
            FaultKind.SERVER_CRASH,
            FaultKind.METER_NOISE,
            FaultKind.PDU_TRIP,
            FaultKind.BATTERY_FADE,
        ]

    def test_signature_is_canonical_and_deterministic(self):
        a = FaultPlan(seed=1).server_crash(5.0, 0, 2.0)
        b = FaultPlan(seed=1).server_crash(5.0, 0, 2.0)
        assert a.signature() == b.signature()
        assert json.loads(a.signature())["seed"] == 1

    def test_from_hazard_same_seed_identical(self):
        kwargs = dict(
            duration_s=600.0,
            num_servers=4,
            crash_rate_hz=1.0 / 60.0,
            meter_fault_rate_hz=1.0 / 120.0,
        )
        a = FaultPlan.from_hazard(9, **kwargs)
        b = FaultPlan.from_hazard(9, **kwargs)
        assert a.signature() == b.signature()
        assert len(a) > 0

    def test_from_hazard_seeds_diverge(self):
        a = FaultPlan.from_hazard(1, duration_s=600.0, num_servers=4)
        b = FaultPlan.from_hazard(2, duration_s=600.0, num_servers=4)
        assert a.signature() != b.signature()

    def test_hazard_targets_in_range(self):
        plan = FaultPlan.from_hazard(
            4, duration_s=2000.0, num_servers=3, crash_rate_hz=1.0 / 50.0
        )
        for event in plan.events:
            assert 0 <= event.target < 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0).server_crash(-1.0, 0, 5.0)
        with pytest.raises(ValueError):
            FaultPlan(seed=0).meter_dropout(0.0, 0.0)
        with pytest.raises(ValueError):
            FaultPlan(seed=0).battery_fade(0.0, 1.5)


# ----------------------------------------------------------------------
# Server crash / recover
# ----------------------------------------------------------------------


class TestServerCrash:
    def test_fail_sheds_in_flight_as_fault_outcomes(self, rack, collector):
        server = rack.servers[0]
        for i in range(3):
            assert server.submit(make_request(i, rtype=COLLA_FILT))
        assert server.in_system == 3
        server.fail()
        assert server.failed and not server.healthy
        assert server.in_system == 0
        outcomes = [r.outcome for r in collector.records]
        assert outcomes == [RequestOutcome.FAILED_SERVER] * 3
        assert all(o in FAULT_OUTCOMES for o in outcomes)

    def test_fail_routes_queue_through_shed_sink(self, rack, collector):
        server = rack.servers[0]
        # More requests than workers: the excess sits in the queue.
        for i in range(server.num_workers + 4):
            server.submit(make_request(i, rtype=COLLA_FILT))
        shed = []
        server.fail(shed_sink=shed.append)
        # Queued requests go to the sink; in-service ones are lost.
        assert len(shed) == 4
        assert len(collector.records) == server.num_workers

    def test_failed_server_draws_no_power_and_rejects(self, rack):
        server = rack.servers[0]
        idle_w = server.current_power()
        assert idle_w > 0
        server.fail()
        assert server.current_power() == 0.0
        assert not server.submit(make_request())

    def test_recover_restores_service(self, rack):
        server = rack.servers[0]
        server.fail()
        server.recover()
        assert server.healthy
        assert server.submit(make_request())
        assert server.crashes == 1

    def test_rack_health_views(self, rack):
        rack.servers[1].fail()
        assert rack.num_healthy == 3
        assert rack.servers[1] not in rack.healthy_servers()


# ----------------------------------------------------------------------
# NLB degradation: healthy rotation, retry, no-backend drops
# ----------------------------------------------------------------------


def make_nlb(engine, rack, collector, **kwargs):
    return NetworkLoadBalancer(
        servers=rack.servers,
        drop_sink=collector.sink,
        now=lambda: engine.now,
        **kwargs,
    )


class TestNLBDegradation:
    def test_crashed_server_skipped_in_rotation(self, engine, rack, collector):
        nlb = make_nlb(engine, rack, collector)
        rack.servers[0].fail()
        for i in range(6):
            assert nlb.dispatch(make_request(i))
        assert rack.servers[0].in_system == 0
        assert sum(s.in_system for s in rack.servers[1:]) == 6

    def test_no_backend_without_retry_is_fault_drop(
        self, engine, rack, collector
    ):
        nlb = make_nlb(engine, rack, collector)
        for server in rack.servers:
            server.fail()
        assert not nlb.dispatch(make_request())
        record = collector.records[-1]
        assert record.outcome is RequestOutcome.DROPPED_NO_BACKEND
        assert record.outcome in FAULT_OUTCOMES

    def test_retry_succeeds_after_recovery(self, engine, rack, collector):
        nlb = make_nlb(
            engine,
            rack,
            collector,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.5),
            scheduler=engine.schedule,
        )
        for server in rack.servers:
            server.fail()
        assert not nlb.dispatch(make_request())  # deferred, not dropped
        engine.schedule(0.3, rack.servers[2].recover)
        engine.run(until=5.0)
        assert nlb.forwarded == 1
        assert rack.servers[2].in_system >= 0  # reached the queue
        assert not any(
            r.outcome is RequestOutcome.DROPPED_NO_BACKEND
            for r in collector.records
        )

    def test_retries_exhausted_drops_no_backend(self, engine, rack, collector):
        nlb = make_nlb(
            engine,
            rack,
            collector,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.25),
            scheduler=engine.schedule,
        )
        for server in rack.servers:
            server.fail()
        nlb.dispatch(make_request())
        engine.run(until=10.0)
        assert nlb.dropped == 1
        assert collector.records[-1].outcome is RequestOutcome.DROPPED_NO_BACKEND

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.5)
        delays = [policy.delay_for(k) for k in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_terminal_fires_for_no_backend_drop(self, engine, rack, collector):
        nlb = make_nlb(engine, rack, collector)
        for server in rack.servers:
            server.fail()
        seen = []
        request = make_request()
        request.on_terminal = lambda r, outcome, t: seen.append(outcome)
        nlb.dispatch(request)
        assert seen == [RequestOutcome.DROPPED_NO_BACKEND]


# ----------------------------------------------------------------------
# Power sensing: faults and the bounded-staleness fallback
# ----------------------------------------------------------------------


class TestPowerSensor:
    def test_true_sensor_reports_rack_power(self, rack):
        sensor = TruePowerSensor(rack)
        reading = sensor.read(1.0)
        assert reading.ok
        assert reading.power_w == rack.total_power()

    def test_unfaulted_sensor_is_exact(self, rack):
        sensor = FaultyPowerSensor(rack, rng=np.random.default_rng(0))
        assert sensor.read(0.0).power_w == rack.total_power()
        assert sensor.faulted_reads == 0

    def test_dropout_marks_reading_not_ok(self, rack):
        sensor = FaultyPowerSensor(rack)
        sensor.start_dropout(0.0, 5.0)
        assert not sensor.read(2.0).ok
        assert sensor.read(6.0).ok  # window over

    def test_stale_freezes_the_start_reading(self, rack):
        sensor = FaultyPowerSensor(rack)
        sensor.start_stale(1.0, 10.0)
        frozen = sensor.read(5.0)
        assert frozen.ok and frozen.time_s == 1.0
        rack.servers[0].set_level(0)  # change the truth
        again = sensor.read(8.0)
        assert again.power_w == frozen.power_w

    def test_noise_is_seed_deterministic(self, rack):
        a = FaultyPowerSensor(rack, rng=np.random.default_rng(7))
        b = FaultyPowerSensor(rack, rng=np.random.default_rng(7))
        a.set_noise(sigma_w=5.0, bias_w=2.0)
        b.set_noise(sigma_w=5.0, bias_w=2.0)
        assert [a.read(t).power_w for t in range(5)] == [
            b.read(t).power_w for t in range(5)
        ]

    def test_scheme_falls_back_then_assumes_worst_case(self, engine, rack):
        scheme = NullScheme()
        scheme.bind(engine, rack, PowerBudget(320.0), None, 1.0)
        sensor = FaultyPowerSensor(rack, rng=np.random.default_rng(0))
        scheme.attach_power_sensor(sensor, staleness_bound_s=5.0)
        observed = []

        def observe():
            observed.append((engine.now, scheme.current_power()))

        engine.schedule_at(0.0, observe)  # good read: last-known-good set
        engine.schedule_at(
            0.5, lambda: sensor.start_dropout(engine.now, 30.0)
        )
        engine.schedule_at(3.0, observe)  # within bound: last-known-good
        engine.schedule_at(9.0, observe)  # beyond bound: worst case
        engine.run(until=10.0)

        truth_w = rack.total_power()
        assert observed[0] == (0.0, truth_w)
        assert observed[1] == (3.0, truth_w)  # stale fallback
        assert observed[2] == (9.0, rack.nameplate_w)  # worst case
        counters = engine.obs.counters
        assert counters.get("power.sensor_stale_fallbacks") == 1
        assert counters.get("power.sensor_worst_case_fallbacks") == 1


# ----------------------------------------------------------------------
# Battery degradation
# ----------------------------------------------------------------------


class TestBatteryDegradation:
    def test_capacity_fade_clamps_soc(self):
        battery = Battery(capacity_j=1000.0, max_discharge_w=100.0, max_charge_w=50.0)
        battery.apply_capacity_fade(0.4)
        assert battery.capacity_j == pytest.approx(400.0)
        assert battery.soc_j == pytest.approx(400.0)
        assert battery.soc_fraction == pytest.approx(1.0)

    def test_stuck_battery_refuses_flows(self):
        battery = Battery(
            capacity_j=1000.0,
            max_discharge_w=100.0,
            max_charge_w=50.0,
            initial_soc=0.5,
        )
        battery.set_stuck(True)
        assert battery.discharge(50.0, 1.0) == 0.0
        assert battery.charge(50.0, 1.0) == 0.0
        assert battery.soc_j == pytest.approx(500.0)
        battery.set_stuck(False)
        assert battery.discharge(50.0, 1.0) == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Injector end-to-end
# ----------------------------------------------------------------------


def faulted_sim(seed=3, plan=None):
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=NullScheme(),
    )
    if plan is None:
        plan = (
            FaultPlan(seed=seed)
            .server_crash(5.0, 1, 4.0)
            .meter_noise(2.0, sigma_w=5.0)
            .meter_dropout(12.0, 3.0)
        )
    injector = FaultInjector(sim, plan)
    injector.arm()
    sim.add_normal_traffic(rate_rps=60.0)
    return sim, injector


class TestFaultInjector:
    def test_events_fire_and_server_recovers(self):
        sim, injector = faulted_sim()
        sim.run(20.0)
        assert injector.injected == {
            "server_crash": 1,
            "meter_noise": 1,
            "meter_dropout": 1,
        }
        assert sim.rack.servers[1].crashes == 1
        assert sim.rack.servers[1].healthy  # recovered at t=9
        counters = sim.obs.counters
        assert counters.get("faults.injected.server_crash") == 1
        assert counters.get("cluster.server_failures") == 1
        assert counters.get("cluster.server_recoveries") == 1

    def test_crash_losses_attributed_as_fault_drops(self):
        sim, _ = faulted_sim()
        # Saturate the rack with heavy requests so the crash at t=5 s
        # catches some of them in service (those are lost to the fault).
        sim.add_flood(
            mix=uniform_mix((COLLA_FILT,)),
            rate_rps=150.0,
            num_agents=8,
            start_s=0.0,
        )
        sim.run(20.0)
        report = availability(sim.collector.records, sla_s=0.5)
        attribution = sim.collector.drop_attribution()
        assert report.dropped_fault == attribution["dropped_fault"]
        assert report.dropped_policy == attribution["dropped_policy"]
        assert report.dropped == report.dropped_fault + report.dropped_policy
        # The crash happened while requests were in service.
        assert attribution["dropped_fault"] > 0

    def test_pdu_trip_fails_whole_rack_then_restores(self):
        plan = FaultPlan(seed=0).pdu_trip(5.0, 3.0)
        sim, injector = faulted_sim(plan=plan)
        probes = []
        sim.engine.schedule_at(
            6.0, lambda: probes.append(sim.rack.num_healthy)
        )
        sim.engine.schedule_at(
            10.0, lambda: probes.append(sim.rack.num_healthy)
        )
        sim.run(12.0)
        assert probes == [0, 4]
        assert injector.injected == {"pdu_trip": 1}

    def test_arm_twice_rejected(self):
        sim, injector = faulted_sim()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_same_seed_faulted_runs_identical(self):
        def signature():
            sim, _ = faulted_sim(seed=11)
            sim.run(20.0)
            manifest = sim.run_manifest()
            return manifest.deterministic_hash()

        assert signature() == signature()


# ----------------------------------------------------------------------
# Chaos cells and payload schema
# ----------------------------------------------------------------------


class TestChaos:
    def test_chaos_cell_deterministic_and_attributed(self):
        kwargs = dict(
            scheme="capping",
            seed=2,
            budget="LOW",
            num_servers=4,
            duration_s=40.0,
        )
        a = chaos_cell(**kwargs)
        b = chaos_cell(**kwargs)
        assert a == b
        assert a["dropped"] == a["dropped_policy"] + a["dropped_fault"]
        assert a["faults_injected"]["server_crash"] == 1
        assert json.loads(a["fault_plan_signature"])["seed"] == 2
        # Strict JSON: NaN latencies must have become nulls.
        json.dumps(a, allow_nan=False)

    def test_validate_chaos_payload_rejects_bad_attribution(self):
        cell = chaos_cell(
            scheme="capping", seed=2, duration_s=40.0, num_servers=4
        )
        payload = {
            "schema": "repro-chaos/1",
            "name": "t",
            "mode": "smoke",
            "version": "0",
            "seed": 2,
            "config_hash": "x",
            "scenario": {},
            "cells": [dict(cell)],
            "counters": {},
        }
        assert validate_chaos_payload(payload) == []
        payload["cells"][0]["dropped_fault"] = (
            payload["cells"][0]["dropped_fault"] + 1
        )
        problems = validate_chaos_payload(payload)
        assert any("does not add up" in p for p in problems)

    def test_validate_chaos_payload_requires_schema(self):
        assert validate_chaos_payload([]) != []
        assert any(
            "schema" in p
            for p in validate_chaos_payload(
                {
                    "schema": "wrong/9",
                    "name": "t",
                    "mode": "smoke",
                    "version": "0",
                    "seed": 0,
                    "config_hash": "x",
                    "scenario": {},
                    "cells": [],
                    "counters": {},
                }
            )
        )
