"""Property tests for the aggregate-flow engine (Hypothesis).

Where ``test_batched_equivalence.py`` pins a fixed scheme × scenario ×
seed matrix, this suite searches the input space for counterexamples to
the three invariants the batched refactor rests on:

* **conservation** — no engine mode loses or invents requests: every
  generated request is either finished (in a completion record), still
  in the system, or was dropped with an attributed cause;
* **cohort sanity** — cohort bookkeeping never goes negative, and an
  aggregate completion record cannot be built from a non-positive
  count;
* **power-path equality** — the vectorised power evaluation produces
  the *same IEEE float64* as the scalar ``power_from_counts`` loop for
  arbitrary worker counts and DVFS levels (exact ``==``, no tolerance:
  bit-identity is the contract that lets the rack switch paths freely).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataCenterSimulation, SimulationConfig
from repro.cluster.dvfs import FrequencyLadder
from repro.cluster.power_model import PowerEvalTable, ServerPowerModel
from repro.network.request import CompletionRecord, RequestOutcome
from repro.obs.contract import EXECUTION_COUNTER_NAMES
from repro.power import BudgetLevel
from repro.sim.engine import EventEngine
from repro.workloads import ALL_TYPES, VOLUME_DOS, TrafficClass, uniform_mix

# ----------------------------------------------------------------------
# Conservation + scalar/batched agreement on random scenarios
# ----------------------------------------------------------------------


def _run_open_loop(seed, rate_rps, num_agents, mode, fluid=False):
    cfg = SimulationConfig(
        budget_level=BudgetLevel.LOW, seed=seed, firewall_poll_s=2.0
    )
    engine = EventEngine(mode=mode, fluid=fluid)
    sim = DataCenterSimulation(cfg, engine=engine)
    sim.add_normal_traffic(rate_rps=25.0)
    sim.add_flood(
        mix=VOLUME_DOS,
        rate_rps=rate_rps,
        num_agents=num_agents,
        closed_loop=False,
        poisson=True,
        label="prop-flood",
    )
    sim.run(8.0)
    return sim


def _assert_conserved(sim):
    generated = sum(g.generated for g in sim.generators)
    report = sim.availability_report(traffic_class=None)
    assert report.offered + sim.rack.total_in_system() == generated
    assert (
        report.served_within_sla + report.served_late + report.dropped
        == report.offered
    )
    assert 0 <= report.dropped_fault <= report.dropped


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    rate_rps=st.floats(min_value=10.0, max_value=900.0),
    num_agents=st.integers(min_value=1, max_value=12),
)
def test_conservation_and_batched_agreement(seed, rate_rps, num_agents):
    scalar = _run_open_loop(seed, rate_rps, num_agents, mode="scalar")
    batched = _run_open_loop(seed, rate_rps, num_agents, mode="batched")
    _assert_conserved(scalar)
    _assert_conserved(batched)

    def model_counters(sim):
        return {
            name: value
            for name, value in sim.obs.counters.as_dict().items()
            if name not in EXECUTION_COUNTER_NAMES
        }

    assert model_counters(scalar) == model_counters(batched)

    # Cohort bookkeeping never goes negative, and every cohort holds at
    # least one request.
    cohorts = batched.obs.counters.get("engine.cohorts_dispatched")
    members = batched.obs.counters.get("engine.cohort_requests")
    assert 0 <= cohorts <= members


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_fluid_conservation(seed):
    sim = _run_open_loop(seed, 3000.0, 4, mode="batched", fluid=True)
    _assert_conserved(sim)
    assert sim.obs.counters.get("engine.fluid_time_advanced_s") >= 0.0


# ----------------------------------------------------------------------
# Aggregate record construction
# ----------------------------------------------------------------------


@given(count=st.integers(min_value=1, max_value=10**9))
def test_aggregate_record_carries_its_count(count):
    record = CompletionRecord.aggregate(
        count,
        "volume_dos",
        TrafficClass.ATTACK,
        RequestOutcome.DROPPED_FIREWALL,
        12.5,
    )
    assert record.weight == count
    assert record.request_id == -1


@given(count=st.integers(max_value=0))
def test_aggregate_record_rejects_nonpositive_counts(count):
    with pytest.raises(ValueError):
        CompletionRecord.aggregate(
            count,
            "volume_dos",
            TrafficClass.ATTACK,
            RequestOutcome.DROPPED_FIREWALL,
            12.5,
        )


# ----------------------------------------------------------------------
# Scalar vs vectorised power evaluation: exact float equality
# ----------------------------------------------------------------------


def _fresh_table():
    model = ServerPowerModel()
    ladder = FrequencyLadder()
    table = PowerEvalTable(model, ladder)
    for rtype in ALL_TYPES:
        table.slot_of(rtype)
    return model, ladder, table


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_power_from_counts_matches_vector_evaluation_exactly(data):
    model, ladder, table = _fresh_table()
    num_slots = len(table.registry)
    level = data.draw(
        st.integers(min_value=0, max_value=ladder.max_level), label="level"
    )
    counts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=64),
            min_size=num_slots,
            max_size=num_slots,
        ),
        label="counts",
    )

    scalar = model.power_from_counts(
        counts, table.factor_row(level), table.idle_power_at(level)
    )

    # The rack's vectorised accumulation for one server: slot-ordered
    # count*factor terms over the dense matrix, then idle + per-worker
    # scaling — must be the *same float*, not merely close.
    factor_matrix = table.factor_matrix()
    dyn = np.zeros(1)
    counts_arr = np.asarray(counts, dtype=float).reshape(1, num_slots)
    levels = np.asarray([level], dtype=np.intp)
    for i in range(num_slots):
        dyn += counts_arr[:, i] * factor_matrix[i, levels]
    vector = float(table.idle_array()[levels][0] + model._per_worker * dyn[0])
    assert vector == scalar


def test_rack_vector_power_matches_scalar_sum_after_traffic():
    """End-to-end: a populated 20-server rack agrees path for path."""
    cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=11, num_servers=20)
    engine = EventEngine(mode="batched")
    sim = DataCenterSimulation(cfg, engine=engine)
    sim.add_normal_traffic(rate_rps=80.0, mix=uniform_mix(ALL_TYPES))
    sim.run(6.0)
    rack = sim.rack
    scalar_total = sum(s.current_power() for s in rack.servers)
    assert rack.total_power_vector() == scalar_total
    # And the dispatching wrapper picks the vector path at this size.
    assert rack.total_power() == scalar_total
