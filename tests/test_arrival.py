"""Unit tests for arrival-process models."""

import math

import numpy as np
import pytest

from repro.trace import (
    ConstantRateProcess,
    MMPPProcess,
    ModulatedPoissonProcess,
    PoissonProcess,
)


def mean_gap(process, rng, n=20000, t0=0.0):
    t = t0
    gaps = []
    for _ in range(n):
        g = process.next_interarrival(rng, t)
        gaps.append(g)
        t += g
    return float(np.mean(gaps))


class TestPoisson:
    def test_mean_rate_matches(self, rng):
        proc = PoissonProcess(50.0)
        assert 1.0 / mean_gap(proc, rng) == pytest.approx(50.0, rel=0.05)

    def test_zero_rate_never_arrives(self, rng):
        assert math.isinf(PoissonProcess(0.0).next_interarrival(rng, 0.0))

    def test_mean_rate_property(self):
        assert PoissonProcess(7.0).mean_rate() == 7.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(-1.0)


class TestConstantRate:
    def test_deterministic_without_jitter(self, rng):
        proc = ConstantRateProcess(10.0)
        gaps = {proc.next_interarrival(rng, 0.0) for _ in range(10)}
        assert gaps == {0.1}

    def test_jitter_bounds(self, rng):
        proc = ConstantRateProcess(10.0, jitter=0.2)
        for _ in range(1000):
            gap = proc.next_interarrival(rng, 0.0)
            assert 0.08 <= gap <= 0.12

    def test_jitter_must_be_below_one(self):
        with pytest.raises(ValueError):
            ConstantRateProcess(10.0, jitter=1.0)

    def test_zero_rate(self, rng):
        assert math.isinf(ConstantRateProcess(0.0).next_interarrival(rng, 0.0))


class TestModulatedPoisson:
    def test_constant_envelope_matches_poisson(self, rng):
        proc = ModulatedPoissonProcess(lambda t: 20.0, rate_max=20.0)
        assert 1.0 / mean_gap(proc, rng, n=10000) == pytest.approx(20.0, rel=0.05)

    def test_thinning_halves_rate(self, rng):
        proc = ModulatedPoissonProcess(lambda t: 10.0, rate_max=20.0)
        assert 1.0 / mean_gap(proc, rng, n=10000) == pytest.approx(10.0, rel=0.05)

    def test_time_varying_rate(self, rng):
        # Rate 40 in the first 10 s, 5 afterwards: arrivals concentrate
        # early.
        proc = ModulatedPoissonProcess(
            lambda t: 40.0 if t < 10 else 5.0, rate_max=40.0
        )
        t, early = 0.0, 0
        for _ in range(300):
            t += proc.next_interarrival(rng, t)
            if t < 10:
                early += 1
        assert early > 150

    def test_envelope_violation_detected(self, rng):
        proc = ModulatedPoissonProcess(lambda t: 100.0, rate_max=20.0)
        with pytest.raises(ValueError, match="exceeds rate_max"):
            proc.next_interarrival(rng, 0.0)

    def test_negative_rate_detected(self, rng):
        proc = ModulatedPoissonProcess(lambda t: -1.0, rate_max=20.0)
        with pytest.raises(ValueError, match="negative"):
            proc.next_interarrival(rng, 0.0)

    def test_horizon_ends_process(self, rng):
        proc = ModulatedPoissonProcess(lambda t: 100.0, rate_max=100.0, horizon=1.0)
        t = 0.0
        while True:
            gap = proc.next_interarrival(rng, t)
            if math.isinf(gap):
                break
            t += gap
        assert t <= 1.0


class TestMMPP:
    def test_mean_rate_formula(self):
        proc = MMPPProcess(10.0, 100.0, mean_low_duration_s=9.0, mean_high_duration_s=1.0)
        assert proc.mean_rate() == pytest.approx(19.0)

    def test_long_run_rate_near_mean(self, rng):
        proc = MMPPProcess(10.0, 100.0, mean_low_duration_s=1.0, mean_high_duration_s=1.0)
        measured = 1.0 / mean_gap(proc, rng, n=30000)
        assert measured == pytest.approx(proc.mean_rate(), rel=0.15)

    def test_burstiness_exceeds_poisson(self, rng):
        # Squared CV of inter-arrivals > 1 for an MMPP with distinct rates.
        proc = MMPPProcess(5.0, 200.0, mean_low_duration_s=2.0, mean_high_duration_s=2.0)
        t, gaps = 0.0, []
        for _ in range(20000):
            g = proc.next_interarrival(rng, t)
            gaps.append(g)
            t += g
        gaps = np.array(gaps)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_rate_ordering_enforced(self):
        with pytest.raises(ValueError):
            MMPPProcess(100.0, 10.0, 1.0, 1.0)
