"""Unit tests for the metrics collector."""

import numpy as np
import pytest

from repro.metrics import MetricsCollector
from repro.network import Request, RequestOutcome
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass


def record(collector, rtype, cls, outcome, t0, t1):
    req = Request(rtype, 0, cls, t0)
    collector.sink(req, outcome, t1)


@pytest.fixture
def populated(collector):
    record(collector, TEXT_CONT, TrafficClass.NORMAL, RequestOutcome.COMPLETED, 0.0, 0.1)
    record(collector, TEXT_CONT, TrafficClass.NORMAL, RequestOutcome.COMPLETED, 5.0, 5.3)
    record(collector, COLLA_FILT, TrafficClass.ATTACK, RequestOutcome.COMPLETED, 5.0, 6.0)
    record(
        collector, COLLA_FILT, TrafficClass.NORMAL,
        RequestOutcome.DROPPED_QUEUE_FULL, 6.0, 6.0,
    )
    record(
        collector, TEXT_CONT, TrafficClass.ATTACK,
        RequestOutcome.DROPPED_FIREWALL, 8.0, 8.0,
    )
    return collector


class TestFiltering:
    def test_by_traffic_class(self, populated):
        normal = populated.filtered(traffic_class=TrafficClass.NORMAL)
        assert len(normal) == 3

    def test_by_type(self, populated):
        assert len(populated.filtered(type_name="colla-filt")) == 2

    def test_by_outcome(self, populated):
        drops = populated.filtered(outcome=RequestOutcome.DROPPED_FIREWALL)
        assert len(drops) == 1

    def test_completed_only(self, populated):
        assert len(populated.filtered(completed_only=True)) == 3

    def test_time_window_uses_arrival_time(self, populated):
        # The request arriving at 5.0 but finishing at 6.0 belongs to
        # the [4, 5.5) window.
        window = populated.filtered(start_s=4.0, end_s=5.5)
        assert len(window) == 2

    def test_combined_filters(self, populated):
        out = populated.filtered(
            traffic_class=TrafficClass.NORMAL,
            type_name="text-cont",
            completed_only=True,
        )
        assert len(out) == 2


class TestResponseTimes:
    def test_only_completed_counted(self, populated):
        times = populated.response_times(traffic_class=TrafficClass.NORMAL)
        np.testing.assert_allclose(sorted(times), [0.1, 0.3])

    def test_empty_selection_gives_empty_array(self, populated):
        times = populated.response_times(type_name="k-means")
        assert times.size == 0


class TestCounting:
    def test_outcome_counts(self, populated):
        counts = populated.outcome_counts()
        assert counts[RequestOutcome.COMPLETED] == 3
        assert counts[RequestOutcome.DROPPED_QUEUE_FULL] == 1
        assert counts[RequestOutcome.DROPPED_FIREWALL] == 1
        assert counts[RequestOutcome.TIMED_OUT] == 0

    def test_total_by_class(self, populated):
        assert populated.total() == 5
        assert populated.total(TrafficClass.ATTACK) == 2

    def test_clear(self, populated):
        populated.clear()
        assert len(populated) == 0
