"""scripts/bench_compare.py — the CI bench regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import BENCH_SCHEMA_ID

_SCRIPT = Path(__file__).parent.parent / "scripts" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(value=1000.0, mode="smoke", metric="events_per_wall_s"):
    return {
        "schema": BENCH_SCHEMA_ID,
        "name": "t",
        "mode": mode,
        "version": "1.2.0",
        "seed": 7,
        "config_hash": "ab" * 32,
        "headline": {"metric": metric, "value": value},
        "counters": {"engine.events_dispatched": 10},
        "timings_s": {"engine.run": {"total_s": 0.01, "count": 1}},
        "derived": {
            "events_per_wall_s": value,
            "sim_time_per_wall_s": 50.0,
            "runner_cache_hit_rate": 0.5,
            metric: value,
        },
        "phases": [],
    }


def test_within_threshold_passes(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(850.0))
    assert failures == []


def test_25_percent_regression_fails(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(750.0))
    assert len(failures) == 1
    assert "regression" in failures[0]
    assert "25.0%" in failures[0]


def test_exactly_at_floor_passes_and_faster_is_fine(bench_compare):
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(800.0)) == []
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(5000.0)) == []


def test_custom_threshold(bench_compare):
    base, fresh = _payload(1000.0), _payload(900.0)
    assert bench_compare.compare_payloads(base, fresh, threshold=0.05) != []
    assert bench_compare.compare_payloads(base, fresh, threshold=0.15) == []
    with pytest.raises(ValueError, match="threshold"):
        bench_compare.compare_payloads(base, fresh, threshold=1.5)


def test_mode_and_metric_mismatch_fail(bench_compare):
    assert bench_compare.compare_payloads(
        _payload(mode="full"), _payload(mode="smoke")
    )
    assert bench_compare.compare_payloads(
        _payload(metric="sim_time_per_wall_s"), _payload()
    )


def test_nonpositive_baseline_fails(bench_compare):
    assert bench_compare.compare_payloads(_payload(0.0), _payload(10.0))


def test_load_payload_reports_bad_inputs(bench_compare, tmp_path):
    missing = tmp_path / "nope.json"
    _, errors = bench_compare.load_payload(missing)
    assert errors and "no such file" in errors[0]

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    _, errors = bench_compare.load_payload(garbled)
    assert errors and "invalid JSON" in errors[0]

    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"schema": "wrong"}))
    _, errors = bench_compare.load_payload(invalid)
    assert errors


def test_engine_mismatch_fails_only_when_both_declare(bench_compare):
    base, fresh = _payload(1000.0), _payload(900.0)
    base["engine"], fresh["engine"] = "fluid", "scalar"
    failures = bench_compare.compare_payloads(base, fresh)
    assert any("engine mismatch" in f for f in failures)
    # Pre-refactor payloads carry no engine key: no failure.
    del base["engine"]
    assert bench_compare.compare_payloads(base, fresh) == []


def test_absolute_floor_enforces_min_speedup(bench_compare):
    floor = bench_compare.DEFAULT_FLOOR
    assert floor == pytest.approx(
        bench_compare.LEGACY_HEADLINE_EVENTS_PER_WALL_S
        * bench_compare.MIN_SPEEDUP
    )
    base = _payload(floor * 2.5)
    # Within threshold of baseline but below the absolute floor: fail.
    failures = bench_compare.compare_payloads(
        base, _payload(floor * 0.9), threshold=0.99, floor=floor
    )
    assert any("speedup floor" in f for f in failures)
    # At/above the floor: pass.
    assert (
        bench_compare.compare_payloads(
            base, _payload(floor * 2.2), floor=floor
        )
        == []
    )
    # floor=0 disables the check entirely.
    assert (
        bench_compare.compare_payloads(
            base, _payload(floor * 2.2), floor=0.0
        )
        == []
    )


def test_main_exit_codes(bench_compare, tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_payload(1000.0)))
    fresh.write_text(json.dumps(_payload(750.0)))
    assert bench_compare.main([str(base), str(fresh), "--floor", "0"]) == 1
    assert (
        bench_compare.main(
            [str(base), str(fresh), "--threshold", "0.30", "--floor", "0"]
        )
        == 0
    )
    # The default floor (10x the per-request headline) rejects a fresh
    # payload that only matches the pre-refactor engine's throughput.
    big = tmp_path / "big.json"
    big.write_text(json.dumps(_payload(bench_compare.DEFAULT_FLOOR * 2)))
    slow = tmp_path / "slow.json"
    slow.write_text(
        json.dumps(_payload(bench_compare.LEGACY_HEADLINE_EVENTS_PER_WALL_S))
    )
    assert bench_compare.main([str(big), str(slow), "--threshold", "0.99"]) == 1


def test_committed_baseline_is_schema_valid(bench_compare):
    baseline = Path(__file__).parent.parent / "BENCH_baseline.json"
    payload, errors = bench_compare.load_payload(baseline)
    assert errors == []
    assert payload["mode"] == "smoke"
    assert payload["headline"]["value"] > 0
