"""scripts/bench_compare.py — the CI bench regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import BENCH_SCHEMA_ID

_SCRIPT = Path(__file__).parent.parent / "scripts" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(value=1000.0, mode="smoke", metric="events_per_wall_s"):
    return {
        "schema": BENCH_SCHEMA_ID,
        "name": "t",
        "mode": mode,
        "version": "1.2.0",
        "seed": 7,
        "config_hash": "ab" * 32,
        "headline": {"metric": metric, "value": value},
        "counters": {"engine.events_dispatched": 10},
        "timings_s": {"engine.run": {"total_s": 0.01, "count": 1}},
        "derived": {
            "events_per_wall_s": value,
            "sim_time_per_wall_s": 50.0,
            "runner_cache_hit_rate": 0.5,
            metric: value,
        },
        "phases": [],
    }


def test_within_threshold_passes(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(850.0))
    assert failures == []


def test_25_percent_regression_fails(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(750.0))
    assert len(failures) == 1
    assert "regression" in failures[0]
    assert "25.0%" in failures[0]


def test_exactly_at_floor_passes_and_faster_is_fine(bench_compare):
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(800.0)) == []
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(5000.0)) == []


def test_custom_threshold(bench_compare):
    base, fresh = _payload(1000.0), _payload(900.0)
    assert bench_compare.compare_payloads(base, fresh, threshold=0.05) != []
    assert bench_compare.compare_payloads(base, fresh, threshold=0.15) == []
    with pytest.raises(ValueError, match="threshold"):
        bench_compare.compare_payloads(base, fresh, threshold=1.5)


def test_mode_and_metric_mismatch_fail(bench_compare):
    assert bench_compare.compare_payloads(
        _payload(mode="full"), _payload(mode="smoke")
    )
    assert bench_compare.compare_payloads(
        _payload(metric="sim_time_per_wall_s"), _payload()
    )


def test_nonpositive_baseline_fails(bench_compare):
    assert bench_compare.compare_payloads(_payload(0.0), _payload(10.0))


def test_load_payload_reports_bad_inputs(bench_compare, tmp_path):
    missing = tmp_path / "nope.json"
    _, errors = bench_compare.load_payload(missing)
    assert errors and "no such file" in errors[0]

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    _, errors = bench_compare.load_payload(garbled)
    assert errors and "invalid JSON" in errors[0]

    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"schema": "wrong"}))
    _, errors = bench_compare.load_payload(invalid)
    assert errors


def test_engine_mismatch_fails_only_when_both_declare(bench_compare):
    base, fresh = _payload(1000.0), _payload(900.0)
    base["engine"], fresh["engine"] = "fluid", "scalar"
    failures = bench_compare.compare_payloads(base, fresh)
    assert any("engine mismatch" in f for f in failures)
    # Pre-refactor payloads carry no engine key: no failure.
    del base["engine"]
    assert bench_compare.compare_payloads(base, fresh) == []


def test_absolute_floor_enforces_min_speedup(bench_compare):
    floor = bench_compare.DEFAULT_FLOOR
    assert floor == pytest.approx(
        bench_compare.LEGACY_HEADLINE_EVENTS_PER_WALL_S
        * bench_compare.MIN_SPEEDUP
    )
    base = _payload(floor * 2.5)
    # Within threshold of baseline but below the absolute floor: fail.
    failures = bench_compare.compare_payloads(
        base, _payload(floor * 0.9), threshold=0.99, floor=floor
    )
    assert any("speedup floor" in f for f in failures)
    # At/above the floor: pass.
    assert (
        bench_compare.compare_payloads(
            base, _payload(floor * 2.2), floor=floor
        )
        == []
    )
    # floor=0 disables the check entirely.
    assert (
        bench_compare.compare_payloads(
            base, _payload(floor * 2.2), floor=0.0
        )
        == []
    )


def _phased(value=1000.0, tree_rate=2000.0, flat_rate=5000.0):
    payload = _payload(value)
    payload["phases"] = [
        {
            "name": "bench.attack_scenario",
            "wall_s": 0.5,
            "events": flat_rate * 0.5,
            "events_per_wall_s": flat_rate,
        },
        {
            "name": "bench.tree_topology",
            "wall_s": 0.5,
            "events": tree_rate * 0.5,
            "events_per_wall_s": tree_rate,
        },
        # A phase with no throughput fields (pre-refactor shape).
        {"name": "bench.region_sweep_cold", "wall_s": 0.1},
        # A zero-event phase: skipped by the per-phase gate.
        {
            "name": "bench.region_sweep_warm",
            "wall_s": 0.1,
            "events": 0.0,
            "events_per_wall_s": 0.0,
        },
    ]
    return payload


def test_phase_within_threshold_passes(bench_compare):
    base = _phased()
    fresh = _phased(tree_rate=1100.0, flat_rate=2600.0)  # drops < 50%
    assert bench_compare.compare_phases(base, fresh) == []


def test_phase_regression_fails_even_when_aggregate_holds(bench_compare):
    # The flat path collapses to a tenth of its rate while the tree
    # phase (and the aggregate headline) stays flat: the per-phase gate
    # must catch what the headline hides.
    base = _phased()
    fresh = _phased(flat_rate=500.0)
    assert bench_compare.compare_payloads(base, fresh, floor=0.0) == []
    failures = bench_compare.compare_phases(base, fresh)
    assert len(failures) == 1
    assert "bench.attack_scenario" in failures[0]
    assert "phase regression" in failures[0]


def test_missing_phase_in_fresh_payload_fails(bench_compare):
    base = _phased()
    fresh = _phased()
    fresh["phases"] = [
        p for p in fresh["phases"] if p["name"] != "bench.tree_topology"
    ]
    failures = bench_compare.compare_phases(base, fresh)
    assert len(failures) == 1
    assert "bench.tree_topology" in failures[0]
    assert "missing" in failures[0]


def test_zero_and_rateless_phases_are_skipped(bench_compare):
    base = _phased()
    fresh = _phased()
    # Remove the phases the gate must ignore from the fresh payload:
    # no failure may mention them.
    fresh["phases"] = [p for p in fresh["phases"] if "sweep" not in p["name"]]
    assert bench_compare.compare_phases(base, fresh) == []
    # A baseline with no phase rates at all (pre-refactor) always passes.
    legacy = _payload()
    assert bench_compare.compare_phases(legacy, _phased()) == []


def test_phase_threshold_validation_and_custom_value(bench_compare):
    base = _phased()
    fresh = _phased(tree_rate=1500.0)  # a 25% tree-phase drop
    assert bench_compare.compare_phases(base, fresh) == []
    assert bench_compare.compare_phases(base, fresh, phase_threshold=0.10)
    with pytest.raises(ValueError, match="phase_threshold"):
        bench_compare.compare_phases(base, fresh, phase_threshold=0.0)


def test_main_applies_the_phase_gate(bench_compare, tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_phased()))
    fresh.write_text(json.dumps(_phased(flat_rate=500.0)))
    args = [str(base), str(fresh), "--floor", "0"]
    assert bench_compare.main(args) == 1
    # Loosening the per-phase threshold lets the same payload pass.
    assert bench_compare.main(args + ["--phase-threshold", "0.95"]) == 0


def test_main_exit_codes(bench_compare, tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_payload(1000.0)))
    fresh.write_text(json.dumps(_payload(750.0)))
    assert bench_compare.main([str(base), str(fresh), "--floor", "0"]) == 1
    assert (
        bench_compare.main(
            [str(base), str(fresh), "--threshold", "0.30", "--floor", "0"]
        )
        == 0
    )
    # The default floor (10x the per-request headline) rejects a fresh
    # payload that only matches the pre-refactor engine's throughput.
    big = tmp_path / "big.json"
    big.write_text(json.dumps(_payload(bench_compare.DEFAULT_FLOOR * 2)))
    slow = tmp_path / "slow.json"
    slow.write_text(
        json.dumps(_payload(bench_compare.LEGACY_HEADLINE_EVENTS_PER_WALL_S))
    )
    assert bench_compare.main([str(big), str(slow), "--threshold", "0.99"]) == 1


def test_committed_baseline_is_schema_valid(bench_compare):
    baseline = Path(__file__).parent.parent / "BENCH_baseline.json"
    payload, errors = bench_compare.load_payload(baseline)
    assert errors == []
    assert payload["mode"] == "smoke"
    assert payload["headline"]["value"] > 0
