"""scripts/bench_compare.py — the CI bench regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import BENCH_SCHEMA_ID

_SCRIPT = Path(__file__).parent.parent / "scripts" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(value=1000.0, mode="smoke", metric="events_per_wall_s"):
    return {
        "schema": BENCH_SCHEMA_ID,
        "name": "t",
        "mode": mode,
        "version": "1.2.0",
        "seed": 7,
        "config_hash": "ab" * 32,
        "headline": {"metric": metric, "value": value},
        "counters": {"engine.events_dispatched": 10},
        "timings_s": {"engine.run": {"total_s": 0.01, "count": 1}},
        "derived": {
            "events_per_wall_s": value,
            "sim_time_per_wall_s": 50.0,
            "runner_cache_hit_rate": 0.5,
            metric: value,
        },
        "phases": [],
    }


def test_within_threshold_passes(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(850.0))
    assert failures == []


def test_25_percent_regression_fails(bench_compare):
    failures = bench_compare.compare_payloads(_payload(1000.0), _payload(750.0))
    assert len(failures) == 1
    assert "regression" in failures[0]
    assert "25.0%" in failures[0]


def test_exactly_at_floor_passes_and_faster_is_fine(bench_compare):
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(800.0)) == []
    assert bench_compare.compare_payloads(_payload(1000.0), _payload(5000.0)) == []


def test_custom_threshold(bench_compare):
    base, fresh = _payload(1000.0), _payload(900.0)
    assert bench_compare.compare_payloads(base, fresh, threshold=0.05) != []
    assert bench_compare.compare_payloads(base, fresh, threshold=0.15) == []
    with pytest.raises(ValueError, match="threshold"):
        bench_compare.compare_payloads(base, fresh, threshold=1.5)


def test_mode_and_metric_mismatch_fail(bench_compare):
    assert bench_compare.compare_payloads(
        _payload(mode="full"), _payload(mode="smoke")
    )
    assert bench_compare.compare_payloads(
        _payload(metric="sim_time_per_wall_s"), _payload()
    )


def test_nonpositive_baseline_fails(bench_compare):
    assert bench_compare.compare_payloads(_payload(0.0), _payload(10.0))


def test_load_payload_reports_bad_inputs(bench_compare, tmp_path):
    missing = tmp_path / "nope.json"
    _, errors = bench_compare.load_payload(missing)
    assert errors and "no such file" in errors[0]

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    _, errors = bench_compare.load_payload(garbled)
    assert errors and "invalid JSON" in errors[0]

    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"schema": "wrong"}))
    _, errors = bench_compare.load_payload(invalid)
    assert errors


def test_main_exit_codes(bench_compare, tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(_payload(1000.0)))
    fresh.write_text(json.dumps(_payload(750.0)))
    assert bench_compare.main([str(base), str(fresh)]) == 1
    assert bench_compare.main([str(base), str(fresh), "--threshold", "0.30"]) == 0


def test_committed_baseline_is_schema_valid(bench_compare):
    baseline = Path(__file__).parent.parent / "BENCH_baseline.json"
    payload, errors = bench_compare.load_payload(baseline)
    assert errors == []
    assert payload["mode"] == "smoke"
    assert payload["headline"]["value"] > 0
