"""REP007 fixture: missing and inconsistent ``__all__``."""


def exported() -> int:
    return 1


def also_public() -> int:  # VIOLATION
    return 2


__all__ = ["exported", "missing_name"]  # VIOLATION
