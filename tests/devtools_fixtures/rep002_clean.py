"""REP002 clean fixture: isclose and ordering comparisons."""

import math


def over_budget(power_w: float, supply_w: float) -> bool:
    return power_w > supply_w


def is_half(fraction: float) -> bool:
    return math.isclose(fraction, 0.5)


__all__ = ["over_budget", "is_half"]
