"""REP004 clean fixture: cluster-legal imports only (kernel + network)."""

from typing import TYPE_CHECKING

from repro.sim.engine import EventEngine
from repro.network.request import Request

if TYPE_CHECKING:  # annotation-only imports are exempt from layering
    from repro.sim.simulation import DataCenterSimulation

__all__ = ["EventEngine", "Request"]
