"""Suppression fixture: inline ``# repro: ignore[...]`` pragmas."""

import random  # repro: ignore[REP001]


def roll() -> float:
    return random.random()  # repro: ignore[REP001,REP003]


def wall_clock_s() -> float:
    import time

    return time.time()  # repro: ignore[*]


def unsuppressed() -> float:
    return random.random()  # VIOLATION


__all__ = ["roll", "wall_clock_s", "unsuppressed"]
