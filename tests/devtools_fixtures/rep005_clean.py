"""REP005 clean fixture: per-call and per-instance mutable state."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def collect(sample: float, history: Optional[List[float]] = None) -> List[float]:
    out = list(history or [])
    out.append(sample)
    return out


@dataclass
class Cache:
    entries: Dict[str, float] = field(default_factory=dict)


__all__ = ["collect", "Cache"]
