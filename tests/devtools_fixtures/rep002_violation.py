"""REP002 fixture: exact float equality on measured quantities."""


def over_budget(power_w: float, supply_w: float) -> bool:
    return power_w == supply_w  # VIOLATION


def is_half(fraction: float) -> bool:
    return fraction != 0.5  # VIOLATION


__all__ = ["over_budget", "is_half"]
