"""REP003 clean fixture: every quantity name carries its unit."""


class Meter:
    def __init__(self, interval_s: float) -> None:
        self.power_w = 0.0
        self._poll_s = interval_s


def wait(delay_s: float) -> float:
    total_time_s = delay_s
    return total_time_s


__all__ = ["Meter", "wait"]
