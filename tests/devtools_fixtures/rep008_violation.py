"""REP008 fixture: public callables missing return annotations."""


def unannotated(x: float):  # VIOLATION
    return x * 2.0


class Widget:
    def describe(self):  # VIOLATION
        return "widget"


__all__ = ["unannotated", "Widget"]
