"""Clean twin for REP011: declared names, declared prefixes, and a
runtime-computed name the rule abstains on."""


def record(counters, timers, kind):
    counters.inc("runner.cache_hits")
    counters.get("engine.run_calls")
    counters.inc(f"faults.injected.{kind}")
    with timers.phase("runner.cell"):
        pass
    name = compute_name(kind)
    counters.inc(name)  # fully dynamic: the rule abstains


def compute_name(kind):
    return f"faults.injected.{kind}"


def record_aggregate_flow(counters, timers):
    """The batched/fluid engine's names, all declared in the contract."""
    counters.inc("engine.cohorts_dispatched")
    counters.inc("engine.cohort_requests", 4)
    counters.inc("engine.fluid_segments")
    counters.inc("engine.fluid_time_advanced_s", 0.5)
    counters.inc("cluster.power_model_vector_evals", 16)
    with timers.phase("bench.volume_flood"):
        pass


def record_topology(counters, timers, node):
    """The power-tree/fabric families, declared by prefix."""
    counters.inc("fabric.flows")
    counters.inc("fabric.path_switches")
    counters.inc(f"topology.violation_slots.{node}")
    counters.inc(f"topology.cap_slots.{node}")
    with timers.phase("bench.tree_topology"):
        pass


def record_detection(counters, timers):
    """The online-detector family, declared by the detect. prefix."""
    counters.inc("detect.arrivals_observed")
    counters.inc("detect.quarantine_enters", 3)
    counters.inc("detect.calibration_clamped")
    with timers.phase("bench.online_detect"):
        pass


def record_prediction(counters, timers):
    """The prediction-scheme family, declared by the predict. prefix."""
    counters.inc("predict.healthy_slots")
    counters.inc("predict.soft_cap_slots", 2)
    counters.inc("predict.blind_violation_slots")
    with timers.phase("bench.prediction"):
        pass
