"""Clean twin for REP011: declared names, declared prefixes, and a
runtime-computed name the rule abstains on."""


def record(counters, timers, kind):
    counters.inc("runner.cache_hits")
    counters.get("engine.run_calls")
    counters.inc(f"faults.injected.{kind}")
    with timers.phase("runner.cell"):
        pass
    name = compute_name(kind)
    counters.inc(name)  # fully dynamic: the rule abstains


def compute_name(kind):
    return f"faults.injected.{kind}"
