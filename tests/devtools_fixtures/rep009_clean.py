"""Clean twin for REP009: dimensionally consistent dataflow.

Every construct here is legal under the dimension algebra — the rule
must stay silent on all of it.
"""


def energy_from_power(power_w: float, dt_s: float) -> float:
    return power_w * dt_s  # W x s -> J: legal by the algebra


def average_power(total_j: float, window_s: float) -> float:
    return total_j / window_s  # J / s -> W


def inverse_period(period_s: float) -> float:
    freq_hz = 1.0 / period_s  # 1 / s -> rate-class, compatible with Hz
    return freq_hz


def request_count(rate_rps: float, window_s: float) -> float:
    return rate_rps * window_s  # rps x s -> a count


def same_dimension_math(first_w: float, second_w: float) -> bool:
    total_w = first_w + second_w
    return total_w > 3.0 * first_w  # scalars are transparent under *


def rate_meets_frequency(sample_hz: float, arrival_rps: float) -> float:
    return max(sample_hz, arrival_rps)  # both inverse time: compatible


def unknown_abstains(count, power_w: float):
    blend = count + power_w  # count is UNKNOWN: the analysis abstains
    return blend


def rebind_same_dimension(dt_s: float, pause_s: float) -> float:
    window = dt_s
    window = pause_s  # time -> time: a legal rebind
    return window


def homogeneous_loop(powers_w) -> float:
    peak_w = 0.0
    for sample_w in powers_w:
        peak_w = max(peak_w, sample_w)
    return peak_w
