"""REP001 fixture: unseeded randomness and wall-clock reads."""

import random  # VIOLATION

import numpy as np


def roll() -> float:
    return random.random()  # VIOLATION


def legacy_draw() -> float:
    return np.random.rand()  # VIOLATION


def wall_clock_s() -> float:
    import time

    return time.time()  # VIOLATION


def today_stamp() -> object:
    import datetime

    return datetime.datetime.now()  # VIOLATION


__all__ = ["roll", "legacy_draw", "wall_clock_s", "today_stamp"]
