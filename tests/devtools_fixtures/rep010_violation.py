"""Seeded REP010 violations: nondeterminism on a cell path.

``probe_cell`` matches the cell-callable naming convention, so it and
everything it calls is on the cross-process determinism boundary.
Every marked line must yield exactly one REP010 finding.
"""

import itertools
import json

from numpy.random import default_rng

_CACHE = {}
_SERIAL = itertools.count()


def helper(key):
    _CACHE[key] = key  # VIOLATION: mutates module state on a cell path
    return key


def probe_cell(spec):
    serial = next(_SERIAL)  # VIOLATION: per-process serial counter
    rng = default_rng()  # VIOLATION: unseeded RNG
    helper(spec)
    tags = {"a", "b"}
    ordered = [t for t in tags]  # VIOLATION: set iteration order
    blob = json.dumps({"spec": set([spec])})  # VIOLATION: set into sink
    return serial, ordered, blob, rng.random()
