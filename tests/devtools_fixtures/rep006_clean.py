"""REP006 clean fixture: every numeric knob routed through validation."""

from dataclasses import dataclass

from repro._validation import check_int, check_positive


@dataclass(frozen=True)
class MeterConfig:
    poll_s: float = 1.0
    window_s: float = 60.0
    retries: int = 3
    label: str = "meter"

    def __post_init__(self) -> None:
        check_positive("poll_s", self.poll_s)
        check_positive("window_s", self.window_s)
        check_int("retries", self.retries, minimum=0)


__all__ = ["MeterConfig"]
