"""Seeded REP009 violations: mixed-dimension dataflow.

Every marked line must yield exactly one REP009 finding.
"""


def mixed_add(power_w: float, energy_j: float) -> float:
    return power_w + energy_j  # VIOLATION


def mixed_subtract(peak_w: float, window_s: float) -> float:
    return peak_w - window_s  # VIOLATION


def mixed_compare(peak_w: float, window_s: float) -> bool:
    return peak_w > window_s  # VIOLATION


def suffixed_assign(load_w: float) -> float:
    total_j = load_w  # VIOLATION
    return total_j


def silent_reassign(dt_s: float, cap_w: float) -> float:
    window = dt_s
    window = cap_w  # VIOLATION
    return window


def keyword_mismatch(cap_w: float) -> None:
    configure(duration_s=cap_w)  # VIOLATION


def mixed_max(cap_w: float, dt_s: float) -> float:
    return max(cap_w, dt_s)  # VIOLATION


def mixed_augment(total_w: float, dt_s: float) -> float:
    total_w += dt_s  # VIOLATION
    return total_w


def mixed_branches(flag: bool, cap_w: float, dt_s: float) -> float:
    return cap_w if flag else dt_s  # VIOLATION


def mislabeled_loop(powers_w) -> float:
    acc = 0.0
    for step_s in powers_w:  # VIOLATION
        acc = acc + step_s
    return acc


def configure(duration_s: float = 0.0) -> None:
    del duration_s
