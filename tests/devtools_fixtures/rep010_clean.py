"""Clean twin for REP010: a seeded, ordered, stateless cell path.

Same shape as the violating fixture, with every race fixed the way the
rule's messages suggest: state passed explicitly, sets sorted before
they escape, RNG derived from the cell's own seed.
"""

import json

from numpy.random import default_rng


def helper(key, cache):
    cache[key] = key  # caller-owned state, not module state
    return key


def probe_cell(spec):
    rng = default_rng(spec)  # seeded from the cell parameters
    cache = {}
    helper(spec, cache)
    tags = {"a", "b"}
    ordered = sorted(tags)  # defined order before the set escapes
    blob = json.dumps({"spec": sorted({spec})})
    return ordered, blob, rng.random()
