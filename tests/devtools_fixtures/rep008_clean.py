"""REP008 clean fixture: annotated returns everywhere public."""


def annotated(x: float) -> float:
    return x * 2.0


class Widget:
    def describe(self) -> str:
        return "widget"


__all__ = ["annotated", "Widget"]
