"""Seeded REP011 violations: counter/timer names missing from the
obs contract registry (each is a near-miss of a declared name).

Every marked line must yield exactly one REP011 finding.
"""


def record(counters, timers, kind):
    counters.inc("runner.cache_hitz")  # VIOLATION: typo of cache_hits
    counters.get("engine.run_cals")  # VIOLATION: typo of run_calls
    counters.inc(f"faults.injectd.{kind}")  # VIOLATION: typo'd prefix
    with timers.phase("runner.cel"):  # VIOLATION: typo of runner.cell
        pass


def record_aggregate_flow(counters, timers):
    counters.inc("engine.cohort_dispatched")  # VIOLATION: typo of cohorts_dispatched
    counters.inc("engine.fluid_segment")  # VIOLATION: typo of fluid_segments
    counters.inc("cluster.power_model_vector_eval")  # VIOLATION: typo of vector_evals
    with timers.phase("bench.volume_floods"):  # VIOLATION: typo of bench.volume_flood
        pass


def record_topology(counters, timers, node):
    counters.inc("fabrc.path_switches")  # VIOLATION: typo of the fabric. prefix
    counters.inc(f"topologee.cap_slots.{node}")  # VIOLATION: typo of the topology. prefix
    with timers.phase("bench.tree_topologies"):  # VIOLATION: typo of bench.tree_topology
        pass


def record_detection(counters, timers):
    counters.inc("detct.arrivals_observed")  # VIOLATION: typo of the detect. prefix
    counters.inc("detect-quarantine_enters")  # VIOLATION: dash where the detect. prefix has a dot
    with timers.phase("bench.online_detct"):  # VIOLATION: typo of bench.online_detect
        pass


def record_prediction(counters, timers):
    counters.inc("predit.healthy_slots")  # VIOLATION: typo of the predict. prefix
    counters.inc("predict_soft_cap_slots")  # VIOLATION: underscore where the predict. prefix has a dot
    with timers.phase("bench.predictions"):  # VIOLATION: typo of bench.prediction
        pass
