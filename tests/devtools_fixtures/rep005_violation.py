"""REP005 fixture: shared mutable defaults and class attributes."""

from typing import Dict, List


def collect(sample: float, history: List[float] = []) -> List[float]:  # VIOLATION
    history.append(sample)
    return history


class Cache:
    entries: Dict[str, float] = {}  # VIOLATION
    labels = []  # VIOLATION


__all__ = ["collect", "Cache"]
