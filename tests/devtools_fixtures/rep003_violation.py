"""REP003 fixture: quantity identifiers without unit suffixes."""


class Meter:
    def __init__(self, interval: float) -> None:  # VIOLATION
        self.power = 0.0  # VIOLATION
        self._poll_s = interval


def wait(delay: float) -> float:  # VIOLATION
    total_time = delay  # VIOLATION
    return total_time


__all__ = ["Meter", "wait"]
