"""Clean twin for REP012: FAULT and POLICY partition every drop."""

import enum


class RequestOutcome(enum.Enum):
    COMPLETED = "completed"
    DROPPED_FIREWALL = "dropped_firewall"
    TIMED_OUT = "timed_out"
    FAILED_SERVER = "failed_server"


FAULT_OUTCOMES = frozenset({RequestOutcome.FAILED_SERVER})
POLICY_OUTCOMES = frozenset(
    {RequestOutcome.DROPPED_FIREWALL, RequestOutcome.TIMED_OUT}
)


def classify(outcome):
    if outcome is RequestOutcome.COMPLETED:
        return "served"
    return "fault" if outcome in FAULT_OUTCOMES else "policy"
