"""REP006 fixture: a config class with unvalidated numeric knobs."""

from dataclasses import dataclass

from repro._validation import check_positive


@dataclass(frozen=True)
class MeterConfig:
    poll_s: float = 1.0
    window_s: float = 60.0  # VIOLATION
    retries: int = 3  # VIOLATION
    label: str = "meter"

    def __post_init__(self) -> None:
        check_positive("poll_s", self.poll_s)


__all__ = ["MeterConfig"]
