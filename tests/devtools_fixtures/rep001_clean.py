"""REP001 clean fixture: seeded new-style numpy generators only."""

import numpy as np


def seeded_draw(seed: int) -> float:
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return float(rng.random())


__all__ = ["seeded_draw"]
