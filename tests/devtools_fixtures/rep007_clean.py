"""REP007 clean fixture: ``__all__`` names every public definition."""


def exported() -> int:
    return 1


def also_public() -> int:
    return 2


def _helper() -> int:
    return 3


__all__ = ["exported", "also_public"]
