"""Seeded REP012 violations: a broken drop-attribution partition.

The enum and its FAULT/POLICY sets are local to this fixture; the rule
re-derives the partition from whatever module defines RequestOutcome.
Every marked line must yield exactly one REP012 finding.
"""

import enum


class RequestOutcome(enum.Enum):
    COMPLETED = "completed"
    DROPPED_FIREWALL = "dropped_firewall"
    TIMED_OUT = "timed_out"  # VIOLATION: claimed by both sets below
    FAILED_SERVER = "failed_server"
    DROPPED_ORPHAN = "dropped_orphan"  # VIOLATION: claimed by neither set


FAULT_OUTCOMES = frozenset(
    {RequestOutcome.FAILED_SERVER, RequestOutcome.TIMED_OUT, RequestOutcome.GHOST}  # VIOLATION: GHOST is not a member
)
POLICY_OUTCOMES = frozenset(
    {RequestOutcome.DROPPED_FIREWALL, RequestOutcome.TIMED_OUT}
)


def classify(outcome):
    return outcome is RequestOutcome.COMPLETD  # VIOLATION: typo reference
