"""REP004 fixture: linted as if it were a ``repro.cluster`` module.

The cluster substrate may use the DES kernel but must never import the
orchestration layer above it.
"""

from repro.sim.engine import EventEngine
from repro.sim.simulation import DataCenterSimulation  # VIOLATION
from repro.analysis.sweep import GridSweep  # VIOLATION

__all__ = ["EventEngine", "DataCenterSimulation", "GridSweep"]
