"""Integration tests for the multi-rack facility simulation."""

import pytest

from repro import BudgetLevel, CappingScheme, SimulationConfig
from repro.sim.facility import FacilitySimulation
from repro.workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix

ATTACK = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))


def make_facility(**kwargs):
    kwargs.setdefault("num_racks", 3)
    kwargs.setdefault("facility_fraction", 0.85)
    kwargs.setdefault("scheme_factory", CappingScheme)
    kwargs.setdefault("rack_config", SimulationConfig(seed=3))
    kwargs.setdefault("replan_interval_s", 5.0)
    return FacilitySimulation(**kwargs)


class TestConstruction:
    def test_racks_share_one_engine(self):
        facility = make_facility()
        assert all(sim.engine is facility.engine for sim in facility.racks)

    def test_distinct_seeds_per_rack(self):
        facility = make_facility()
        draws = [sim.new_rng().random() for sim in facility.racks]
        assert len(set(draws)) == len(draws)

    def test_facility_budget_fraction(self):
        facility = make_facility(facility_fraction=0.85)
        assert facility.facility_budget_w == pytest.approx(0.85 * 3 * 400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_facility(num_racks=0)
        with pytest.raises(ValueError):
            make_facility(facility_fraction=1.0)


class TestReplanning:
    def test_idle_facility_satisfies_all_racks(self):
        facility = make_facility()
        facility.run(20.0)
        record = facility.stats.records[-1]
        assert all(a.satisfied for a in record.allocations)

    def test_budgets_updated_in_place(self):
        facility = make_facility()
        budgets_before = [sim.budget.supply_w for sim in facility.racks]
        facility.run(10.0)
        # Idle demand ≈ idle floor: allocations shrink to demand.
        for sim in facility.racks:
            assert sim.budget.supply_w < 400.0

    def test_attacked_rack_bids_away_headroom(self):
        facility = make_facility()
        victim = facility.racks[0]
        for sim in facility.racks:
            sim.add_normal_traffic(rate_rps=30)
        victim.add_flood(mix=ATTACK, rate_rps=300, num_agents=20, start_s=10)
        facility.run(120.0)
        record = facility.stats.records[-1]
        # The attacked rack demands (and receives) far more than peers.
        assert record.demands_w[0] > 1.5 * record.demands_w[1]
        assert record.allocations[0].allocated_w > record.allocations[1].allocated_w

    def test_total_allocation_never_exceeds_feed(self):
        facility = make_facility()
        for sim in facility.racks:
            sim.add_normal_traffic(rate_rps=30)
            sim.add_flood(mix=ATTACK, rate_rps=250, num_agents=20, start_s=5)
        facility.run(60.0)
        for record in facility.stats.records:
            total = sum(a.allocated_w for a in record.allocations)
            assert total <= facility.facility_budget_w + 1e-6

    def test_cross_rack_collateral_damage(self):
        """DOPE on rack 0 degrades rack 1's users without touching them."""

        def run(attacked: bool):
            # A tight facility feed (50 % of summed nameplates) so the
            # attacked rack's demand genuinely displaces its peers'.
            facility = make_facility(facility_fraction=0.50)
            for sim in facility.racks:
                sim.add_normal_traffic(rate_rps=120)
            if attacked:
                facility.racks[0].add_flood(
                    mix=ATTACK, rate_rps=300, num_agents=20, start_s=20
                )
            facility.run(180.0)
            bystander = facility.racks[1]
            stats = bystander.latency_stats(
                traffic_class=TrafficClass.NORMAL, start_s=60.0
            )
            return stats, facility.stats.records[-1]

        quiet, quiet_rec = run(attacked=False)
        noisy, noisy_rec = run(attacked=True)
        # The re-plan shrank the bystander's budget...
        assert (
            noisy_rec.allocations[1].allocated_w
            < quiet_rec.allocations[1].allocated_w
        )
        # ...and its users — who never saw an attack packet — slow down.
        assert noisy.mean > 1.1 * quiet.mean

    def test_sequential_runs_continue(self):
        facility = make_facility()
        facility.run(10.0)
        replans_first = facility.stats.replans
        facility.run(10.0)
        assert facility.stats.replans > replans_first
        assert facility.now == pytest.approx(20.0)
