"""Unit tests for the RPM controller (Anti-DOPE step 2)."""

import pytest

from repro.core import RequestAwarePowerManager
from repro.core.pdf import split_pools
from repro.network import Request
from repro.power import Battery, PowerBudget
from repro.workloads import COLLA_FILT, TEXT_CONT, TrafficClass


def load_pool(pool, rtype=COLLA_FILT, per_server=8):
    for s in pool:
        for i in range(per_server):
            s.submit(Request(rtype, i, TrafficClass.ATTACK, 0.0))


@pytest.fixture
def pools(rack):
    return split_pools(rack.servers, 1)


def make_rpm(rack, pools, supply_w, battery=None):
    innocent, suspect = pools
    return RequestAwarePowerManager(
        suspect_pool=suspect,
        innocent_pool=innocent,
        budget=PowerBudget(supply_w),
        battery=battery,
    )


class TestControl:
    def test_no_violation_no_throttle(self, rack, pools):
        rpm = make_rpm(rack, pools, supply_w=400.0)
        decision = rpm.step(0.0)
        assert decision.deficit_w == 0.0
        assert not decision.plan.degrades_innocent(12)
        assert rack.levels() == [12] * 4

    def test_suspect_pool_throttled_first(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        load_pool(innocent, TEXT_CONT, per_server=2)
        # Load: suspect server at 100 W + 3 innocent at ~43 W = ~230 W.
        rpm = make_rpm(rack, pools, supply_w=220.0)
        decision = rpm.step(0.0)
        assert suspect[0].level < 12
        assert all(s.level == 12 for s in innocent)
        assert rpm.current_power() <= 220.0 + 1e-6

    def test_innocent_untouched_even_at_deep_suspect_throttle(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        rpm = make_rpm(rack, pools, supply_w=200.0)
        rpm.step(0.0)
        assert all(s.level == 12 for s in innocent)

    def test_violation_statistics(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        rpm = make_rpm(rack, pools, supply_w=200.0)
        rpm.step(0.0)
        rpm.step(1.0)
        assert rpm.stats.slots == 2
        assert rpm.stats.violations >= 1
        assert rpm.stats.reconfigurations >= 1

    def test_recovery_after_load_drains(self, engine, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        # Load: suspect at 100 W + 3 idle innocent at 38 W = 214 W.
        rpm = make_rpm(rack, pools, supply_w=205.0)
        rpm.step(0.0)
        assert suspect[0].level < 12
        engine.run(until=60.0)
        rpm.step(60.0)
        assert suspect[0].level == 12


class TestBatteryTransition:
    def test_battery_covers_reconfiguration_slot(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        battery = Battery.for_rack(400.0)
        rpm = make_rpm(rack, pools, supply_w=205.0, battery=battery)
        decision = rpm.step(0.0)
        assert decision.reconfigured
        assert decision.battery_w > 0
        assert battery.delivered_j > 0

    def test_no_discharge_without_reconfiguration(self, rack, pools):
        battery = Battery.for_rack(400.0)
        rpm = make_rpm(rack, pools, supply_w=400.0, battery=battery)
        rpm.step(0.0)
        rpm.step(1.0)
        assert battery.delivered_j == 0.0

    def test_recharges_when_compliant(self, rack, pools):
        battery = Battery.for_rack(400.0)
        battery.soc_j = battery.capacity_j / 2
        rpm = make_rpm(rack, pools, supply_w=400.0, battery=battery)
        rpm.step(0.0)
        assert battery.soc_j > battery.capacity_j / 2

    def test_steady_violation_after_reconfig_does_not_drain(self, rack, pools):
        """Once the throttle plan is in place, a persistent residual
        violation must not bleed the battery (it is a transition medium,
        not a shaving store)."""
        innocent, suspect = pools
        load_pool(suspect)
        load_pool(innocent, COLLA_FILT, per_server=8)
        battery = Battery.for_rack(400.0)
        # Budget below idle floor: infeasible, always violating.
        rpm = make_rpm(rack, pools, supply_w=140.0, battery=battery)
        rpm.step(0.0)
        after_first = battery.delivered_j
        for t in range(1, 10):
            rpm.step(float(t))
        assert battery.delivered_j == after_first


class TestPrediction:
    def test_predict_matches_actual_after_apply(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        rpm = make_rpm(rack, pools, supply_w=330.0)
        predicted = rpm.predict(5, 12)
        for s in suspect:
            s.set_level(5)
        assert rpm.current_power() == pytest.approx(predicted)

    def test_predict_monotone_in_levels(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        load_pool(innocent, COLLA_FILT, per_server=4)
        powers = [rpm_power for rpm_power in ()]
        rpm = make_rpm(rack, pools, supply_w=330.0)
        for p in range(0, 12):
            assert rpm.predict(p, 12) <= rpm.predict(p + 1, 12) + 1e-9
            assert rpm.predict(12, p) <= rpm.predict(12, p + 1) + 1e-9


class TestValidation:
    def test_empty_pools_rejected(self, rack):
        with pytest.raises(ValueError):
            RequestAwarePowerManager(
                suspect_pool=[],
                innocent_pool=rack.servers,
                budget=PowerBudget(400.0),
            )

    def test_infeasible_flagged(self, rack, pools):
        innocent, suspect = pools
        load_pool(suspect)
        load_pool(innocent)
        rpm = make_rpm(rack, pools, supply_w=100.0)
        decision = rpm.step(0.0)
        assert not decision.plan.feasible
        assert rpm.stats.infeasible_slots == 1
