"""Unit tests for the power token bucket (Table 2 row 3)."""

import pytest

from repro.network import Request
from repro.power import PowerBudget, PowerTokenBucket, TokenScheme
from repro.workloads import COLLA_FILT, TEXT_CONT, VOLUME_DOS, TrafficClass


def req(rtype=COLLA_FILT):
    return Request(rtype, 0, TrafficClass.ATTACK, 0.0)


class TestBucketMechanics:
    def test_admits_until_empty(self):
        bucket = PowerTokenBucket(
            refill_rate_w=10.0, burst_s=1.0, energy_cost_fn=lambda r: 4.0
        )
        assert bucket.admit(req(), now=0.0)
        assert bucket.admit(req(), now=0.0)
        assert not bucket.admit(req(), now=0.0)  # 10 - 8 = 2 < 4
        assert bucket.dropped == 1

    def test_refills_over_time(self):
        bucket = PowerTokenBucket(10.0, 1.0, lambda r: 10.0)
        assert bucket.admit(req(), now=0.0)
        assert not bucket.admit(req(), now=0.0)
        assert bucket.admit(req(), now=1.0)  # fully refilled

    def test_capacity_caps_accumulation(self):
        bucket = PowerTokenBucket(10.0, burst_s=2.0, energy_cost_fn=lambda r: 20.0)
        # After a very long idle period tokens cap at 20 J, one admission.
        assert bucket.admit(req(), now=100.0)
        assert not bucket.admit(req(), now=100.0)

    def test_cheap_requests_pass_while_expensive_blocked(self):
        costs = {COLLA_FILT.name: 50.0, VOLUME_DOS.name: 0.1}
        bucket = PowerTokenBucket(
            1.0, burst_s=10.0, energy_cost_fn=lambda r: costs[r.rtype.name]
        )
        assert not bucket.admit(req(COLLA_FILT), now=0.0)
        assert bucket.admit(req(VOLUME_DOS), now=0.0)

    def test_drop_fraction(self):
        bucket = PowerTokenBucket(2.0, 1.0, lambda r: 2.0)
        bucket.admit(req(), now=0.0)  # admitted (capacity 2 J)
        bucket.admit(req(), now=0.0)  # dropped (bucket dry)
        assert bucket.drop_fraction == pytest.approx(0.5)

    def test_negative_cost_rejected(self):
        bucket = PowerTokenBucket(1.0, 1.0, lambda r: -1.0)
        with pytest.raises(ValueError):
            bucket.admit(req(), now=0.0)


class TestTokenScheme:
    def test_bucket_sized_from_budget(self, engine, rack):
        scheme = TokenScheme(safety_factor=1.0)
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        # refill = supply - idle floor = 352 - 152 = 200 W.
        assert scheme.bucket.refill_rate_w == pytest.approx(200.0)

    def test_safety_factor_shrinks_refill(self, engine, rack):
        scheme = TokenScheme(safety_factor=0.5)
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        assert scheme.bucket.refill_rate_w == pytest.approx(100.0)

    def test_cost_uses_energy_model(self, engine, rack):
        scheme = TokenScheme()
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        expected = rack.power_model.energy_per_request(COLLA_FILT, 1.0)
        bucket = scheme.bucket
        before = bucket.tokens_j
        bucket.admit(req(COLLA_FILT), now=engine.now)
        assert before - bucket.tokens_j == pytest.approx(expected)

    def test_admission_filter_exposed(self, engine, rack):
        scheme = TokenScheme()
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        assert scheme.admission_filter() is scheme.bucket

    def test_step_keeps_nominal_frequency(self, engine, rack):
        scheme = TokenScheme()
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        rack.set_all_levels(3)
        scheme.step()
        assert rack.levels() == [12] * 4

    def test_invalid_safety_factor(self):
        with pytest.raises(ValueError):
            TokenScheme(safety_factor=0.0)
        with pytest.raises(ValueError):
            TokenScheme(safety_factor=1.2)

    def test_light_traffic_unimpeded(self, engine, rack):
        scheme = TokenScheme()
        scheme.bind(engine, rack, PowerBudget(352.0), None, 1.0)
        admitted = sum(
            scheme.bucket.admit(req(TEXT_CONT), now=0.0) for _ in range(100)
        )
        assert admitted == 100
