"""Unit tests for the shared validation helpers."""

import math

import pytest

from repro._validation import (
    check_finite,
    check_fraction,
    check_int,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_sorted_unique,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "1.0")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative("x", -0.1)


class TestCheckFinite:
    def test_accepts_int_and_float(self):
        assert check_finite("x", 3) == 3
        assert check_finite("x", -2.5) == -2.5

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            check_finite("x", None)


class TestCheckFraction:
    def test_accepts_bounds_inclusive(self):
        assert check_fraction("x", 0.0) == 0.0
        assert check_fraction("x", 1.0) == 1.0

    def test_rejects_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction("x", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("x", 1.0, inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("x", 1.01)
        with pytest.raises(ValueError):
            check_fraction("x", -0.01)


class TestCheckInt:
    def test_accepts_int(self):
        assert check_int("n", 5) == 5

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_int("n", 5.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_int("n", False)

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match=">= 1"):
            check_int("n", 0, minimum=1)


class TestProbabilityVector:
    def test_accepts_valid_distribution(self):
        assert check_probability_vector("p", [0.25, 0.75]) == [0.25, 0.75]

    def test_rejects_non_unit_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("p", [0.5, 0.6])

    def test_rejects_negative_entry(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [1.5, -0.5])

    def test_tolerates_float_rounding(self):
        check_probability_vector("p", [1 / 3, 1 / 3, 1 / 3])


class TestSortedUnique:
    def test_accepts_increasing(self):
        assert check_sorted_unique("f", [1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            check_sorted_unique("f", [1.0, 1.0])

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_sorted_unique("f", [2.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_sorted_unique("f", [])
