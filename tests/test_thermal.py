"""Unit tests for the thermal substrate."""

import math

import numpy as np
import pytest

from repro.cluster import Rack
from repro.cluster.thermal import (
    ServerThermalModel,
    ThermalMonitor,
    cooling_power_w,
)
from repro.network import Request
from repro.workloads import COLLA_FILT, TrafficClass


class TestRCModel:
    def test_starts_at_inlet(self):
        model = ServerThermalModel(t_inlet_c=25.0)
        assert model.temperature_c == 25.0

    def test_steady_state(self):
        model = ServerThermalModel(r_th_c_per_w=0.5, t_inlet_c=25.0)
        assert model.steady_state_c(100.0) == pytest.approx(75.0)

    def test_exponential_approach(self):
        model = ServerThermalModel(r_th_c_per_w=0.5, tau_s=60.0, t_inlet_c=25.0)
        model.advance(0.0, power_w=100.0)  # anchor the clock
        model.advance(60.0, power_w=100.0)  # one time constant
        expected = 75.0 + (25.0 - 75.0) * math.exp(-1.0)
        assert model.temperature_c == pytest.approx(expected)

    def test_converges_to_steady_state(self):
        model = ServerThermalModel(r_th_c_per_w=0.5, tau_s=10.0, t_inlet_c=25.0)
        model.advance(0.0, power_w=100.0)
        model.advance(1000.0, power_w=100.0)
        assert model.temperature_c == pytest.approx(75.0, abs=0.01)

    def test_cools_down_when_power_drops(self):
        model = ServerThermalModel(r_th_c_per_w=0.5, tau_s=10.0, t_inlet_c=25.0)
        model.advance(0.0, power_w=100.0)
        model.advance(1000.0, power_w=100.0)
        model.advance(2000.0, power_w=0.0)
        assert model.temperature_c == pytest.approx(25.0, abs=0.01)

    def test_first_advance_only_anchors(self):
        # Regression: a model created while the clock is already past
        # zero must not integrate a phantom [0, now) warm-up interval.
        model = ServerThermalModel(r_th_c_per_w=0.5, tau_s=10.0, t_inlet_c=25.0)
        model.advance(500.0, power_w=100.0)
        assert model.temperature_c == 25.0
        model.advance(1500.0, power_w=100.0)
        assert model.temperature_c == pytest.approx(75.0, abs=0.01)

    def test_zero_dt_is_noop(self):
        model = ServerThermalModel()
        t0 = model.advance(0.0, 100.0)
        assert model.advance(0.0, 100.0) == t0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerThermalModel(r_th_c_per_w=0.0)
        with pytest.raises(ValueError):
            ServerThermalModel(tau_s=-1.0)


def load_server(server, per=8):
    for i in range(per):
        server.submit(Request(COLLA_FILT, i, TrafficClass.ATTACK, 0.0))


class TestThermalMonitor:
    @pytest.fixture
    def monitored(self, engine):
        rack = Rack(engine, num_servers=2, rng=np.random.default_rng(0))
        monitor = ThermalMonitor(
            engine,
            rack,
            t_trip_c=60.0,
            t_resume_c=50.0,
            interval_s=1.0,
            model_factory=lambda: ServerThermalModel(
                r_th_c_per_w=0.5, tau_s=10.0, t_inlet_c=25.0
            ),
        )
        monitor.start()
        return rack, monitor

    def test_idle_rack_stays_cool(self, engine, monitored):
        rack, monitor = monitored
        engine.run(until=60.0)
        # Idle: 38 W → steady state 44 C < 60 C trip.
        assert monitor.max_temperature() < 50.0
        assert monitor.stats.emergencies == 0

    def test_sustained_load_trips_emergency(self, engine, monitored):
        rack, monitor = monitored

        def keep_hot():
            for s in rack.servers:
                while s.busy_workers < s.num_workers:
                    load_server(s, per=1)

        stop = engine.every(0.5, keep_hot, start_delay_s=0.0)
        engine.run(until=120.0)
        stop()
        # Full Colla-Filt load: 100 W → steady state 75 C > 60 C trip.
        assert monitor.stats.emergencies >= 1
        assert any(monitor.in_emergency(s) or True for s in rack.servers)

    def test_emergency_forces_bottom_level(self, engine, monitored):
        rack, monitor = monitored
        server = rack.servers[0]
        monitor.models[server.server_id].temperature_c = 70.0  # above trip
        monitor.step()
        assert server.level == 0
        assert monitor.in_emergency(server)

    def test_emergency_released_with_hysteresis(self, engine, monitored):
        rack, monitor = monitored
        server = rack.servers[0]
        monitor.models[server.server_id].temperature_c = 70.0
        monitor.step()
        # Cooled into the hysteresis band: still throttled.
        monitor.models[server.server_id].temperature_c = 55.0
        monitor.models[server.server_id]._last_t = engine.now
        monitor.step()
        assert monitor.in_emergency(server)
        # Cooled below resume: released to the pre-emergency level.
        monitor.models[server.server_id].temperature_c = 45.0
        monitor.models[server.server_id]._last_t = engine.now
        monitor.step()
        assert not monitor.in_emergency(server)
        assert server.level == server.ladder.max_level

    def test_samples_recorded(self, engine, monitored):
        rack, monitor = monitored
        engine.run(until=5.0)
        assert len(monitor.stats.samples) == 5
        assert len(monitor.stats.samples[0].temperatures_c) == 2

    def test_validation(self, engine, monitored):
        rack, _ = monitored
        with pytest.raises(ValueError):
            ThermalMonitor(engine, rack, t_trip_c=50.0, t_resume_c=60.0)

    def test_double_start_rejected(self, monitored):
        _, monitor = monitored
        with pytest.raises(RuntimeError):
            monitor.start()


class TestCoolingPower:
    def test_cop_model(self):
        assert cooling_power_w(300.0, cop=3.0) == pytest.approx(100.0)

    def test_zero_load(self):
        assert cooling_power_w(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cooling_power_w(-1.0)
        with pytest.raises(ValueError):
            cooling_power_w(100.0, cop=0.0)
