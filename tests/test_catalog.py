"""Unit tests for the request-type catalog (paper Table 1)."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_TYPES,
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VICTIM_TYPES,
    VOLUME_DOS,
    WORD_COUNT,
    RequestMix,
    RequestType,
    alios_mix,
    get_type,
    get_type_by_url,
    uniform_mix,
)


class TestCatalogContents:
    def test_table1_victim_types_present(self):
        names = {t.name for t in VICTIM_TYPES}
        assert names == {"colla-filt", "k-means", "word-count", "text-cont"}

    def test_all_types_includes_volume_dos(self):
        assert VOLUME_DOS in ALL_TYPES
        assert len(ALL_TYPES) == 5

    def test_lookup_by_name(self):
        assert get_type("k-means") is K_MEANS
        with pytest.raises(KeyError):
            get_type("nope")

    def test_lookup_by_url(self):
        assert get_type_by_url("/api/recommend") is COLLA_FILT
        with pytest.raises(KeyError):
            get_type_by_url("/unknown")

    def test_urls_are_unique(self):
        urls = [t.url for t in ALL_TYPES]
        assert len(set(urls)) == len(urls)


class TestRequestTypeModel:
    def test_speedup_at_nominal_is_one(self):
        for t in ALL_TYPES:
            assert t.speedup(1.0) == pytest.approx(1.0)

    def test_cpu_bound_slows_more(self):
        # Colla-Filt (c=0.95) suffers more at half frequency than
        # memory-bound K-means (c=0.40).
        assert COLLA_FILT.speedup(0.5) < K_MEANS.speedup(0.5)

    def test_service_time_inverse_of_speedup(self):
        assert COLLA_FILT.service_time(0.5) == pytest.approx(
            COLLA_FILT.base_service_s / COLLA_FILT.speedup(0.5)
        )

    def test_power_factor_at_nominal_equals_intensity(self):
        for t in ALL_TYPES:
            assert t.dynamic_power_factor(1.0) == pytest.approx(t.power_intensity)

    def test_power_factor_monotone_in_frequency(self):
        for t in ALL_TYPES:
            factors = [t.dynamic_power_factor(r) for r in (0.5, 0.75, 1.0)]
            assert factors == sorted(factors)

    def test_invalid_url_rejected(self):
        with pytest.raises(ValueError):
            RequestType("x", "no-slash", 0.1, 0.5, 0.5, 0.5)

    def test_invalid_service_time_rejected(self):
        with pytest.raises(ValueError):
            RequestType("x", "/x", 0.0, 0.5, 0.5, 0.5)

    def test_types_are_frozen(self):
        with pytest.raises(Exception):
            COLLA_FILT.base_service_s = 1.0  # type: ignore[misc]


class TestRequestMix:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RequestMix({COLLA_FILT: 0.5, K_MEANS: 0.6})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            RequestMix({})

    def test_sampling_respects_weights(self):
        rng = np.random.default_rng(0)
        mix = RequestMix({TEXT_CONT: 0.9, COLLA_FILT: 0.1})
        draws = mix.sample_many(rng, 20000)
        frac_cf = sum(1 for t in draws if t is COLLA_FILT) / len(draws)
        assert frac_cf == pytest.approx(0.1, abs=0.01)

    def test_sample_many_matches_domain(self):
        rng = np.random.default_rng(1)
        mix = uniform_mix(VICTIM_TYPES)
        assert set(mix.sample_many(rng, 500)) <= set(VICTIM_TYPES)

    def test_single_sample(self):
        rng = np.random.default_rng(2)
        mix = RequestMix({K_MEANS: 1.0})
        assert mix.sample(rng) is K_MEANS

    def test_sample_many_zero(self):
        rng = np.random.default_rng(3)
        assert uniform_mix(VICTIM_TYPES).sample_many(rng, 0) == []

    def test_sample_many_negative_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            uniform_mix(VICTIM_TYPES).sample_many(rng, -1)

    def test_expected_base_service(self):
        mix = RequestMix({COLLA_FILT: 0.5, TEXT_CONT: 0.5})
        expected = 0.5 * COLLA_FILT.base_service_s + 0.5 * TEXT_CONT.base_service_s
        assert mix.expected_base_service() == pytest.approx(expected)

    def test_expected_power_factor(self):
        mix = RequestMix({COLLA_FILT: 1.0})
        assert mix.expected_power_factor(1.0) == pytest.approx(
            COLLA_FILT.power_intensity
        )


class TestAliosMix:
    def test_dominated_by_light_traffic(self):
        mix = alios_mix()
        weights = dict(zip(mix.types, mix.weights))
        assert weights[TEXT_CONT] > 0.5

    def test_contains_all_victim_types(self):
        assert set(alios_mix().types) == set(VICTIM_TYPES)

    def test_uniform_mix_equal_weights(self):
        mix = uniform_mix((COLLA_FILT, K_MEANS))
        assert mix.weights == (0.5, 0.5)

    def test_uniform_mix_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_mix(())
