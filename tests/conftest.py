"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import FrequencyLadder, Rack, Server, ServerPowerModel
from repro.metrics import MetricsCollector
from repro.sim import EventEngine


@pytest.fixture
def engine() -> EventEngine:
    """A fresh event engine at t=0."""
    return EventEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def power_model() -> ServerPowerModel:
    """The paper's 100 W leaf-node power model."""
    return ServerPowerModel()


@pytest.fixture
def ladder() -> FrequencyLadder:
    """The paper's 1.2–2.4 GHz ladder."""
    return FrequencyLadder()


@pytest.fixture
def collector() -> MetricsCollector:
    """An empty metrics collector."""
    return MetricsCollector()


@pytest.fixture
def server(engine, rng, collector) -> Server:
    """One default server wired to the collector."""
    return Server(
        server_id=0,
        engine=engine,
        rng=rng,
        completion_sink=collector.sink,
    )


@pytest.fixture
def rack(engine, rng, collector) -> Rack:
    """A four-server paper rack wired to the collector."""
    return Rack(
        engine=engine,
        num_servers=4,
        rng=rng,
        completion_sink=collector.sink,
    )
