"""Unit tests for windowed latency timelines."""

import math

import numpy as np
import pytest

from repro.metrics.timeline import LatencyTimeline
from repro.network import CompletionRecord, Request, RequestOutcome
from repro.workloads import TEXT_CONT, TrafficClass


def rec(arrival, rt=0.1, completed=True):
    req = Request(TEXT_CONT, 0, TrafficClass.NORMAL, arrival)
    outcome = (
        RequestOutcome.COMPLETED if completed else RequestOutcome.DROPPED_TOKEN
    )
    return CompletionRecord(req, outcome, arrival + rt if completed else arrival)


class TestBucketing:
    def test_grid_covers_span(self):
        records = [rec(t) for t in (0.0, 5.0, 25.0)]
        timeline = LatencyTimeline(records, bucket_s=10.0)
        assert len(timeline) == 3
        assert timeline.buckets[0].start_s == 0.0
        assert timeline.buckets[-1].end_s == pytest.approx(30.0)

    def test_records_assigned_to_buckets(self):
        records = [rec(1.0), rec(2.0), rec(15.0)]
        timeline = LatencyTimeline(records, bucket_s=10.0, start_s=0.0, end_s=20.0)
        assert timeline.buckets[0].offered == 2
        assert timeline.buckets[1].offered == 1

    def test_explicit_bounds_filter_records(self):
        records = [rec(1.0), rec(50.0)]
        timeline = LatencyTimeline(records, bucket_s=10.0, start_s=0.0, end_s=20.0)
        assert sum(b.offered for b in timeline.buckets) == 1

    def test_boundary_record_lands_in_last_bucket(self):
        records = [rec(0.0), rec(20.0)]
        timeline = LatencyTimeline(records, bucket_s=10.0, start_s=0.0, end_s=20.0)
        assert timeline.buckets[-1].offered == 1


class TestStatistics:
    def test_per_bucket_means(self):
        records = [rec(1.0, rt=0.1), rec(2.0, rt=0.3), rec(15.0, rt=0.5)]
        timeline = LatencyTimeline(records, bucket_s=10.0, start_s=0.0, end_s=20.0)
        means = timeline.means()
        assert means[0] == pytest.approx(0.2)
        assert means[1] == pytest.approx(0.5)

    def test_empty_bucket_is_nan(self):
        records = [rec(1.0), rec(25.0)]
        timeline = LatencyTimeline(records, bucket_s=10.0, start_s=0.0, end_s=30.0)
        assert math.isnan(timeline.means()[1])

    def test_drop_fraction(self):
        records = [rec(1.0), rec(2.0, completed=False)]
        timeline = LatencyTimeline(records, bucket_s=10.0)
        assert timeline.buckets[0].drop_fraction == pytest.approx(0.5)

    def test_worst_bucket(self):
        records = [rec(1.0, rt=0.1), rec(15.0, rt=0.9)]
        timeline = LatencyTimeline(records, bucket_s=10.0)
        assert timeline.worst_bucket().stats.mean == pytest.approx(0.9)

    def test_series_lengths_match(self):
        records = [rec(float(t)) for t in range(30)]
        timeline = LatencyTimeline(records, bucket_s=5.0)
        n = len(timeline)
        assert len(timeline.times()) == n
        assert len(timeline.p90s()) == n
        assert len(timeline.offered()) == n


class TestIntegration:
    def test_attack_visible_in_timeline(self):
        """The DOPE onset appears as a step in the mean-latency series."""
        from repro import BudgetLevel, CappingScheme, DataCenterSimulation
        from repro import SimulationConfig
        from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix

        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=3),
            scheme=CappingScheme(),
        )
        sim.add_normal_traffic(rate_rps=40)
        sim.add_flood(
            mix=uniform_mix((COLLA_FILT, K_MEANS)),
            rate_rps=250,
            num_agents=20,
            start_s=60,
        )
        sim.run(120.0)
        timeline = LatencyTimeline(
            sim.collector.filtered(traffic_class=TrafficClass.NORMAL),
            bucket_s=20.0,
            start_s=0.0,
            end_s=120.0,
        )
        means = timeline.means()
        pre = np.nanmean(means[:3])   # 0-60 s
        post = np.nanmean(means[4:])  # 80-120 s
        assert post > 2.0 * pre

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyTimeline([], bucket_s=10.0)
        with pytest.raises(ValueError):
            LatencyTimeline([rec(0.0)], bucket_s=0.0)
