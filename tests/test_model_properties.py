"""Property-based tests for the physical model invariants.

Three families of invariants the paper's numbers silently depend on:

* **Power monotonicity** — server power never decreases when
  utilization (busy workers) or frequency rises; DVFS capping relies on
  this slope having one sign.
* **Battery bounds** — no operation sequence can drive the stored
  energy below zero or above capacity, and the cumulative flow
  counters reconcile exactly with the state of charge.
* **Energy conservation** — over any simulated scenario,
  ``battery_out + grid == load``: every joule the rack consumed came
  from either the utility or the battery, and the battery's SoC delta
  accounts for what it delivered and absorbed.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AntiDopeScheme,
    BudgetLevel,
    DataCenterSimulation,
    ShavingScheme,
    SimulationConfig,
)
from repro.cluster import ServerPowerModel
from repro.power import Battery
from repro.workloads import ALL_TYPES, COLLA_FILT, K_MEANS, uniform_mix

# ----------------------------------------------------------------------
# Server power: monotone in utilization and in frequency
# ----------------------------------------------------------------------

ratios = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
worker_sets = st.lists(
    st.sampled_from(ALL_TYPES), min_size=0, max_size=8
)


class TestPowerMonotonicity:
    @given(active=worker_sets, extra=st.sampled_from(ALL_TYPES), r=ratios)
    def test_power_monotone_in_utilization(self, active, extra, r):
        """Adding one busy worker never lowers server power."""
        model = ServerPowerModel()
        assert model.power(active + [extra], r) >= model.power(active, r) - 1e-12

    @given(active=worker_sets, r1=ratios, r2=ratios)
    def test_power_monotone_in_frequency(self, active, r1, r2):
        """Raising the V/F point never lowers power for a fixed load."""
        model = ServerPowerModel()
        lo, hi = min(r1, r2), max(r1, r2)
        assert model.power(active, lo) <= model.power(active, hi) + 1e-12

    @given(r=ratios, n=st.integers(min_value=0, max_value=8))
    def test_utilization_slope_matches_worker_power(self, r, n):
        """Total power decomposes into idle floor + per-worker terms."""
        model = ServerPowerModel()
        expected = model.idle_power(r) + n * model.worker_power(COLLA_FILT, r)
        assert math.isclose(
            model.power([COLLA_FILT] * n, r), expected, rel_tol=1e-12
        )


# ----------------------------------------------------------------------
# Battery: state of charge stays within [0, capacity]
# ----------------------------------------------------------------------

battery_ops = st.lists(
    st.tuples(
        st.sampled_from(["charge", "discharge", "idle"]),
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=120.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestBatteryBounds:
    @given(
        ops=battery_ops,
        capacity_j=st.floats(min_value=100.0, max_value=50_000.0),
        soc=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_soc_never_leaves_physical_bounds(self, ops, capacity_j, soc):
        battery = Battery(
            capacity_j=capacity_j,
            max_discharge_w=400.0,
            max_charge_w=100.0,
            initial_soc=soc,
        )
        for op, power_w, dt in ops:
            if op == "charge":
                battery.charge(power_w, dt)
            elif op == "discharge":
                battery.discharge(power_w, dt)
            else:
                battery.idle()
            assert 0.0 <= battery.soc_j <= battery.capacity_j
            assert 0.0 <= battery.soc_fraction <= 1.0

    @given(ops=battery_ops)
    def test_flow_counters_reconcile_with_soc(self, ops):
        """delivered − η·absorbed always equals the SoC drawdown."""
        battery = Battery(
            capacity_j=10_000.0,
            max_discharge_w=400.0,
            max_charge_w=100.0,
            efficiency=0.9,
            initial_soc=0.5,
        )
        soc_start_j = battery.soc_j
        for op, power_w, dt in ops:
            if op == "charge":
                battery.charge(power_w, dt)
            elif op == "discharge":
                battery.discharge(power_w, dt)
            else:
                battery.idle()
        stored_j = battery.absorbed_grid_j * battery.efficiency
        assert math.isclose(
            soc_start_j - battery.soc_j,
            battery.delivered_j - stored_j,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    @given(
        power_w=st.floats(min_value=0.0, max_value=10_000.0),
        dt=st.floats(min_value=0.01, max_value=600.0),
    )
    def test_single_discharge_respects_rate_and_energy_limits(self, power_w, dt):
        battery = Battery(
            capacity_j=5_000.0, max_discharge_w=300.0, max_charge_w=100.0
        )
        delivered_w = battery.discharge(power_w, dt)
        assert 0.0 <= delivered_w <= min(power_w, 300.0) + 1e-12
        assert battery.soc_j >= 0.0


# ----------------------------------------------------------------------
# Energy accounting: battery_out + grid == load, across whole scenarios
# ----------------------------------------------------------------------

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "attack_rate": st.floats(min_value=50.0, max_value=400.0),
        "scheme": st.sampled_from([ShavingScheme, AntiDopeScheme]),
        "budget": st.sampled_from([BudgetLevel.LOW, BudgetLevel.MEDIUM]),
    }
)


class TestEnergyConservation:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(params=scenario)
    def test_battery_out_plus_grid_equals_load(self, params):
        """Conservation over a randomized seeded attack scenario."""
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=params["budget"], seed=params["seed"]),
            scheme=params["scheme"](),
        )
        sim.add_normal_traffic(rate_rps=30)
        sim.add_flood(
            mix=uniform_mix((COLLA_FILT, K_MEANS)),
            rate_rps=params["attack_rate"],
            num_agents=10,
            start_s=5.0,
        )
        battery = sim.battery
        soc_start_j = battery.soc_j
        accountant = sim.start_energy_accounting()
        sim.run(40.0)
        report = accountant.report()

        # Independent measurements: the rack integral and the battery's
        # own flow counters must be what the report was built from.
        assert report.load_energy_j >= 0.0
        assert report.battery_delivered_j >= 0.0
        assert report.battery_recharge_grid_j >= 0.0

        # battery_out + grid == load: the grid-to-load share is utility
        # minus what went into recharging, and the rest came from the UPS.
        grid_to_load_j = report.utility_energy_j - report.battery_recharge_grid_j
        assert math.isclose(
            report.battery_delivered_j + grid_to_load_j,
            report.load_energy_j,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

        # The battery's SoC delta accounts exactly for its flows.
        stored_j = report.battery_recharge_grid_j * battery.efficiency
        assert math.isclose(
            soc_start_j - battery.soc_j,
            report.battery_delivered_j - stored_j,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

        # And the battery never left its physical bounds by the end.
        assert 0.0 <= battery.soc_j <= battery.capacity_j
