"""Unit tests for the simulation configuration."""

import pytest

from repro import BudgetLevel, SimulationConfig


class TestDefaults:
    def test_paper_testbed_defaults(self):
        cfg = SimulationConfig()
        assert cfg.num_servers == 4
        assert cfg.nameplate_w == 100.0
        assert cfg.firewall_threshold_rps == 150.0
        assert cfg.battery_sustain_s == 120.0
        assert cfg.budget_level is BudgetLevel.NORMAL

    def test_rack_nameplate(self):
        assert SimulationConfig().rack_nameplate_w == 400.0

    def test_supply_scales_with_level(self):
        cfg = SimulationConfig(budget_level=BudgetLevel.LOW)
        assert cfg.supply_w == pytest.approx(320.0)


class TestDerivedCopies:
    def test_with_budget(self):
        cfg = SimulationConfig().with_budget(BudgetLevel.MEDIUM)
        assert cfg.budget_level is BudgetLevel.MEDIUM
        assert cfg.num_servers == 4

    def test_with_seed(self):
        assert SimulationConfig().with_seed(9).seed == 9

    def test_without_firewall(self):
        assert not SimulationConfig().without_firewall().use_firewall

    def test_original_unchanged(self):
        cfg = SimulationConfig()
        cfg.with_budget(BudgetLevel.LOW)
        assert cfg.budget_level is BudgetLevel.NORMAL

    def test_frozen(self):
        with pytest.raises(Exception):
            SimulationConfig().seed = 5  # type: ignore[misc]


class TestValidation:
    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_servers=0)

    def test_invalid_slot(self):
        with pytest.raises(ValueError):
            SimulationConfig(slot_s=0.0)

    def test_invalid_idle_fraction(self):
        with pytest.raises(ValueError):
            SimulationConfig(idle_fraction=1.0)

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            SimulationConfig(seed=-1)
