"""The topology matrix contract: flat identity + the tree headline.

Two halves, both CI-gated by the ``topology-equivalence`` job:

**Flat byte-identity.**  ``--topology flat`` (the default) must remain
byte-identical to the simulator as it existed *before* the power-tree
layer: the golden table below embeds the deterministic manifest hash
and the completion-CSV SHA-256 of the evaluation scenario for every
Table-2 scheme × three seeds, captured on the pre-topology tree.  Any
drift — an extra counter, a stolen RNG draw, a config-hash change from
the new ``topology`` field — fails here with the exact scheme/seed
that moved.  The hashes are frozen history: they cannot be regenerated
from this tree, so a mismatch is never "update the table", it is a
broken contract.

**Tree headline.**  The committed rack-concentration scenario is the
paper's blind spot made measurable: on the unprotected ``tree-pinned``
preset a flow-pinned flood drives one rack PDU over its budget while
the DC-feed meter — the only meter the flat model has — stays under
budget the whole run, and the exported metrics blame exactly the
violated rack.  Both engines must agree byte-for-byte on all of it.
"""

import hashlib
import io

import pytest

from repro import (
    AntiDopeScheme,
    CappingScheme,
    DataCenterSimulation,
    OnlineDetectScheme,
    PredictionScheme,
    ShavingScheme,
    SimulationConfig,
    TokenScheme,
)
from repro.analysis.export import records_to_csv, topology_summary
from repro.bench import ATTACK_MIX
from repro.cluster import FLAT_TOPOLOGY, topology_names
from repro.obs import config_hash
from repro.power import BudgetLevel
from repro.workloads import COLLA_FILT, K_MEANS, uniform_mix

SCHEMES = {
    "capping": CappingScheme,
    "shaving": ShavingScheme,
    "token": TokenScheme,
    "anti-dope": AntiDopeScheme,
    "online-detect": OnlineDetectScheme,
    "prediction": PredictionScheme,
}

SEEDS = (1, 2, 3)

#: Golden (manifest deterministic hash, completion-CSV sha256) of the
#: evaluation scenario, captured on the pre-topology tree at version
#: 1.2.0.  Frozen history — do not regenerate.
GOLDEN = {
    "anti-dope/1": (
        "c030a79c155d6f3f7210a823cef908c9024c132a5c46c29452d9969470c2e8f0",
        "6eccd34538ed54e4a9449b35c8da46278c646c9459f6bc5f1a868e4af8e70425",
    ),
    "anti-dope/2": (
        "a025fd86a06adf7958dac3a7ca660a0a3e3a6e45445d83e0093593d495c6de07",
        "1f6131a50835b21b00ecda804dac536f4a2ed7d31b2722e1cea96225f9814f52",
    ),
    "anti-dope/3": (
        "4ba72c1154e976d9c338d8252695dc68ddf6cdcfc3079605fdb1a7a0f074a008",
        "1f3742ad1f06cfaa3b5ac30566cdf08a88d410da2922edab68b3b0f4447a63c4",
    ),
    "capping/1": (
        "91e245e1ae15922d0de1116ab299954749905a5b6e43333a4a1c1898b962381e",
        "b440265f5ff599fb617ec5fff3e0c09eba3b2315f8993651cec9447bf44039f3",
    ),
    "capping/2": (
        "074ba697d320cb56025403a593a3f1c7e6d3dd20c8dbe6037d2f6bee750c06b0",
        "3334a014e7769e2d85d33bb53b0e70470cb57bd5b7e527244efdc4568c2e5cae",
    ),
    "capping/3": (
        "005ea7d6eabf26a588704d8f44914f335390a2105585756f859475ea813d020e",
        "c3eeb720ed8b39cb41aad923672c789c99d852a9df5d7a962fbb76506b46733b",
    ),
    "shaving/1": (
        "322fcade3785fff05e14adf57dfec4d404e07e057f2554d0d8bb8ffd7e9ed457",
        "90f663818d932b6abd0efdec79872b41de96805d914d25620002c8cffad92437",
    ),
    "shaving/2": (
        "97070094822f1f50ec47be4c296feba3f1a591c708a7237c13a000af138ac443",
        "0db60f41df990e63603c3c4e8ff7dfc73794ded675750c22b594d96fbbe954ee",
    ),
    "shaving/3": (
        "a87b0950c9e1f1b120d87800ce1f4cf76e1f0bfec142f15c2bafc3f616ccb627",
        "e0e64532533879eecc737c8496dfab4f5f8bdd83dfdab6e01422d838e2348dd7",
    ),
    "token/1": (
        "30115fe81a1961f622ff4f22b8e7afc316d8564feeff99e23653004296dc3568",
        "d997663e06cf94dc712ec8eddec1de0daa473c3959bc8e3fa17778afe1ffad20",
    ),
    "token/2": (
        "2a90038ec83044ba952abc85c9d63b3b12b941d459155183a07b9bc969961c26",
        "966d43e19d3a70322c8b70b4657c9defa708fddc366d847214f3a8307d40a3d4",
    ),
    "token/3": (
        "cb7a210bc03b27f8a1a33361d2d1b523e579061daca404f295b7bbfaccc0712a",
        "a274a5507ba276353cb7712db9f43d3b0afa13a104f4180f09fa7b2b150e19ae",
    ),
    # online-detect joined the matrix later; its entries were captured
    # on the tree that introduced the scheme and are frozen from that
    # point on, like the four above.
    "online-detect/1": (
        "7de62dd29f2b2b88e1a02a96d342bea8732c4e2eaf2c946746affea0c41c85f8",
        "0e73ffe6edb51bcc4125d86a8f04eca6afbdde502a82926e11790d7c26f2f3ea",
    ),
    "online-detect/2": (
        "f473cb0395c11c3e4229b3270610f0289d06474500605723e902c6b6c81d89f5",
        "9871c32cdb704a79221df15e3d871010e7e99c4ec106e3e59b32c7c119de6726",
    ),
    "online-detect/3": (
        "c0994d1ddb40859fe30e3469a8566fc42085a00c731d1f18a6dbb5f3b63f4398",
        "2f36a2805e50db40898bc2fdc2563a4c19ed7b93e66002c38a6a71723836610b",
    ),
    # prediction joined the matrix with the sixth scheme; its entries
    # were captured on the tree that introduced it and are frozen from
    # that point on, like the five above.
    "prediction/1": (
        "805017597fda17a72d3b89a54388f83cde4cf973d7cad47f4480a9cd763d3bee",
        "8473379c18a870bb5e7e1791bcb7d7db61fdc3622fd94b33177719a63a250595",
    ),
    "prediction/2": (
        "e66e855d0de8e5dca91f7873f252046c6093e1a11c4dd013d113a1cec2fea48b",
        "9a40cca25465362dea8ad6ab365ff29356a3e6e859eb1fc85f323081ec730491",
    ),
    "prediction/3": (
        "81a4021e5a76cafcc575ed0851e2df123f7f87a4b1b642aa10d0f298b8436093",
        "4e5d5dc5b04b9c3b413e9b2368000e4dd4ed1fe9f5f9069334aaccafad4836a0",
    ),
}

#: config_hash of the default SimulationConfig on the pre-topology
#: tree.  The flat config must serialise *without* a topology key so
#: every cached experiment and committed manifest keeps its identity.
DEFAULT_CONFIG_HASH = (
    "d93295030bb31fd41afa2fe5607e3a73be68e7a86b249ac0c33c9cc7bedaddf9"
)


def _golden_run(scheme_name: str, seed: int) -> DataCenterSimulation:
    sim = DataCenterSimulation(
        SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed),
        scheme=SCHEMES[scheme_name](),
    )
    sim.add_normal_traffic(rate_rps=40.0)
    sim.add_flood(mix=ATTACK_MIX, rate_rps=220.0, num_agents=20, start_s=5.0)
    sim.run(20.0)
    return sim


def _csv_sha256(sim: DataCenterSimulation) -> str:
    buffer = io.StringIO()
    records_to_csv(sim.collector.records, buffer)
    return hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_flat_default_matches_pre_topology_golden(scheme_name, seed):
    sim = _golden_run(scheme_name, seed)
    manifest_hash, csv_hash = GOLDEN[f"{scheme_name}/{seed}"]
    assert sim.run_manifest("golden-flat").deterministic_hash() == manifest_hash
    assert _csv_sha256(sim) == csv_hash


def test_default_config_hash_is_unchanged():
    cfg = SimulationConfig()
    assert cfg.topology == FLAT_TOPOLOGY
    assert config_hash(cfg.to_dict()) == DEFAULT_CONFIG_HASH
    # The topology key must be absent from the flat serialised form —
    # its presence would silently re-key every cached experiment.
    assert "topology" not in cfg.to_dict()


def test_explicit_flat_is_the_default():
    assert (
        SimulationConfig.for_topology(FLAT_TOPOLOGY).to_dict()
        == SimulationConfig().to_dict()
    )


def test_flat_runs_emit_no_topology_or_fabric_telemetry():
    sim = _golden_run("capping", 1)
    names = sim.engine.obs.counters.as_dict()
    assert not any(n.startswith(("topology.", "fabric.")) for n in names)
    assert sim.topology is None
    assert sim.topology_monitor is None
    assert sim.fabric is None
    assert sim.topology_report() is None


@pytest.mark.parametrize(
    "topology", [n for n in topology_names() if n != FLAT_TOPOLOGY]
)
def test_tree_presets_are_engine_identical(topology):
    hashes = []
    for mode in ("scalar", "batched"):
        cfg = SimulationConfig.for_topology(
            topology, budget_level=BudgetLevel.LOW, seed=1
        )
        sim = DataCenterSimulation(cfg, engine_mode=mode)
        sim.add_normal_traffic(rate_rps=40.0)
        sim.add_flood(
            mix=ATTACK_MIX, rate_rps=220.0, num_agents=20, start_s=5.0
        )
        sim.run(20.0)
        hashes.append(sim.run_manifest("tree-eq").deterministic_hash())
    assert hashes[0] == hashes[1]


# ----------------------------------------------------------------------
# The committed headline scenario
# ----------------------------------------------------------------------

HEADLINE_SEED = 3
HEADLINE_RATE_RPS = 300.0
HEADLINE_AGENTS = 8
HEADLINE_DURATION_S = 30.0
HEADLINE_MIX = uniform_mix((COLLA_FILT, K_MEANS))


def _headline_run(engine_mode: str) -> DataCenterSimulation:
    """The rack-concentration scenario on the unprotected pinned tree."""
    cfg = SimulationConfig.for_topology(
        "tree-pinned", budget_level=BudgetLevel.LOW, seed=HEADLINE_SEED
    )
    sim = DataCenterSimulation(cfg, engine_mode=engine_mode)
    sim.add_normal_traffic(rate_rps=40.0)
    sim.add_flood(
        mix=HEADLINE_MIX,
        rate_rps=HEADLINE_RATE_RPS,
        num_agents=HEADLINE_AGENTS,
        start_s=5.0,
        closed_loop=False,
    )
    sim.run(HEADLINE_DURATION_S)
    return sim


@pytest.fixture(scope="module")
def headline_sim() -> DataCenterSimulation:
    return _headline_run("scalar")


def test_headline_rack_violates_while_feed_meter_stays_under(headline_sim):
    sim = headline_sim
    summary = topology_summary(sim.topology_monitor, sim.meter, sim.budget)
    # The facility meter — the only view the flat model has — says the
    # run is fine...
    assert summary["feed_meter"]["violated"] is False
    assert summary["feed_meter"]["peak_power_w"] < summary["feed_meter"]["budget_w"]
    # ...while a rack PDU spent sampled slots over its own budget.
    rack_violations = {
        name: node["violation_slots"]
        for name, node in summary["nodes"].items()
        if node["kind"] == "rack" and node["violation_slots"] > 0
    }
    assert rack_violations, "expected at least one violated rack PDU"
    # No perimeter detection explains it away: the firewall never fired.
    assert sim.firewall.stats.bans == 0


def test_headline_violation_is_attributed_to_the_rack(headline_sim):
    sim = headline_sim
    summary = topology_summary(sim.topology_monitor, sim.meter, sim.budget)
    blamed = summary["deepest_violator"]
    assert blamed is not None
    node = summary["nodes"][blamed]
    assert node["kind"] == "rack"
    # The blamed rack is itself a violated node, and its violations are
    # deepest ones — blame lands on the PDU that would physically trip,
    # not on the row or feed above it.
    assert node["violation_slots"] > 0
    assert node["deepest_violation_slots"] > 0
    assert node["peak_w"] > node["budget_w"]
    # Attribution also lives in the counter table for metrics export.
    counters = sim.engine.obs.counters
    assert counters.get(f"topology.deepest_violation_slots.{blamed}") == (
        node["deepest_violation_slots"]
    )


def test_headline_scenario_is_engine_identical(headline_sim):
    batched = _headline_run("batched")
    assert (
        headline_sim.run_manifest("headline").deterministic_hash()
        == batched.run_manifest("headline").deterministic_hash()
    )


def test_headline_summary_is_json_ready(headline_sim):
    import json

    summary = topology_summary(
        headline_sim.topology_monitor, headline_sim.meter, headline_sim.budget
    )
    round_tripped = json.loads(json.dumps(summary, allow_nan=False))
    assert round_tripped["deepest_violator"] == summary["deepest_violator"]
