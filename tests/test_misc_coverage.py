"""Targeted tests for paths not covered by module-focused suites."""

import math

import numpy as np
import pytest

from repro import (
    BudgetLevel,
    DataCenterSimulation,
    NullScheme,
    SimulationConfig,
)
from repro.network import SourceRegistry
from repro.workloads import COLLA_FILT, TrafficClass


class TestSimulationDopeAttacker:
    def test_add_dope_attacker_wires_firewall(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        attacker = sim.add_dope_attacker(
            initial_rate_rps=40.0,
            rate_step_rps=40.0,
            max_rate_rps=200.0,
            num_agents=10,
            adjust_interval_s=10.0,
        )
        assert attacker.firewall is sim.firewall
        assert attacker in sim.attackers
        sim.run(30.0)
        assert attacker.generator.generated > 0
        # Adjustments at t=10, 20 and 30 (deadline events execute).
        assert len(attacker.stats.adjustments) == 3


class TestNormalTrafficValidation:
    def test_peak_below_base_rejected(self):
        from repro.trace import SyntheticAlibabaTrace

        sim = DataCenterSimulation(SimulationConfig(seed=1))
        trace = SyntheticAlibabaTrace().generate(4, 600, 60, seed=0)
        with pytest.raises(ValueError, match="peak"):
            sim.add_normal_traffic(
                rate_rps=50.0, trace=trace, trace_peak_rate_rps=10.0
            )

    def test_invalid_rate_rejected(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        with pytest.raises(ValueError):
            sim.add_normal_traffic(rate_rps=0.0)

    def test_invalid_user_count_rejected(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        with pytest.raises(ValueError):
            sim.add_normal_traffic(rate_rps=10.0, num_users=0)

    def test_custom_mix_respected(self):
        from repro.workloads import RequestMix

        sim = DataCenterSimulation(SimulationConfig(seed=1))
        sim.add_normal_traffic(
            rate_rps=50.0, mix=RequestMix({COLLA_FILT: 1.0})
        )
        sim.run(10.0)
        types = {r.type_name for r in sim.collector.records}
        assert types == {"colla-filt"}


class TestEngineEdgeCases:
    def test_every_stop_before_first_fire(self, engine):
        fired = []
        stop = engine.every(5.0, lambda: fired.append(1))
        stop()
        engine.run(until=20.0)
        assert fired == []

    def test_monitor_priority_sees_workload_of_same_instant(self, engine):
        """A monitor scheduled at the same timestamp as a workload event
        observes the state *after* the workload event ran."""
        from repro.sim.events import PRIORITY_MONITOR

        state = {"x": 0}
        seen = []
        engine.schedule(1.0, lambda: state.update(x=1))
        engine.schedule(1.0, lambda: seen.append(state["x"]), PRIORITY_MONITOR)
        engine.run()
        assert seen == [1]

    def test_dispatched_counter(self, engine):
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.dispatched == 5


class TestSchemeBaseBehaviour:
    def test_null_scheme_never_touches_levels(self):
        sim = DataCenterSimulation(
            SimulationConfig(budget_level=BudgetLevel.LOW, seed=1),
            scheme=NullScheme(),
        )
        sim.add_flood(mix=COLLA_FILT, rate_rps=300, num_agents=20)
        sim.run(30.0)
        assert sim.rack.levels() == [12] * 4
        # And the budget is violated with impunity.
        assert sim.meter.peak_power() > sim.budget.supply_w

    def test_predict_power_for_subset(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        subset = sim.rack.servers[:2]
        predicted = sim.scheme.predict_power_at_level(0, subset)
        # Two servers throttled to min, two at nominal idle.
        expected = 2 * sim.rack.power_model.idle_power(0.5) + 2 * (
            sim.rack.power_model.idle_power(1.0)
        )
        assert predicted == pytest.approx(expected)


class TestRegistryInSimulation:
    def test_populations_get_disjoint_ids(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        sim.add_normal_traffic(rate_rps=10.0, num_users=50)
        sim.add_flood(mix=COLLA_FILT, rate_rps=10.0, num_agents=25, label="a")
        sim.add_flood(mix=COLLA_FILT, rate_rps=10.0, num_agents=25, label="b")
        pools = sim.registry.pools
        assert len(pools) == 3
        all_ids = [i for p in pools for i in p.ids]
        assert len(all_ids) == len(set(all_ids)) == 100

    def test_duplicate_labels_rejected(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1))
        sim.add_flood(mix=COLLA_FILT, rate_rps=10.0, label="x")
        with pytest.raises(ValueError):
            sim.add_flood(mix=COLLA_FILT, rate_rps=10.0, label="x")


class TestMeterInterval:
    def test_custom_meter_interval(self):
        sim = DataCenterSimulation(SimulationConfig(seed=1, meter_interval_s=0.25))
        sim.run(2.0)
        assert len(sim.meter) == 9  # t=0 plus 8 quarter-second samples


class TestRegionAnalyzerValidation:
    def test_empty_sweep_rejected(self):
        from repro.analysis import DopeRegionAnalyzer

        analyzer = DopeRegionAnalyzer(window_s=5.0)
        with pytest.raises(ValueError):
            analyzer.sweep([], [10.0])
        with pytest.raises(ValueError):
            analyzer.sweep([COLLA_FILT], [])

    def test_probe_rate_validated(self):
        from repro.analysis import DopeRegionAnalyzer

        analyzer = DopeRegionAnalyzer(window_s=5.0)
        with pytest.raises(ValueError):
            analyzer.probe(COLLA_FILT, rate_rps=0.0)
