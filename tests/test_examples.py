"""Smoke tests: every example script runs end-to-end.

The heavier examples are shrunk via their module constants / argv so
the suite stays fast; the assertions check each script's headline
output exists, not its exact numbers.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesPresent:
    def test_at_least_five_examples(self):
        scripts = sorted(p.stem for p in EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        assert "quickstart" in scripts

    @pytest.mark.parametrize(
        "name",
        [p.stem for p in sorted(EXAMPLES.glob("*.py"))],
    )
    def test_example_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None))


class TestExamplesRun:
    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.DURATION = 90.0
        module.ATTACK_START = 30.0
        module.main()
        out = capsys.readouterr().out
        assert "Anti-DOPE" in out
        assert "improvement" in out

    def test_region_example_runs(self, capsys, monkeypatch):
        module = load_example("characterize_dope_region")
        monkeypatch.setattr(
            sys, "argv", ["x", "--budget", "low", "--rates", "50", "300"]
        )
        module.main()
        out = capsys.readouterr().out
        assert "DOPE region map" in out

    def test_defend_example_runs(self, capsys):
        module = load_example("defend_with_anti_dope")
        module.DURATION = 90.0
        module.main()
        out = capsys.readouterr().out
        assert "suspect list" in out
        assert "normal users" in out

    def test_adaptive_attacker_runs(self, capsys):
        module = load_example("adaptive_attacker")
        module.DURATION = 120.0
        module.main()
        out = capsys.readouterr().out
        assert "probe-and-adjust" in out
        assert "converged" in out

    def test_elastic_infrastructure_runs(self, capsys):
        module = load_example("elastic_infrastructure")
        module.main()
        out = capsys.readouterr().out
        assert "auto-scaled" in out
        assert "water-filling" in out.lower()
