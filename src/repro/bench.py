"""Machine-readable benchmarks: the engine behind ``repro bench``.

One call to :func:`run_bench` exercises the simulator's two hot paths —
the Table-2 evaluation scenario (normal load + DOPE flood under
Anti-DOPE) and the Fig-11 region sweep through the cached experiment
runner — with a single shared :class:`~repro.obs.Recorder`, and returns
one JSON-ready payload in the ``repro-bench/1`` schema:

* **headline** — ``events_per_wall_s``: simulator events dispatched per
  wall-clock second inside the event loop, the throughput number CI
  regression-checks (``scripts/bench_compare.py``);
* **counters** — the deterministic counter table (same-seed runs are
  identical);
* **timings_s / phases** — segregated wall-clock (never part of any
  deterministic hash);
* **derived** — headline plus sim-time-per-wall-second and the runner
  cache hit rate measured by a cold-then-warm sweep pass.

The scenario constants here are the single source shared with the
figure/table bench suite (``benchmarks/_support.py`` imports them), so
``repro bench`` measures the same workload the benches assert on.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ._version import __version__
from .analysis import DopeRegionAnalyzer
from .core import AntiDopeScheme
from .detect import OnlineDetectScheme
from .faults import FaultInjector, FaultPlan
from .obs import BENCH_SCHEMA_ID, Recorder, config_hash, validate_bench_payload
from .power import BudgetLevel, CappingScheme, PredictionScheme
from .runner import ResultCache
from .sim import DataCenterSimulation, SimulationConfig
from .sim.engine import (
    ENGINE_SELECT_ENV,
    ENGINE_SELECTIONS,
    EventEngine,
    engine_from_env,
    resolve_engine_selection,
)
from .workloads import (
    COLLA_FILT,
    K_MEANS,
    TEXT_CONT,
    VOLUME_DOS,
    WORD_COUNT,
    RequestMix,
    RequestType,
    uniform_mix,
)

__all__ = [
    "SEED",
    "ATTACK_START_S",
    "MEASURE_FROM_S",
    "DURATION_S",
    "ATTACK_RATE_RPS",
    "NORMAL_RATE_RPS",
    "ATTACK_MIX",
    "REGION_TYPES",
    "REGION_RATES_RPS",
    "VOLUME_RATE_RPS",
    "VOLUME_AGENTS",
    "VOLUME_POLL_S",
    "BENCH_ENGINE_ENV",
    "BENCH_ENGINES",
    "bench_engine",
    "resolve_engine",
    "BenchPlan",
    "plan_for",
    "run_bench",
]

# ----------------------------------------------------------------------
# Evaluation-scenario constants (shared with benchmarks/_support.py)
# ----------------------------------------------------------------------

#: Master seed of the evaluation scenario.
SEED = 7

#: Attack onset within the evaluation window.
ATTACK_START_S = 30.0

#: Start of the steady-state measurement window.
MEASURE_FROM_S = 60.0

#: Full evaluation-scenario duration.
DURATION_S = 240.0

# Attack sized at roughly the rack's nominal-frequency service capacity:
# strong enough that power-fitting DVFS pushes the cluster into overload
# (the paper's degradation regime) while Normal-PB stays serviceable.
ATTACK_RATE_RPS = 220.0

#: Legitimate background load of the evaluation scenario.
NORMAL_RATE_RPS = 40.0

#: The DOPE flood's request mix (high-power catalog types).
ATTACK_MIX: RequestMix = uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT))

# Volume-flood phase: the paper's network-layer volume DoS — a raw
# open-loop deluge the perimeter firewall absorbs after detection.
# Network-layer floods run orders of magnitude above application
# capacity; sized so each agent (rate/agents = 1200 rps/source) trips
# the DDoS-deflate threshold at the very first poll, leaving most of
# the window provably steady: the workload the batched/fluid engine
# exists for.
VOLUME_RATE_RPS = 12000.0
VOLUME_AGENTS = 10
#: Faster perimeter polling for the volume phase only (short detection
#: lag keeps the phase about absorption, not about queue explosions).
VOLUME_POLL_S = 1.0

#: Environment variable selecting the bench execution engine.
BENCH_ENGINE_ENV = ENGINE_SELECT_ENV

#: Valid bench engine names: the two engine modes plus ``"fluid"``
#: (the batched engine with hybrid fluid integration opted in).
BENCH_ENGINES = ENGINE_SELECTIONS


def bench_engine() -> str:
    """The bench execution engine selected by ``REPRO_BENCH_ENGINE``.

    Defaults to ``"fluid"`` — the bench measures the simulator at full
    speed; export ``REPRO_BENCH_ENGINE=scalar`` (or ``batched``) to
    baseline the other paths with the same scenarios.
    """
    return engine_from_env(default="fluid")


def resolve_engine(engine: str) -> Tuple[str, bool]:
    """Map a bench engine name to ``(EventEngine mode, fluid flag)``."""
    return resolve_engine_selection(engine)


#: The Fig 11 region-grid axes shared by the bench and the perf suite.
REGION_TYPES: Tuple[RequestType, ...] = (
    COLLA_FILT,
    K_MEANS,
    WORD_COUNT,
    TEXT_CONT,
    VOLUME_DOS,
)
REGION_RATES_RPS: Tuple[float, ...] = (50.0, 150.0, 300.0, 600.0)


# ----------------------------------------------------------------------
# Bench plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchPlan:
    """Workload sizing of one bench mode."""

    mode: str
    attack_duration_s: float
    attack_repetitions: int
    region_types: Tuple[RequestType, ...]
    region_rates_rps: Tuple[float, ...]
    region_window_s: float
    chaos_duration_s: float
    volume_duration_s: float
    tree_duration_s: float
    online_detect_duration_s: float
    prediction_duration_s: float


def plan_for(mode: str) -> BenchPlan:
    """The sizing of ``"smoke"`` (seconds, CI) or ``"full"`` (minutes)."""
    if mode == "smoke":
        return BenchPlan(
            mode="smoke",
            attack_duration_s=60.0,
            attack_repetitions=3,
            region_types=REGION_TYPES[:2],
            region_rates_rps=REGION_RATES_RPS[:2],
            region_window_s=20.0,
            chaos_duration_s=30.0,
            volume_duration_s=60.0,
            tree_duration_s=30.0,
            online_detect_duration_s=30.0,
            prediction_duration_s=30.0,
        )
    if mode == "full":
        return BenchPlan(
            mode="full",
            attack_duration_s=DURATION_S,
            attack_repetitions=3,
            region_types=REGION_TYPES,
            region_rates_rps=REGION_RATES_RPS,
            region_window_s=50.0,
            chaos_duration_s=90.0,
            volume_duration_s=120.0,
            tree_duration_s=90.0,
            online_detect_duration_s=90.0,
            prediction_duration_s=90.0,
        )
    raise ValueError(f"mode must be 'smoke' or 'full', got {mode!r}")


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_bench(
    mode: str = "smoke",
    seed: int = SEED,
    name: str = "bench",
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Run the bench scenario and return a ``repro-bench/1`` payload.

    Phases share one recorder: the evaluation scenario under Anti-DOPE
    (drives the engine/cluster/network/power counters), a short chaos
    run, the volume-flood absorption phase (where the batched/fluid
    engine's cohort and analytic-integration paths carry the event
    throughput), the tree-topology phase (flowlet ECMP plus per-PDU
    enforcement on the ``tree-dc`` preset), then the region sweep twice
    against a fresh temporary cache — a cold pass (all misses) and a
    warm pass (all hits) — so the payload reports a real runner cache
    hit rate.  Each ``phases`` row carries its own ``events`` /
    ``events_per_wall_s`` so the per-phase regression gate can check
    phases individually.

    The evaluation scenario runs ``attack_repetitions`` times and the
    payload keeps the **fastest** repetition (standard best-of-N:
    repetitions are identical same-seed runs, so the fastest one is the
    least noise-polluted measurement of the event loop).  Counters are
    the same for every repetition, so best-of-N changes no
    deterministic output; for a fixed engine the ``counters`` table is
    deterministic per seed and every wall-clock number stays in
    ``timings_s``/``phases``/``derived``.

    *engine* overrides the ``REPRO_BENCH_ENGINE`` selection (default
    ``"fluid"``); it is recorded in the payload's ``engine`` field.
    """
    plan = plan_for(mode)
    engine_name = engine if engine is not None else bench_engine()
    engine_mode, engine_fluid = resolve_engine(engine_name)
    recorder = Recorder()
    cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed)

    # Events dispatched inside each bench phase, keyed by phase name.
    # Phases run sequentially against the shared recorder, so a phase's
    # events are the counter delta across it; the attack phase instead
    # reads the kept repetition's private recorder directly.
    phase_events: Dict[str, float] = {}

    def _events_now() -> float:
        return float(recorder.counters.get("engine.events_dispatched"))

    best: Recorder = _attack_repetition(cfg, plan, engine_mode, engine_fluid)
    for _ in range(plan.attack_repetitions - 1):
        candidate = _attack_repetition(cfg, plan, engine_mode, engine_fluid)
        if _engine_throughput(candidate) > _engine_throughput(best):
            best = candidate
    phase_events["bench.attack_scenario"] = float(
        best.counters.get("engine.events_dispatched")
    )
    recorder.counters.merge(best.counters)
    recorder.timers.merge(best.timers)

    mark = _events_now()
    _chaos_scenario(cfg, plan, recorder, engine_mode, engine_fluid)
    phase_events["bench.chaos_scenario"] = _events_now() - mark
    mark = _events_now()
    _volume_flood_scenario(plan, recorder, seed, engine_mode, engine_fluid)
    phase_events["bench.volume_flood"] = _events_now() - mark
    mark = _events_now()
    _tree_topology_scenario(plan, recorder, seed, engine_mode, engine_fluid)
    phase_events["bench.tree_topology"] = _events_now() - mark
    mark = _events_now()
    _online_detect_scenario(plan, recorder, seed, engine_mode, engine_fluid)
    phase_events["bench.online_detect"] = _events_now() - mark
    mark = _events_now()
    _prediction_scenario(plan, recorder, seed, engine_mode, engine_fluid)
    phase_events["bench.prediction"] = _events_now() - mark

    analyzer = DopeRegionAnalyzer(
        config=SimulationConfig(budget_level=BudgetLevel.MEDIUM, seed=seed),
        window_s=plan.region_window_s,
        num_agents=20,
        background_rate_rps=20.0,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        cache = ResultCache(tmp)
        mark = _events_now()
        with recorder.timers.phase("bench.region_sweep_cold"):
            analyzer.sweep(
                plan.region_types,
                plan.region_rates_rps,
                cache=cache,
                recorder=recorder,
            )
        phase_events["bench.region_sweep_cold"] = _events_now() - mark
        mark = _events_now()
        with recorder.timers.phase("bench.region_sweep_warm"):
            analyzer.sweep(
                plan.region_types,
                plan.region_rates_rps,
                cache=cache,
                recorder=recorder,
            )
        phase_events["bench.region_sweep_warm"] = _events_now() - mark

    counters = recorder.counters.as_dict()
    timings = recorder.timers.as_dict()
    payload = {
        "schema": BENCH_SCHEMA_ID,
        "name": name,
        "mode": plan.mode,
        "engine": engine_name,
        "version": __version__,
        "seed": seed,
        "config_hash": config_hash(cfg.to_dict()),
        "headline": {},
        "counters": counters,
        "timings_s": timings,
        "derived": _derive(counters, timings),
        "phases": [
            _phase_entry(phase_name, entry, phase_events)
            for phase_name, entry in timings.items()
            if phase_name.startswith("bench.")
        ],
    }
    derived = payload["derived"]
    payload["headline"] = {
        "metric": "events_per_wall_s",
        "value": derived["events_per_wall_s"],  # type: ignore[index]
    }
    errors = validate_bench_payload(payload)
    if errors:
        raise ValueError(
            "bench payload failed validation: " + "; ".join(errors)
        )
    return payload


def _attack_repetition(
    cfg: SimulationConfig, plan: BenchPlan, mode: str, fluid: bool
) -> Recorder:
    """One timed run of the evaluation scenario; returns its recorder."""
    recorder = Recorder()
    with recorder.timers.phase("bench.attack_scenario"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        sim = DataCenterSimulation(cfg, scheme=AntiDopeScheme(), engine=engine)
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_flood(
            mix=ATTACK_MIX,
            rate_rps=ATTACK_RATE_RPS,
            num_agents=20,
            start_s=ATTACK_START_S,
        )
        sim.run(plan.attack_duration_s)
    return recorder


def _chaos_scenario(
    cfg: SimulationConfig,
    plan: BenchPlan,
    recorder: Recorder,
    mode: str,
    fluid: bool,
) -> None:
    """A short faulted run exercising the degradation paths.

    Anti-DOPE under the flood with a mid-window server crash and meter
    noise — small relative to the attack repetitions, but it keeps the
    fault/degradation code on the measured path so a regression there
    shows up in the bench counters and timings.
    """
    with recorder.timers.phase("bench.chaos_scenario"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        sim = DataCenterSimulation(cfg, scheme=AntiDopeScheme(), engine=engine)
        crash_at_s = plan.chaos_duration_s / 2.0
        fault_plan = (
            FaultPlan(seed=cfg.seed)
            .meter_noise(ATTACK_START_S / 2.0, sigma_w=8.0)
            .server_crash(crash_at_s, 0, plan.chaos_duration_s / 4.0)
        )
        FaultInjector(sim, fault_plan).arm()
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_flood(
            mix=ATTACK_MIX,
            rate_rps=ATTACK_RATE_RPS,
            num_agents=20,
            start_s=ATTACK_START_S / 2.0,
        )
        sim.run(plan.chaos_duration_s)


def _volume_flood_scenario(
    plan: BenchPlan,
    recorder: Recorder,
    seed: int,
    mode: str,
    fluid: bool,
) -> None:
    """The perimeter-absorption phase: a raw volume DoS vs the firewall.

    An open-loop Poisson deluge of :data:`VOLUME_DOS` requests from a
    small agent pool, each agent far above the DDoS-deflate threshold —
    the paper's network-layer flood (Figs. 3/5), which the firewall
    detects at its first poll and then rejects wholesale.  After
    detection the workload is provably steady, which is exactly what
    the batched engine's cohort run-ahead and the fluid engine's
    analytic segment integration accelerate; on the scalar engine the
    same phase grinds through every arrival individually.  This phase
    dominates the headline event count by design: it measures the
    million-events regime the aggregate-flow refactor targets.
    """
    with recorder.timers.phase("bench.volume_flood"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        cfg = SimulationConfig(
            budget_level=BudgetLevel.LOW,
            seed=seed,
            firewall_poll_s=VOLUME_POLL_S,
        )
        sim = DataCenterSimulation(cfg, engine=engine)
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_flood(
            mix=VOLUME_DOS,
            rate_rps=VOLUME_RATE_RPS,
            num_agents=VOLUME_AGENTS,
            closed_loop=False,
            poisson=True,
            label="volume-dos",
        )
        sim.run(plan.volume_duration_s)


def _tree_topology_scenario(
    plan: BenchPlan,
    recorder: Recorder,
    seed: int,
    mode: str,
    fluid: bool,
) -> None:
    """The hierarchical phase: flowlet ECMP across the tree-dc fat-tree.

    Capping on the 16-server ``tree-dc`` preset under an open-loop
    heavy-mix flood: every arrival crosses the flowlet-ECMP fabric and
    every control slot walks the per-PDU enforcement pass, so the cost
    of the topology layer sits on this phase's measured hot path.  The
    per-phase regression gate (``scripts/bench_compare.py
    --phase-threshold``) checks each phase's events-per-wall-second
    individually — a flat-path slowdown cannot hide behind this phase's
    added events, nor a fabric slowdown behind the volume flood's bulk.
    """
    with recorder.timers.phase("bench.tree_topology"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        cfg = SimulationConfig.for_topology(
            "tree-dc", budget_level=BudgetLevel.LOW, seed=seed
        )
        sim = DataCenterSimulation(cfg, scheme=CappingScheme(), engine=engine)
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_flood(
            mix=ATTACK_MIX,
            rate_rps=ATTACK_RATE_RPS,
            num_agents=20,
            start_s=5.0,
            closed_loop=False,
        )
        sim.run(plan.tree_duration_s)


def _online_detect_scenario(
    plan: BenchPlan,
    recorder: Recorder,
    seed: int,
    mode: str,
    fluid: bool,
) -> None:
    """The inference-pipeline phase: streaming detection under a flood.

    OnlineDetect on the flat rack under the evaluation flood: every
    admitted arrival crosses the per-source feature tap, every
    completion updates the attributed-energy windows, and every control
    slot walks the full score-and-quarantine pass over the source
    population.  Its own phase keeps the detector's per-request
    overhead visible to the per-phase regression gate rather than
    diluted into the attack phase's Anti-DOPE numbers.
    """
    with recorder.timers.phase("bench.online_detect"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed)
        sim = DataCenterSimulation(
            cfg, scheme=OnlineDetectScheme(), engine=engine
        )
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_flood(
            mix=ATTACK_MIX,
            rate_rps=ATTACK_RATE_RPS,
            num_agents=20,
            start_s=5.0,
        )
        sim.run(plan.online_detect_duration_s)


def _prediction_scenario(
    plan: BenchPlan,
    recorder: Recorder,
    seed: int,
    mode: str,
    fluid: bool,
) -> None:
    """The predictor phase: history-driven oversubscription under poisoning.

    Prediction on the flat rack against the ``predictor-poison``
    attacker: every control slot runs the quantile/floor update, the
    effective-budget recomputation and the admission-filter refill
    retune, and the shaping→flood transition exercises both the graded
    tier ladder and the hard-cap fallback.  Its own phase keeps the
    predictor's per-slot overhead visible to the per-phase regression
    gate.  The shaping window is sized to a third of the phase so the
    flood lands well inside the measured run at either plan size.
    """
    with recorder.timers.phase("bench.prediction"):
        engine = EventEngine(obs=recorder, mode=mode, fluid=fluid)
        cfg = SimulationConfig(budget_level=BudgetLevel.LOW, seed=seed)
        sim = DataCenterSimulation(cfg, scheme=PredictionScheme(), engine=engine)
        sim.add_normal_traffic(rate_rps=NORMAL_RATE_RPS)
        sim.add_dope_attacker(
            start_delay_s=2.0,
            mode="predictor-poison",
            poison_duration_s=plan.prediction_duration_s / 3.0,
            max_rate_rps=ATTACK_RATE_RPS,
            num_agents=20,
        )
        sim.run(plan.prediction_duration_s)


def _phase_entry(
    name: str, entry: Dict[str, object], phase_events: Dict[str, float]
) -> Dict[str, object]:
    """One ``phases`` row: wall clock plus per-phase event throughput."""
    wall_s = float(entry["total_s"])  # type: ignore[arg-type]
    row: Dict[str, object] = {"name": name, "wall_s": wall_s}
    if name in phase_events:
        events = phase_events[name]
        row["events"] = events
        row["events_per_wall_s"] = events / wall_s if wall_s > 0.0 else 0.0
    return row


def _engine_throughput(recorder: Recorder) -> float:
    """Events dispatched per wall second inside this recorder's event loop."""
    wall_s = recorder.timers.total_s("engine.run")
    if wall_s <= 0.0:
        return 0.0
    return recorder.counters.get("engine.events_dispatched") / wall_s


def _derive(
    counters: Dict[str, object], timings: Dict[str, Dict[str, object]]
) -> Dict[str, float]:
    """The wall-normalised metrics the payload's ``derived`` block holds."""
    engine_entry = timings.get("engine.run", {})
    engine_wall_s = float(engine_entry.get("total_s", 0.0))
    events = float(counters.get("engine.events_dispatched", 0))  # type: ignore[arg-type]
    sim_advanced_s = float(counters.get("engine.sim_time_advanced_s", 0.0))  # type: ignore[arg-type]
    hits = float(counters.get("runner.cache_hits", 0))  # type: ignore[arg-type]
    misses = float(counters.get("runner.cache_misses", 0))  # type: ignore[arg-type]
    lookups = hits + misses
    return {
        "events_per_wall_s": events / engine_wall_s if engine_wall_s > 0.0 else 0.0,
        "sim_time_per_wall_s": (
            sim_advanced_s / engine_wall_s if engine_wall_s > 0.0 else 0.0
        ),
        "runner_cache_hit_rate": hits / lookups if lookups > 0.0 else 0.0,
    }
