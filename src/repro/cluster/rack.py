"""Rack: the aggregation the power budget is enforced against.

The paper's testbed is a mini rack of four 100 W leaf nodes behind one
switch; its power budget scenarios (Normal/High/Medium/Low-PB) are all
fractions of the rack's total supplied power.  The :class:`Rack` is a
thin aggregate over :class:`~repro.cluster.server.Server` providing the
cluster-level views the power managers and meters need — total power,
total nameplate, per-server level vectors — plus bulk DVFS operations.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from .._validation import check_int, require
from ..sim.engine import EventEngine
from .dvfs import FrequencyLadder
from .power_model import PowerEvalTable, ServerPowerModel
from .server import CompletionSink, Server

__all__ = ["Rack"]

#: Below this fleet size the per-server cached scalar sum beats the
#: vectorised evaluation: NumPy's per-call dispatch overhead (~µs per
#: array op) outweighs the loop it replaces when only a handful of
#: servers need summing.  Measured crossover on the reference machine
#: is around a dozen servers; 16 keeps a safety margin.  Both paths
#: are bit-identical, so the switch is purely an execution choice.
_VECTOR_MIN_SERVERS = 16


class Rack:
    """A set of identical leaf servers sharing one power feed.

    Parameters
    ----------
    engine:
        Discrete-event engine.
    num_servers:
        Leaf-node count (paper: 4).
    rng:
        Seeded generator; each server gets an independent child stream
        so per-server noise is decorrelated but reproducible.
    power_model, ladder:
        Hardware models shared by all nodes.
    queue_capacity:
        Per-server backlog bound.
    completion_sink:
        Forwarded to every server.
    """

    def __init__(
        self,
        engine: EventEngine,
        num_servers: int = 4,
        rng: Optional[np.random.Generator] = None,
        power_model: Optional[ServerPowerModel] = None,
        ladder: Optional[FrequencyLadder] = None,
        queue_capacity: int = 512,
        completion_sink: Optional[CompletionSink] = None,
        queue_timeout_s: Optional[float] = None,
    ) -> None:
        check_int("num_servers", num_servers, minimum=1)
        self.engine = engine
        self.power_model = power_model or ServerPowerModel()
        self.ladder = ladder or FrequencyLadder()
        # One shared physics table: all servers agree on the type→slot
        # map, which is what lets the vectorised power path evaluate the
        # whole rack against one factor matrix.
        self.eval_table = PowerEvalTable(self.power_model, self.ladder)
        base_rng = rng if rng is not None else np.random.default_rng(0)
        seeds = base_rng.integers(0, 2**63 - 1, size=num_servers)
        self.servers: List[Server] = [
            Server(
                server_id=i,
                engine=engine,
                rng=np.random.default_rng(int(seeds[i])),
                power_model=self.power_model,
                ladder=self.ladder,
                queue_capacity=queue_capacity,
                completion_sink=completion_sink,
                queue_timeout_s=queue_timeout_s,
                eval_table=self.eval_table,
            )
            for i in range(num_servers)
        ]

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """Number of leaf nodes."""
        return len(self.servers)

    @property
    def nameplate_w(self) -> float:
        """Total faceplate power of the rack."""
        return self.power_model.nameplate_w * len(self.servers)

    def total_power(self) -> float:
        """Instantaneous rack power draw (watts).

        In batched mode a large fleet is evaluated in one vectorised
        pass; the scalar mode (and any fleet below
        :data:`_VECTOR_MIN_SERVERS`) sums per-server cached
        evaluations.  Both paths produce bit-identical floats (see
        :meth:`total_power_vector`).
        """
        if self.engine.batched and len(self.servers) >= _VECTOR_MIN_SERVERS:
            return self.total_power_vector()
        return sum(s.current_power() for s in self.servers)

    def per_server_power(self) -> List[float]:
        """Instantaneous per-server power draws, in rack order.

        The per-element view :meth:`total_power` reduces over; the power
        topology layer slices it into per-subtree (rack PDU / row PDU /
        feed) readings.  Mode selection mirrors :meth:`total_power`, and
        both paths yield bit-identical element values.
        """
        if self.engine.batched and len(self.servers) >= _VECTOR_MIN_SERVERS:
            return self.per_server_power_vector()
        return [s.current_power() for s in self.servers]

    def per_server_power_vector(self) -> List[float]:
        """Vectorised per-server power: all servers in one NumPy pass.

        Element-wise bit-identical to ``[s.current_power() for s in
        servers]``: the dynamic term accumulates in type-slot order
        exactly like :meth:`ServerPowerModel.power_from_counts`
        (element-wise IEEE float64 ops match the scalar ops
        one-for-one), servers that never saw a type contribute exact
        ``0.0`` terms, and unhealthy servers are masked to the scalar
        path's ``0.0``.
        """
        servers = self.servers
        self.engine.obs.counters.inc(
            "cluster.power_model_vector_evals", len(servers)
        )
        table = self.eval_table
        num_slots = len(table.registry)
        if num_slots == 0:
            # No request ever started — idle floors and crash zeros only.
            return [s.current_power() for s in servers]
        n = len(servers)
        counts = np.zeros((n, num_slots))
        levels = np.empty(n, dtype=np.intp)
        healthy = np.empty(n, dtype=bool)
        for j, server in enumerate(servers):
            levels[j] = server.level
            healthy[j] = server.healthy
            server_counts = server._counts
            for i in range(len(server_counts)):
                counts[j, i] = server_counts[i]
        factor_matrix = table.factor_matrix()
        dyn = np.zeros(n)
        for i in range(num_slots):
            dyn += counts[:, i] * factor_matrix[i, levels]
        power_w = table.idle_array()[levels] + self.power_model._per_worker * dyn
        power_w[~healthy] = 0.0
        return list(power_w.tolist())

    def total_power_vector(self) -> float:
        """Vectorised rack power: all servers in one NumPy evaluation.

        Bit-identical to ``sum(s.current_power() for s in servers)``:
        the elements come from :meth:`per_server_power_vector` and the
        final reduction is the same left-to-right Python sum over
        servers.
        """
        total = 0.0
        for value in self.per_server_power_vector():
            total += value
        return total

    def total_energy_joules(self) -> float:
        """Total energy consumed by all servers so far."""
        return sum(s.energy_joules() for s in self.servers)

    def idle_floor(self) -> float:
        """Rack power with all servers idle at their current levels."""
        return sum(
            s.power_model.idle_power(s.freq_ratio) for s in self.servers
        )

    def levels(self) -> List[int]:
        """Per-server frequency levels (rack order)."""
        return [s.level for s in self.servers]

    def mean_freq_ghz(self) -> float:
        """Average operating frequency across the rack."""
        return float(np.mean([s.frequency_ghz for s in self.servers]))

    def total_in_system(self) -> int:
        """Requests queued or in service anywhere in the rack."""
        return sum(s.in_system for s in self.servers)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def healthy_servers(self) -> List[Server]:
        """Servers currently able to accept traffic."""
        return [s for s in self.servers if s.healthy]

    @property
    def num_healthy(self) -> int:
        """Count of healthy servers."""
        return sum(1 for s in self.servers if s.healthy)

    # ------------------------------------------------------------------
    # Bulk DVFS operations
    # ------------------------------------------------------------------
    def set_all_levels(self, level: int) -> None:
        """Set every server to the same frequency level."""
        for server in self.servers:
            server.set_level(level)

    def set_levels(self, levels: Sequence[int]) -> None:
        """Set per-server levels from a vector in rack order."""
        require(
            len(levels) == len(self.servers),
            f"expected {len(self.servers)} levels, got {len(levels)}",
        )
        for server, level in zip(self.servers, levels):
            server.set_level(level)

    def step_all(self, steps: int) -> None:
        """Step every server up (positive) or down (negative) the ladder."""
        for server in self.servers:
            if steps >= 0:
                server.step_up(steps)
            else:
                server.step_down(-steps)

    def subset(self, indices: Iterable[int]) -> List[Server]:
        """Servers at the given rack positions (used for pool carve-outs)."""
        servers = []
        for i in indices:
            check_int("index", i, minimum=0)
            if i >= len(self.servers):
                raise IndexError(f"server index {i} out of range")
            servers.append(self.servers[i])
        return servers

    def for_each(self, fn: Callable[[Server], None]) -> None:
        """Apply *fn* to every server (helper for managers)."""
        for server in self.servers:
            fn(server)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Rack({len(self.servers)} servers, "
            f"nameplate={self.nameplate_w:.0f}W, P={self.total_power():.1f}W)"
        )
