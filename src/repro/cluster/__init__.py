"""Server/rack substrate: DVFS, power model, queueing servers."""

from .autoscaler import AutoScaler, AutoScalerStats, ScalingEvent
from .dvfs import PAPER_FREQUENCIES_GHZ, FrequencyLadder
from .power_model import ServerPowerModel
from .rack import Rack
from .server import Server
from .thermal import ServerThermalModel, ThermalMonitor, cooling_power_w

__all__ = [
    "PAPER_FREQUENCIES_GHZ",
    "FrequencyLadder",
    "ServerPowerModel",
    "Server",
    "Rack",
    "AutoScaler",
    "AutoScalerStats",
    "ScalingEvent",
    "ServerThermalModel",
    "ThermalMonitor",
    "cooling_power_w",
]
