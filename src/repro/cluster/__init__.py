"""Server/rack substrate: DVFS, power model, queueing servers."""

from .autoscaler import AutoScaler, AutoScalerStats, ScalingEvent
from .dvfs import PAPER_FREQUENCIES_GHZ, FrequencyLadder
from .power_model import ServerPowerModel
from .rack import Rack
from .server import Server
from .thermal import ServerThermalModel, ThermalMonitor, cooling_power_w
from .topology import (
    FLAT_TOPOLOGY,
    PowerNode,
    PowerTopology,
    TopologyMonitor,
    TopologySpec,
    named_topology,
    topology_names,
)

__all__ = [
    "PAPER_FREQUENCIES_GHZ",
    "FrequencyLadder",
    "ServerPowerModel",
    "Server",
    "Rack",
    "FLAT_TOPOLOGY",
    "TopologySpec",
    "PowerNode",
    "PowerTopology",
    "TopologyMonitor",
    "named_topology",
    "topology_names",
    "AutoScaler",
    "AutoScalerStats",
    "ScalingEvent",
    "ServerThermalModel",
    "ThermalMonitor",
    "cooling_power_w",
]
