"""Thermal substrate: server temperature and cooling power.

DOPE is defined as "a new class of low-rate but high-power requests
targeting unconventional layer of targeted resources (e.g., energy,
power, and cooling)".  Power is only half of that sentence; this module
supplies the cooling half:

* :class:`ServerThermalModel` — a first-order RC thermal model per
  server.  Between power changes the trajectory is the exact
  exponential ``T(t+dt) = T_ss + (T - T_ss)·e^(−dt/τ)`` with steady
  state ``T_ss = T_inlet + P·R_th``, so sustained high power walks the
  die toward its trip point.
* :class:`ThermalMonitor` — samples every server on an interval,
  advances the RC states, fires **emergency thermal throttling** (force
  the deepest P-state) above ``T_trip`` and releases it below
  ``T_resume`` — the protection layer that exists below every software
  power manager.
* :func:`cooling_power_w` — CRAC/chiller power for a given IT load via
  a COP model, so facility-level energy can include the cooling tax a
  DOPE attack inflicts even when the power budget holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .._validation import check_positive, require
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_MONITOR
from .rack import Rack
from .server import Server

__all__ = [
    "ServerThermalModel",
    "ThermalSample",
    "ThermalStats",
    "ThermalMonitor",
    "cooling_power_w",
]


class ServerThermalModel:
    """First-order RC thermal model of one server.

    Parameters
    ----------
    r_th_c_per_w:
        Thermal resistance (°C per watt): steady-state rise above the
        inlet per watt of dissipated power.
    tau_s:
        Thermal time constant.
    t_inlet_c:
        Cold-aisle inlet temperature.
    """

    __slots__ = ("r_th", "tau", "t_inlet", "temperature_c", "_last_t")

    def __init__(
        self,
        r_th_c_per_w: float = 0.45,
        tau_s: float = 60.0,
        t_inlet_c: float = 25.0,
    ) -> None:
        check_positive("r_th_c_per_w", r_th_c_per_w)
        check_positive("tau_s", tau_s)
        self.r_th = float(r_th_c_per_w)
        self.tau = float(tau_s)
        self.t_inlet = float(t_inlet_c)
        self.temperature_c = self.t_inlet
        # Anchored lazily on the first advance() so that a model created
        # when the engine clock is already past zero (start_time_s > 0,
        # or a monitor attached mid-run) does not integrate a phantom
        # warm-up interval [0, now) at the current power.
        self._last_t: Optional[float] = None

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the die converges to at constant *power_w*."""
        return self.t_inlet + power_w * self.r_th

    def advance(self, now: float, power_w: float) -> float:
        """Advance the RC state to *now* assuming *power_w* since last call.

        The first call only anchors the integration clock — there is no
        earlier observation to integrate from.
        """
        if self._last_t is None:
            self._last_t = now
            return self.temperature_c
        dt = now - self._last_t
        if dt > 0:
            t_ss = self.steady_state_c(power_w)
            decay = math.exp(-dt / self.tau)
            self.temperature_c = t_ss + (self.temperature_c - t_ss) * decay
            self._last_t = now
        return self.temperature_c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerThermalModel(T={self.temperature_c:.1f}C)"


@dataclass
class ThermalSample:
    """One monitoring snapshot."""

    time_s: float
    temperatures_c: List[float]
    throttled: List[bool]


@dataclass
class ThermalStats:
    """Emergency accounting."""

    emergencies: int = 0
    emergency_server_ids: List[int] = field(default_factory=list)
    samples: List[ThermalSample] = field(default_factory=list)


class ThermalMonitor:
    """Per-server thermal tracking with emergency throttling.

    Parameters
    ----------
    engine, rack:
        Simulation wiring.
    t_trip_c:
        Die temperature that triggers emergency throttling (force the
        bottom of the DVFS ladder).
    t_resume_c:
        Temperature below which the emergency is released (hysteresis
        band below the trip point).
    interval_s:
        Sampling/actuation period.
    model_factory:
        Builds the per-server thermal model (identical by default).
    """

    def __init__(
        self,
        engine: EventEngine,
        rack: Rack,
        t_trip_c: float = 85.0,
        t_resume_c: float = 75.0,
        interval_s: float = 1.0,
        model_factory: Optional[Callable[[], ServerThermalModel]] = None,
    ) -> None:
        require(t_resume_c < t_trip_c, "t_resume_c must be below t_trip_c")
        check_positive("interval_s", interval_s)
        self.engine = engine
        self.rack = rack
        self.t_trip = float(t_trip_c)
        self.t_resume = float(t_resume_c)
        self.interval_s = float(interval_s)
        factory = model_factory or ServerThermalModel
        self.models: Dict[int, ServerThermalModel] = {
            s.server_id: factory() for s in rack.servers
        }
        self._emergency: Dict[int, int] = {}  # server_id -> saved level
        self.stats = ThermalStats()
        self._stop: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling and protection."""
        if self._stop is not None:
            raise RuntimeError("thermal monitor already started")
        self._stop = self.engine.every(
            self.interval_s, self.step, priority=PRIORITY_MONITOR
        )

    def stop(self) -> None:
        """Stop sampling (emergency states are left as-is)."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    # Protection loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance every model; trip or release emergencies."""
        now = self.engine.now
        temps, throttled = [], []
        for server in self.rack.servers:
            model = self.models[server.server_id]
            temp = model.advance(now, server.current_power())
            temps.append(temp)
            in_emergency = server.server_id in self._emergency
            if not in_emergency and temp >= self.t_trip:
                self._emergency[server.server_id] = server.level
                server.set_level(0)
                self.stats.emergencies += 1
                self.stats.emergency_server_ids.append(server.server_id)
                in_emergency = True
            elif in_emergency and temp <= self.t_resume:
                server.set_level(self._emergency.pop(server.server_id))
                in_emergency = False
            throttled.append(in_emergency)
        self.stats.samples.append(ThermalSample(now, temps, throttled))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def temperature_of(self, server: Server) -> float:
        """Last advanced temperature of *server*."""
        return self.models[server.server_id].temperature_c

    def in_emergency(self, server: Server) -> bool:
        """Whether *server* is currently emergency-throttled."""
        return server.server_id in self._emergency

    def max_temperature(self) -> float:
        """Hottest die right now."""
        return max(m.temperature_c for m in self.models.values())


def cooling_power_w(it_power_w: float, cop: float = 3.0) -> float:
    """CRAC/chiller power needed to remove *it_power_w* of heat.

    A coefficient-of-performance model: every IT watt costs ``1/COP``
    watts of cooling.  Typical raised-floor data centers sit near
    COP ≈ 3 (PUE ≈ 1.33 from cooling alone).
    """
    check_positive("cop", cop)
    if it_power_w < 0:
        raise ValueError(f"it_power_w must be >= 0, got {it_power_w}")
    return it_power_w / cop
