"""DVFS frequency ladder and controller.

The paper's testbed exposes ACPI P-states from 1.2 GHz to 2.4 GHz in
0.1 GHz steps (13 levels).  All power-management schemes in the paper
act by moving servers along this ladder, so the ladder is modelled as a
first-class immutable object and every scheme manipulates *levels*
(indices), never raw frequencies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .._validation import check_int, check_sorted_unique, require

__all__ = ["FrequencyLadder"]

#: The paper's ladder: 1.2–2.4 GHz at 0.1 GHz intervals.
PAPER_FREQUENCIES_GHZ: Tuple[float, ...] = tuple(
    round(1.2 + 0.1 * i, 1) for i in range(13)
)


class FrequencyLadder:
    """An ordered set of CPU operating frequencies.

    Level 0 is the *lowest* frequency; the last level is nominal/maximum.
    """

    __slots__ = ("_freqs",)

    def __init__(self, frequencies_ghz: Sequence[float] = PAPER_FREQUENCIES_GHZ):
        freqs = check_sorted_unique("frequencies_ghz", frequencies_ghz)
        require(freqs[0] > 0, "frequencies must be positive")
        self._freqs: Tuple[float, ...] = tuple(float(f) for f in freqs)

    @property
    def frequencies_ghz(self) -> Tuple[float, ...]:
        """All frequencies, ascending."""
        return self._freqs

    @property
    def num_levels(self) -> int:
        """Number of P-states on the ladder."""
        return len(self._freqs)

    @property
    def max_level(self) -> int:
        """Index of the nominal (highest) frequency."""
        return len(self._freqs) - 1

    @property
    def f_max(self) -> float:
        """Nominal frequency in GHz."""
        return self._freqs[-1]

    @property
    def f_min(self) -> float:
        """Deepest throttle frequency in GHz."""
        return self._freqs[0]

    def frequency(self, level: int) -> float:
        """Frequency in GHz at *level*."""
        self._check_level(level)
        return self._freqs[level]

    def ratio(self, level: int) -> float:
        """``f(level) / f_max`` — the knob every model consumes."""
        self._check_level(level)
        return self._freqs[level] / self._freqs[-1]

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer onto the ladder."""
        return max(0, min(int(level), self.max_level))

    def step_down(self, level: int, steps: int = 1) -> int:
        """Lower *level* by *steps*, saturating at the bottom."""
        self._check_level(level)
        check_int("steps", steps, minimum=0)
        return max(0, level - steps)

    def step_up(self, level: int, steps: int = 1) -> int:
        """Raise *level* by *steps*, saturating at nominal."""
        self._check_level(level)
        check_int("steps", steps, minimum=0)
        return min(self.max_level, level + steps)

    def ratios(self) -> List[float]:
        """All frequency ratios, ascending (vector form for sweeps)."""
        f_max = self._freqs[-1]
        return [f / f_max for f in self._freqs]

    def _check_level(self, level: int) -> None:
        check_int("level", level)
        if not 0 <= level < len(self._freqs):
            raise ValueError(
                f"level {level} outside ladder [0, {len(self._freqs) - 1}]"
            )

    def __len__(self) -> int:
        return len(self._freqs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequencyLadder({self._freqs[0]:.1f}..{self._freqs[-1]:.1f} GHz, "
            f"{len(self._freqs)} levels)"
        )
