"""Auto-scaling resource allocation.

The paper's threat analysis leans on a property of production clouds:
"current data centers excessively rely on network load balancer (NLB)
and auto-scaling resource allocation to provide built-in defenses
against DDoS attacks … As a result, hostile requests can generate the
maximum possible load on their targeted servers without prior
detection."  Auto-scaling treats every request as worth serving, so a
DOPE flood does not just heat the servers it lands on — it recruits
*more* servers, pulling the whole rack toward its aggregate peak and
defeating the statistical assumption power oversubscription rests on.

:class:`AutoScaler` implements the classic utilisation-band policy:
keep a subset of the rack powered and in the load-balancer rotation,
scale out when mean utilisation crosses the high-water mark, scale in
(drain, then power-gate) when it falls below the low-water mark, with
a cooldown between actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .._validation import check_fraction, check_int, check_positive, require
from ..network.load_balancer import NetworkLoadBalancer
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_MONITOR
from .rack import Rack
from .server import Server

__all__ = [
    "ScalingEvent",
    "AutoScalerStats",
    "AutoScaler",
]


@dataclass
class ScalingEvent:
    """One recorded scaling action."""

    time_s: float
    action: str  # "out" | "in"
    active_after: int
    mean_utilization: float


@dataclass
class AutoScalerStats:
    """Counters and history."""

    scale_outs: int = 0
    scale_ins: int = 0
    events: List[ScalingEvent] = field(default_factory=list)


class AutoScaler:
    """Utilisation-band auto-scaler over one rack.

    Parameters
    ----------
    engine, rack, nlb:
        Simulation wiring.  The scaler mutates ``nlb.servers`` so the
        balancer only routes to in-rotation nodes.
    min_active, max_active:
        Bounds on the active set (defaults: 1 … all servers).
    high_util, low_util:
        Scale-out / scale-in thresholds on mean busy-worker fraction of
        the active set.
    interval_s:
        Seconds between scaler evaluations.
    cooldown_s:
        Minimum time between consecutive scaling actions.
    """

    def __init__(
        self,
        engine: EventEngine,
        rack: Rack,
        nlb: NetworkLoadBalancer,
        min_active: int = 1,
        max_active: Optional[int] = None,
        high_util: float = 0.7,
        low_util: float = 0.3,
        interval_s: float = 5.0,
        cooldown_s: float = 10.0,
    ) -> None:
        check_int("min_active", min_active, minimum=1)
        max_active = max_active if max_active is not None else rack.num_servers
        check_int("max_active", max_active, minimum=min_active)
        require(
            max_active <= rack.num_servers,
            f"max_active ({max_active}) exceeds rack size ({rack.num_servers})",
        )
        check_fraction("high_util", high_util, inclusive=False)
        check_fraction("low_util", low_util)
        require(low_util < high_util, "low_util must be < high_util")
        check_positive("interval_s", interval_s)
        check_positive("cooldown_s", cooldown_s)

        self.engine = engine
        self.rack = rack
        self.nlb = nlb
        self.min_active = min_active
        self.max_active = max_active
        self.high_util = high_util
        self.low_util = low_util
        self.interval_s = float(interval_s)
        self.cooldown_s = float(cooldown_s)
        self.stats = AutoScalerStats()
        self._last_action_t = -float("inf")
        self._draining: List[Server] = []
        self._stop: Optional[Callable[[], None]] = None

        # Start with the minimum footprint: first min_active servers in
        # rotation, the rest power-gated.
        self.active: List[Server] = list(rack.servers[:min_active])
        for server in rack.servers[min_active:]:
            server.set_powered(False)
        self._sync_rotation()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic evaluation."""
        if self._stop is not None:
            raise RuntimeError("autoscaler already started")
        self._stop = self.engine.every(
            self.interval_s, self.step, priority=PRIORITY_MONITOR
        )

    def stop(self) -> None:
        """Stop evaluating (rotation stays as-is)."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def mean_utilization(self) -> float:
        """Mean busy-worker fraction over the active set."""
        if not self.active:
            return 0.0
        return sum(s.busy_workers / s.num_workers for s in self.active) / len(
            self.active
        )

    def step(self) -> None:
        """One evaluation: finish drains, then scale if out of band."""
        self._finish_drains()
        util = self.mean_utilization()
        now = self.engine.now
        if now - self._last_action_t < self.cooldown_s:
            return
        if util > self.high_util and len(self.active) < self.max_active:
            self._scale_out(util)
            self._last_action_t = now
        elif util < self.low_util and len(self.active) > self.min_active:
            self._scale_in(util)
            self._last_action_t = now

    def _scale_out(self, util: float) -> None:
        # Reactivate a draining server if one exists, else wake a cold one.
        if self._draining:
            server = self._draining.pop()
        else:
            server = next(
                s
                for s in self.rack.servers
                if not s.powered_on and s not in self.active
            )
            server.set_powered(True)
        self.active.append(server)
        self.active.sort(key=lambda s: s.server_id)
        self._sync_rotation()
        self.stats.scale_outs += 1
        self.stats.events.append(
            ScalingEvent(self.engine.now, "out", len(self.active), util)
        )

    def _scale_in(self, util: float) -> None:
        server = self.active.pop()  # drain the highest-id active node
        self._draining.append(server)
        self._sync_rotation()
        self.stats.scale_ins += 1
        self.stats.events.append(
            ScalingEvent(self.engine.now, "in", len(self.active), util)
        )

    def _finish_drains(self) -> None:
        still = []
        for server in self._draining:
            if server.in_system == 0:
                server.set_powered(False)
            else:
                still.append(server)
        self._draining = still

    def _sync_rotation(self) -> None:
        self.nlb.servers[:] = self.active

    @property
    def num_active(self) -> int:
        """Servers currently in the balancer rotation."""
        return len(self.active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoScaler(active={self.num_active}/{self.rack.num_servers}, "
            f"util={self.mean_utilization():.2f})"
        )
