"""Leaf-server model: a DVFS-capable multi-worker FIFO queue.

Each server has ``W`` worker slots and a bounded FIFO backlog.  Work is
expressed in *nominal seconds* (seconds of service at ``f_max``); a
worker drains it at the request type's ``speedup(f/f_max)``, so a DVFS
transition mid-service stretches in-flight requests exactly as a real
frequency drop would.  Power and utilisation are piecewise constant
between state changes, so the energy integral accrued at every state
change is exact, not sampled.

Power is evaluated from *per-type busy-worker counts* against rows of a
shared :class:`~repro.cluster.power_model.PowerEvalTable`, and the
resulting watts are cached until the next state change — the same float
the old per-request iteration produced for a single-type server, and
the canonical accumulation order (type-slot 0, 1, 2, …) that the
batched mode's vectorised rack evaluation reproduces bit-for-bit.

The server is deliberately policy-free: power managers act on it only
through :meth:`Server.set_level`, mirroring how RAPL/ACPI expose a
per-node V/F knob to cluster controllers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from .._validation import check_int
from ..network.request import Request, RequestOutcome
from ..sim.engine import EventEngine
from ..sim.events import Event
from .dvfs import FrequencyLadder
from .power_model import PowerEvalTable, ServerPowerModel

__all__ = ["Server"]

CompletionSink = Callable[[Request, RequestOutcome, float], None]
ShedSink = Callable[[Request], None]


class _ActiveEntry:
    """Book-keeping for one in-service request."""

    __slots__ = ("request", "event", "last_resume", "slot")

    def __init__(
        self, request: Request, event: Event, last_resume: float, slot: int
    ) -> None:
        self.request = request
        self.event = event
        self.last_resume = last_resume
        self.slot = slot


class Server:
    """One simulated leaf node.

    Parameters
    ----------
    server_id:
        Stable integer identity (index within the rack).
    engine:
        The discrete-event engine driving the simulation.
    rng:
        Seeded generator for service-time noise.
    power_model, ladder:
        Hardware models; defaults reproduce the paper's 100 W node with
        the 1.2–2.4 GHz ladder.
    queue_capacity:
        Maximum backlog (excluding in-service requests).  Arrivals
        beyond it are rejected — the knob behind availability loss.
    completion_sink:
        Callback invoked with ``(request, outcome, time)`` when a
        request finishes service.
    queue_timeout_s:
        Maximum time a request may wait in the backlog.  A request
        whose wait exceeds it is abandoned (``TIMED_OUT``) when a
        worker would otherwise pick it up — the client has long since
        given up.  ``None`` disables timeouts.
    eval_table:
        Cached physics shared with the rest of the rack.  Servers of
        one rack must share a table so their type→slot maps agree; a
        standalone server gets a private one.
    """

    def __init__(
        self,
        server_id: int,
        engine: EventEngine,
        rng: np.random.Generator,
        power_model: Optional[ServerPowerModel] = None,
        ladder: Optional[FrequencyLadder] = None,
        queue_capacity: int = 512,
        completion_sink: Optional[CompletionSink] = None,
        queue_timeout_s: Optional[float] = None,
        eval_table: Optional[PowerEvalTable] = None,
    ) -> None:
        check_int("server_id", server_id, minimum=0)
        check_int("queue_capacity", queue_capacity, minimum=0)
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError(
                f"queue_timeout_s must be > 0, got {queue_timeout_s}"
            )
        self.server_id = server_id
        self.engine = engine
        self._clock = engine.clock
        self._obs = engine.obs
        self._counters = engine.obs.counters
        self.rng = rng
        self.power_model = power_model or ServerPowerModel()
        self.ladder = ladder or FrequencyLadder()
        if eval_table is None:
            eval_table = PowerEvalTable(self.power_model, self.ladder)
        elif eval_table.model is not self.power_model or (
            eval_table.ladder is not self.ladder
        ):
            raise ValueError(
                "eval_table must be built from this server's power model "
                "and ladder"
            )
        self.eval_table = eval_table
        self.queue_capacity = queue_capacity
        self.completion_sink = completion_sink
        self.queue_timeout_s = queue_timeout_s

        self.level = self.ladder.max_level
        self.powered_on = True
        self.failed = False
        #: Plain attribute (kept in sync by the three health mutators)
        #: so the NLB's per-dispatch health scan is one load, not a
        #: property call.
        self.healthy = True
        self._queue: Deque[Request] = deque()
        self._active: Dict[int, _ActiveEntry] = {}

        # Busy workers per type slot, plus the cached physics rows for
        # the current level.  The rows grow in place as new types
        # register, and are re-fetched whenever ``_counts`` grows, so
        # ``len(row) >= len(self._counts)`` always holds.
        self._counts: List[int] = []
        self._factor_row: List[float] = eval_table.factor_row(self.level)
        self._speedup_row: List[float] = eval_table.speedup_row(self.level)
        self._idle_w: float = eval_table.idle_power_at(self.level)

        # Cached instantaneous power; invalidated by every state change.
        self._power_w = self._idle_w
        self._power_dirty = False

        # Exact piecewise-constant integrals.
        self._energy_j = 0.0
        self._busy_worker_seconds = 0.0
        self._last_accrual = engine.now

        # Counters.
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Worker slots available for concurrent service."""
        return self.power_model.num_workers

    @property
    def busy_workers(self) -> int:
        """Workers currently serving a request."""
        return len(self._active)

    @property
    def queue_length(self) -> int:
        """Requests waiting in the backlog."""
        return len(self._queue)

    @property
    def in_system(self) -> int:
        """Waiting plus in-service requests."""
        return len(self._queue) + len(self._active)

    @property
    def freq_ratio(self) -> float:
        """Current ``f / f_max``."""
        return self.ladder.ratio(self.level)

    @property
    def frequency_ghz(self) -> float:
        """Current operating frequency in GHz."""
        return self.ladder.frequency(self.level)

    def current_power(self) -> float:
        """Instantaneous power draw in watts (zero when off or crashed)."""
        if not self.healthy:
            return 0.0
        if self._power_dirty:
            self._counters.inc("cluster.power_model_evals")
            self._power_w = self.power_model.power_from_counts(
                self._counts, self._factor_row, self._idle_w
            )
            self._power_dirty = False
        return self._power_w

    def power_at_level(self, level: int) -> float:
        """Power the *current* load would draw at ladder *level*.

        Used by capping planners to rank candidate levels.  Note: no
        health check — a crashed server reports its idle floor here, as
        the planner's model (which cannot see faults) always has.
        """
        table = self.eval_table
        return self.power_model.power_from_counts(
            self._counts, table.factor_row(level), table.idle_power_at(level)
        )

    def energy_joules(self) -> float:
        """Energy consumed since construction (exact integral)."""
        self._accrue()
        return self._energy_j

    def busy_worker_seconds(self) -> float:
        """Integral of busy workers over time (utilisation numerator)."""
        self._accrue()
        return self._busy_worker_seconds

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> bool:
        """Offer *request* to the server.

        Returns ``False`` (and counts a rejection) when the backlog is
        full; the caller is responsible for recording the drop outcome.
        """
        request.server_id = self.server_id
        if not self.healthy:
            self.rejected += 1
            return False
        if len(self._active) < self.power_model.num_workers:
            self._start(request)
            return True
        if len(self._queue) >= self.queue_capacity:
            self.rejected += 1
            return False
        self._queue.append(request)
        return True

    def _start(self, request: Request) -> None:
        self._accrue()
        now = self._clock._now
        request.start_service_time_s = now
        request.remaining_work = self._sample_work(request)
        slot = self.eval_table.slot_of(request.rtype)
        counts = self._counts
        if slot >= len(counts):
            counts.extend([0] * (slot + 1 - len(counts)))
            # Re-fetch the rows: fetching extends them in place to the
            # registry's new size.
            self._factor_row = self.eval_table.factor_row(self.level)
            self._speedup_row = self.eval_table.speedup_row(self.level)
        counts[slot] += 1
        self._power_dirty = True
        delay_s = request.remaining_work / self._speedup_row[slot]
        event = self.engine.schedule(delay_s, self._finish, arg=request)
        self._active[request.request_id] = _ActiveEntry(request, event, now, slot)

    def _sample_work(self, request: Request) -> float:
        rtype = request.rtype
        sigma = rtype._ln_sigma
        if sigma > 0.0:
            return rtype.base_service_s * float(
                self.rng.lognormal(mean=rtype._ln_mu, sigma=sigma)
            )
        return rtype.base_service_s

    def _finish(self, request: Request) -> None:
        entry = self._active.get(request.request_id)
        if entry is None:  # already rescheduled/cancelled — stale event
            return
        # Accrue the busy period *before* removing the request, so its
        # final service slice is charged at the busy power level.
        self._accrue()
        del self._active[request.request_id]
        self._counts[entry.slot] -= 1
        self._power_dirty = True
        self.completed += 1
        now = self._clock._now
        if self.completion_sink is not None:
            self.completion_sink(request, RequestOutcome.COMPLETED, now)
        if request.on_terminal is not None:
            request.on_terminal(request, RequestOutcome.COMPLETED, now)
        self._pull_next()

    def _pull_next(self) -> None:
        """Promote queued requests, abandoning ones past their timeout."""
        now = self._clock._now
        while self._queue and len(self._active) < self.power_model.num_workers:
            queued = self._queue.popleft()
            if (
                self.queue_timeout_s is not None
                and now - queued.arrival_time_s > self.queue_timeout_s
            ):
                self.timed_out += 1
                if self.completion_sink is not None:
                    self.completion_sink(queued, RequestOutcome.TIMED_OUT, now)
                if queued.on_terminal is not None:
                    queued.on_terminal(queued, RequestOutcome.TIMED_OUT, now)
                continue
            self._start(queued)

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------
    def set_level(self, level: int) -> None:
        """Move the server to frequency *level*, rescaling in-flight work.

        Remaining work of every in-service request is drained at the old
        speed up to "now", then its departure is rescheduled at the new
        speed — the exact semantics of a V/F transition under a
        work-conserving processor.
        """
        level = self.ladder.clamp(level)
        if level == self.level:
            return
        self._counters.inc("cluster.dvfs_transitions")
        self._accrue()
        now = self._clock._now
        old_speedups = self._speedup_row
        self.level = level
        table = self.eval_table
        self._factor_row = table.factor_row(level)
        self._speedup_row = table.speedup_row(level)
        self._idle_w = table.idle_power_at(level)
        self._power_dirty = True
        new_speedups = self._speedup_row
        for entry in self._active.values():
            request = entry.request
            elapsed_s = now - entry.last_resume
            request.remaining_work = max(
                0.0, request.remaining_work - elapsed_s * old_speedups[entry.slot]
            )
            entry.event.cancel()
            delay_s = request.remaining_work / new_speedups[entry.slot]
            entry.event = self.engine.schedule(delay_s, self._finish, arg=request)
            entry.last_resume = now

    def set_powered(self, on: bool) -> None:
        """Power the node on or off (auto-scaling / power gating).

        Powering off requires the server to be drained — a live node is
        never yanked.  The energy integral accrues at the old power
        level up to the switch instant, so gated time contributes zero.
        """
        if on == self.powered_on:
            return
        if not on and self.in_system > 0:
            raise RuntimeError(
                f"cannot power off server {self.server_id}: "
                f"{self.in_system} requests in system"
            )
        self._accrue()
        self.powered_on = on
        self.healthy = on and not self.failed
        self._power_dirty = True

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def fail(self, shed_sink: Optional[ShedSink] = None) -> None:
        """Crash the server (fault injection).

        In-service requests are lost: their departure events are
        cancelled and each is reported as ``FAILED_SERVER`` — both the
        completion sink and the request's ``on_terminal`` fire, so
        closed-loop clients observe the failure instead of deadlocking.
        Queued requests have done no work yet; they are handed to
        *shed_sink* (the NLB re-route path) when given, and reported as
        ``FAILED_SERVER`` otherwise.  Idempotent.
        """
        if self.failed:
            return
        # Charge energy/busy time at the pre-crash power level first.
        self._accrue()
        self.failed = True
        self.healthy = False
        self.crashes += 1
        self._counters.inc("cluster.server_failures")
        now = self._clock._now
        lost = []
        for entry in self._active.values():
            entry.event.cancel()
            lost.append(entry.request)
        self._active.clear()
        self._counts = [0] * len(self._counts)
        self._power_dirty = True
        shed = list(self._queue)
        self._queue.clear()
        for request in lost:
            self._counters.inc("cluster.requests_lost_to_crash")
            self._terminate(request, RequestOutcome.FAILED_SERVER, now)
        for request in shed:
            if shed_sink is not None:
                self._counters.inc("cluster.requests_shed_to_nlb")
                shed_sink(request)
            else:
                self._counters.inc("cluster.requests_lost_to_crash")
                self._terminate(request, RequestOutcome.FAILED_SERVER, now)

    def recover(self) -> None:
        """Return a crashed server to service (empty, at its set level)."""
        if not self.failed:
            return
        # Downtime accrues at zero power.
        self._accrue()
        self.failed = False
        self.healthy = self.powered_on
        self._power_dirty = True
        self._counters.inc("cluster.server_recoveries")

    def _terminate(
        self, request: Request, outcome: RequestOutcome, now: float
    ) -> None:
        """Report a terminal *outcome* to both sinks."""
        if self.completion_sink is not None:
            self.completion_sink(request, outcome, now)
        if request.on_terminal is not None:
            request.on_terminal(request, outcome, now)

    def step_down(self, steps: int = 1) -> None:
        """Lower frequency by *steps* ladder positions."""
        self.set_level(self.ladder.step_down(self.level, steps))

    def step_up(self, steps: int = 1) -> None:
        """Raise frequency by *steps* ladder positions."""
        self.set_level(self.ladder.step_up(self.level, steps))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _accrue(self) -> None:
        now = self._clock._now
        dt = now - self._last_accrual
        if dt <= 0:
            self._last_accrual = now
            return
        self._energy_j += self.current_power() * dt
        self._busy_worker_seconds += len(self._active) * dt
        self._last_accrual = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(#{self.server_id}, f={self.frequency_ghz:.1f}GHz, "
            f"busy={self.busy_workers}/{self.num_workers}, q={self.queue_length})"
        )
