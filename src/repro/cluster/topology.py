"""Hierarchical power topology: server → rack PDU → row PDU → DC feed.

The paper's testbed is one flat rack behind one meter, but its threat —
attack power concentrating where the budget meter is not looking — only
becomes expressible with a multi-level power tree.  Real facilities
oversubscribe *per level* (Kumbhare et al.): each rack PDU, row PDU and
the DC feed carries its own budget, and the provisioned supply shrinks
towards the root because sibling subtrees are assumed not to peak
simultaneously.  A flood that concentrates on one rack can therefore
trip that rack's PDU while the DC-feed meter still reads under budget.

:class:`PowerTopology` overlays this tree on the existing flat
:class:`~repro.cluster.rack.Rack`: every tree node owns a *contiguous
slice* of the rack's server list, so the single-rack hot path (NLB
rotation, vectorised power evaluation, metering) is untouched and the
tree is pure bookkeeping on top.  Node power is always the left-to-right
Python sum over the node's leaf slice — the same reduction order as
``Rack.total_power`` — so per-level readings are bit-identical to the
sum of their leaf servers in both scalar and batched engine modes.

The ``"flat"`` topology is the absence of a tree: no nodes, no monitor,
no fabric, no extra counters, byte-identical to the pre-topology model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .._validation import check_int, check_positive, require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import EventEngine
    from .rack import Rack

__all__ = [
    "TopologySpec",
    "PowerNode",
    "PowerTopology",
    "TopologyMonitor",
    "named_topology",
    "topology_names",
    "FLAT_TOPOLOGY",
]

#: The reserved name of the treeless single-rack model.
FLAT_TOPOLOGY = "flat"


@dataclass(frozen=True)
class TopologySpec:
    """Shape and oversubscription policy of one power tree.

    Parameters
    ----------
    name:
        Registry key (``--topology`` value).
    rows, racks_per_row, servers_per_rack:
        Tree fan-out; total fleet is the product.
    num_spines:
        Spine switches of the fabric's 2-tier fat-tree; the ECMP path
        space is ``num_spines × num_racks``.
    flowlet_gap_s:
        Idle gap after which a flow re-hashes to a new path; ``None``
        disables flowlet switching (pure per-flow ECMP pinning).
    rack_oversub, row_oversub, feed_oversub:
        Per-level budget multipliers on the subtree nameplate.  Budgets
        shrink towards the root (``feed < row < rack``): that is the
        oversubscription bet DOPE attacks exploit.
    enforce_levels:
        Whether per-node PDU protection caps DVFS levels each control
        slot.  ``False`` models unprotected PDUs (the vulnerability
        arm): violations are observed, not corrected.
    """

    name: str
    rows: int
    racks_per_row: int
    servers_per_rack: int
    num_spines: int = 2
    flowlet_gap_s: Optional[float] = 0.05
    rack_oversub: float = 1.0
    row_oversub: float = 0.95
    feed_oversub: float = 0.85
    enforce_levels: bool = True

    def __post_init__(self) -> None:
        require(self.name != FLAT_TOPOLOGY, "the flat topology has no spec")
        check_int("rows", self.rows, minimum=1)
        check_int("racks_per_row", self.racks_per_row, minimum=1)
        check_int("servers_per_rack", self.servers_per_rack, minimum=1)
        check_int("num_spines", self.num_spines, minimum=1)
        if self.flowlet_gap_s is not None:
            check_positive("flowlet_gap_s", self.flowlet_gap_s)
        for field in ("rack_oversub", "row_oversub", "feed_oversub"):
            value = getattr(self, field)
            check_positive(field, value)
            require(value <= 1.0, f"{field} must be <= 1, got {value!r}")

    @property
    def num_racks(self) -> int:
        """Total rack count across all rows."""
        return self.rows * self.racks_per_row

    @property
    def total_servers(self) -> int:
        """Leaf fleet size the tree requires."""
        return self.num_racks * self.servers_per_rack


#: Named tree presets.  ``tree-small`` is the CI smoke tree (2 racks);
#: ``tree-dc`` is the managed reference DC whose 16 servers also cross
#: the batched engine's vectorisation gate; ``tree-pinned`` is the
#: vulnerability arm — flowlet switching off (flows pin their hashed
#: rack) and PDU protection off, the configuration under which a
#: concentrated flood demonstrably trips a rack PDU while the DC feed
#: stays under budget.
_TOPOLOGIES: Dict[str, TopologySpec] = {
    spec.name: spec
    for spec in (
        TopologySpec(
            name="tree-small",
            rows=1,
            racks_per_row=2,
            servers_per_rack=4,
        ),
        TopologySpec(
            name="tree-dc",
            rows=2,
            racks_per_row=2,
            servers_per_rack=4,
        ),
        TopologySpec(
            name="tree-pinned",
            rows=2,
            racks_per_row=2,
            servers_per_rack=4,
            flowlet_gap_s=None,
            enforce_levels=False,
        ),
    )
}


def topology_names() -> Tuple[str, ...]:
    """Every accepted ``--topology`` value, flat first."""
    return (FLAT_TOPOLOGY,) + tuple(sorted(_TOPOLOGIES))


def named_topology(name: str) -> TopologySpec:
    """The preset registered under *name* (flat has no spec)."""
    require(
        name in _TOPOLOGIES,
        f"unknown topology {name!r}; tree presets: {sorted(_TOPOLOGIES)}",
    )
    return _TOPOLOGIES[name]


@dataclass(frozen=True)
class PowerNode:
    """One PDU/feed in the tree, owning a contiguous leaf slice."""

    name: str
    kind: str  # "feed" | "row" | "rack"
    depth: int  # 0 = feed, 1 = row, 2 = rack
    start: int  # first global server index (inclusive)
    stop: int  # last global server index (exclusive)
    budget_w: float
    parent: Optional[str]
    children: Tuple[str, ...]

    @property
    def num_servers(self) -> int:
        """Leaf servers under this node."""
        return self.stop - self.start


class PowerTopology:
    """The power tree overlaid on a flat server list.

    Parameters
    ----------
    spec:
        Tree shape and oversubscription policy.
    server_nameplate_w:
        Faceplate power of one leaf server.
    budget_fraction:
        The run's provisioning scenario
        (:attr:`~repro.power.budget.BudgetLevel.fraction`); node budget
        is ``leaf count × nameplate × fraction × per-level oversub``.
    """

    def __init__(
        self,
        spec: TopologySpec,
        server_nameplate_w: float,
        budget_fraction: float,
    ) -> None:
        check_positive("server_nameplate_w", server_nameplate_w)
        check_positive("budget_fraction", budget_fraction)
        require(
            budget_fraction <= 1.0,
            f"budget_fraction must be <= 1, got {budget_fraction!r}",
        )
        self.spec = spec
        self.server_nameplate_w = float(server_nameplate_w)
        self.budget_fraction = float(budget_fraction)
        self.nodes: Dict[str, PowerNode] = {}
        self._build()
        #: Deepest-first sweep order for per-node enforcement: every
        #: rack before any row, rows before the feed, so child caps are
        #: already in place when a parent checks its own budget.
        self.enforcement_order: List[PowerNode] = [
            n for n in self.nodes.values() if n.kind == "rack"
        ] + [n for n in self.nodes.values() if n.kind == "row"]

    def _build(self) -> None:
        spec = self.spec
        row_names = tuple(f"row{r}" for r in range(spec.rows))
        self.nodes["feed"] = PowerNode(
            name="feed",
            kind="feed",
            depth=0,
            start=0,
            stop=spec.total_servers,
            budget_w=self._node_budget_w(spec.total_servers, spec.feed_oversub),
            parent=None,
            children=row_names,
        )
        for r in range(spec.rows):
            racks = tuple(
                f"rack{r * spec.racks_per_row + p}"
                for p in range(spec.racks_per_row)
            )
            row_span = spec.racks_per_row * spec.servers_per_rack
            self.nodes[f"row{r}"] = PowerNode(
                name=f"row{r}",
                kind="row",
                depth=1,
                start=r * row_span,
                stop=(r + 1) * row_span,
                budget_w=self._node_budget_w(row_span, spec.row_oversub),
                parent="feed",
                children=racks,
            )
        for k in range(spec.num_racks):
            self.nodes[f"rack{k}"] = PowerNode(
                name=f"rack{k}",
                kind="rack",
                depth=2,
                start=k * spec.servers_per_rack,
                stop=(k + 1) * spec.servers_per_rack,
                budget_w=self._node_budget_w(
                    spec.servers_per_rack, spec.rack_oversub
                ),
                parent=f"row{k // spec.racks_per_row}",
                children=(),
            )

    def _node_budget_w(self, num_servers: int, oversub: float) -> float:
        return (
            num_servers
            * self.server_nameplate_w
            * self.budget_fraction
            * oversub
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def feed(self) -> PowerNode:
        """The tree root (DC feed)."""
        return self.nodes["feed"]

    def node(self, name: str) -> PowerNode:
        """The node registered as *name*."""
        require(
            name in self.nodes,
            f"unknown topology node {name!r}; have {list(self.nodes)}",
        )
        return self.nodes[name]

    def servers_under(self, name: str) -> range:
        """Global indices of every leaf server in *name*'s subtree."""
        node = self.node(name)
        return range(node.start, node.stop)

    def rack_index_of(self, server_id: int) -> int:
        """The tree-rack index owning global server *server_id*."""
        check_int("server_id", server_id, minimum=0)
        require(
            server_id < self.spec.total_servers,
            f"server {server_id} outside topology of "
            f"{self.spec.total_servers} servers",
        )
        return server_id // self.spec.servers_per_rack

    # ------------------------------------------------------------------
    # Power views
    # ------------------------------------------------------------------
    def node_power_w(self, name: str, rack: "Rack") -> float:
        """Instantaneous power of *name*'s subtree.

        Left-to-right sum over the node's leaf slice — the exact
        reduction order of ``Rack.total_power`` — so the feed reading is
        bit-identical to the flat rack total and every node reading is
        bit-identical to the sum of its leaf servers.
        """
        node = self.node(name)
        total = 0.0
        for value in rack.per_server_power()[node.start : node.stop]:
            total += value
        return total

    def per_node_power(self, rack: "Rack") -> Dict[str, float]:
        """Instantaneous power of every node, keyed by node name.

        One per-server evaluation (vectorised under the batched engine)
        feeds every subtree reduction; each reduction is the same
        left-to-right sum as :meth:`node_power_w`.  ``numpy`` pairwise
        reductions are deliberately avoided: they regroup additions and
        would break the bit-identity of per-level readings with the sum
        of their leaf servers.
        """
        per_server = rack.per_server_power()
        powers: Dict[str, float] = {}
        for node in self.nodes.values():
            total = 0.0
            for value in per_server[node.start : node.stop]:
                total += value
            powers[node.name] = total
        return powers


class TopologyMonitor:
    """Fixed-interval sampler of per-node power against per-node budgets.

    The tree-mode sibling of :class:`~repro.power.meter.PowerMeter`:
    where the meter records the DC-feed time series, this monitor records
    one timeline per tree node and attributes every budget violation to
    the *deepest* violating node — a violated rack blames the rack, not
    the row above it, so exported metrics point at the PDU that would
    physically trip.
    """

    def __init__(
        self,
        engine: "EventEngine",
        rack: "Rack",
        topology: PowerTopology,
    ) -> None:
        self.engine = engine
        self.rack = rack
        self.topology = topology
        self.times_s: List[float] = []
        self.powers_w: Dict[str, List[float]] = {
            name: [] for name in topology.nodes
        }
        self.peak_w: Dict[str, float] = {name: 0.0 for name in topology.nodes}
        self.violation_slots: Dict[str, int] = dict.fromkeys(topology.nodes, 0)
        self.deepest_violation_slots: Dict[str, int] = dict.fromkeys(
            topology.nodes, 0
        )
        self._started = False

    def start(self, interval_s: float) -> None:
        """Begin sampling every *interval_s* (immediate first sample)."""
        check_positive("interval_s", interval_s)
        if self._started:
            raise RuntimeError("topology monitor already started")
        self._started = True
        self.sample()
        from ..sim.events import PRIORITY_MONITOR

        self.engine.every(interval_s, self.sample, priority=PRIORITY_MONITOR)

    def sample(self) -> Dict[str, float]:
        """Snapshot every node now; returns the per-node powers."""
        counters = self.engine.obs.counters
        powers = self.topology.per_node_power(self.rack)
        self.times_s.append(self.engine.now)
        violated: Dict[str, bool] = {}
        for name, power_w in powers.items():
            node = self.topology.nodes[name]
            self.powers_w[name].append(power_w)
            if power_w > self.peak_w[name]:
                self.peak_w[name] = power_w
            violated[name] = power_w > node.budget_w
            if violated[name]:
                self.violation_slots[name] += 1
                counters.inc(f"topology.violation_slots.{name}")
        for name, is_violated in violated.items():
            node = self.topology.nodes[name]
            if is_violated and not any(
                violated[child] for child in node.children
            ):
                self.deepest_violation_slots[name] += 1
                counters.inc(f"topology.deepest_violation_slots.{name}")
        return powers

    def timeline(self, name: str) -> Tuple[List[float], List[float]]:
        """(times, powers) series of node *name*."""
        self.topology.node(name)
        return list(self.times_s), list(self.powers_w[name])

    def deepest_violator(self) -> Optional[str]:
        """The node most often the deepest violation site, or ``None``."""
        best: Optional[str] = None
        best_slots = 0
        for name, slots in self.deepest_violation_slots.items():
            if slots > best_slots:
                best, best_slots = name, slots
        return best

    def report(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-node summary (budget, peak, violation slots)."""
        out: Dict[str, Dict[str, object]] = {}
        for name, node in self.topology.nodes.items():
            out[name] = {
                "kind": node.kind,
                "depth": node.depth,
                "servers": [node.start, node.stop],
                "budget_w": node.budget_w,
                "peak_w": self.peak_w[name],
                "violation_slots": self.violation_slots[name],
                "deepest_violation_slots": self.deepest_violation_slots[name],
            }
        return out
