"""Server power model.

Instantaneous server power is the sum of a frequency-dependent idle
floor and a per-worker dynamic term that depends on *what* each busy
worker is executing:

``P = P_idle(r) + (P_dyn_max / W) · Σ_busy γ_t · (s_t · r^α + (1 − s_t))``

where ``r = f/f_max``, ``W`` the worker count, and ``(γ_t, s_t)`` the
request type's power intensity and frequency sensitivity (see
:mod:`repro.workloads.catalog`).  With the default parameters a fully
loaded server running Colla-Filt at nominal frequency draws its 100 W
nameplate, matching the paper's leaf node.

This separation is the mechanism behind the paper's key observations:

* application-layer floods (big γ) drive power to nameplate while
  volume floods (tiny γ) barely move it — Figs 3 & 5;
* memory-bound K-means (small ``s``) keeps burning power when DVFS
  lowers ``r``, so capping it needs deeper V/F cuts — Fig 6b.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .._validation import check_fraction, check_int, check_positive
from ..workloads.catalog import RequestType
from .dvfs import FrequencyLadder

__all__ = ["ServerPowerModel", "TypeSlotRegistry", "PowerEvalTable"]


class ServerPowerModel:
    """Analytic power model of one leaf server.

    Parameters
    ----------
    nameplate_w:
        Faceplate power: the draw with every worker busy on the most
        power-intense type at nominal frequency.
    idle_fraction:
        Fraction of nameplate drawn by an idle server at nominal
        frequency.
    idle_freq_slope:
        Fraction of the idle floor that scales linearly with the
        frequency ratio (static leakage vs. clock-tree power).
    alpha:
        Exponent of the dynamic-power/frequency relationship (V roughly
        tracks f, so dynamic power ~ f·V² gives α between 2 and 3).
    num_workers:
        Worker slots the dynamic budget is split across.
    """

    __slots__ = (
        "nameplate_w",
        "idle_fraction",
        "idle_freq_slope",
        "alpha",
        "num_workers",
        "_idle_at_max",
        "_dyn_max",
        "_per_worker",
    )

    def __init__(
        self,
        nameplate_w: float = 100.0,
        idle_fraction: float = 0.38,
        idle_freq_slope: float = 0.25,
        alpha: float = 2.4,
        num_workers: int = 8,
    ) -> None:
        check_positive("nameplate_w", nameplate_w)
        check_fraction("idle_fraction", idle_fraction, inclusive=False)
        check_fraction("idle_freq_slope", idle_freq_slope)
        check_positive("alpha", alpha)
        check_int("num_workers", num_workers, minimum=1)
        self.nameplate_w = float(nameplate_w)
        self.idle_fraction = float(idle_fraction)
        self.idle_freq_slope = float(idle_freq_slope)
        self.alpha = float(alpha)
        self.num_workers = num_workers
        self._idle_at_max = self.nameplate_w * self.idle_fraction
        self._dyn_max = self.nameplate_w - self._idle_at_max
        self._per_worker = self._dyn_max / num_workers

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def idle_power(self, freq_ratio: float) -> float:
        """Idle floor (watts) at the given frequency ratio."""
        check_fraction("freq_ratio", freq_ratio)
        s = self.idle_freq_slope
        return self._idle_at_max * ((1.0 - s) + s * freq_ratio)

    def worker_power(self, rtype: RequestType, freq_ratio: float) -> float:
        """Dynamic power (watts) of one worker executing *rtype*."""
        return self._per_worker * rtype.dynamic_power_factor(
            freq_ratio, alpha=self.alpha
        )

    def power(
        self, active_types: Iterable[RequestType], freq_ratio: float
    ) -> float:
        """Total server power for the given set of busy workers."""
        dyn = sum(
            rtype.dynamic_power_factor(freq_ratio, alpha=self.alpha)
            for rtype in active_types
        )
        return self.idle_power(freq_ratio) + self._per_worker * dyn

    def power_from_counts(
        self,
        counts: Sequence[int],
        factor_row: Sequence[float],
        idle_w: float,
    ) -> float:
        """Total server power from per-type-slot busy-worker counts.

        The count-based hot path: *counts* holds how many workers run
        each registered type and *factor_row* the cached
        ``dynamic_power_factor`` per slot at the server's level (see
        :class:`PowerEvalTable`).  The accumulation order — slot 0, 1,
        2, … with ``count * factor`` terms — is the contract shared
        with the vectorised rack path, so scalar and batched modes
        produce bit-identical floats.
        """
        dyn = 0.0
        for i in range(len(counts)):
            dyn += counts[i] * factor_row[i]
        return idle_w + self._per_worker * dyn

    # ------------------------------------------------------------------
    # Closed-form helpers used by planners and offline profiling
    # ------------------------------------------------------------------
    def full_load_power(self, rtype: RequestType, freq_ratio: float) -> float:
        """Power with all workers busy on *rtype* — DVFS planners' bound."""
        return self.idle_power(freq_ratio) + self._dyn_max * (
            rtype.dynamic_power_factor(freq_ratio, alpha=self.alpha)
        )

    def energy_per_request(self, rtype: RequestType, freq_ratio: float) -> float:
        """Marginal energy (joules) one request of *rtype* adds.

        This is the dynamic worker power times the stretched service
        time — the quantity the paper's Fig. 5b ranks request types by,
        and the cost the Token scheme charges per admission.
        """
        return self.worker_power(rtype, freq_ratio) * rtype.service_time(freq_ratio)

    def max_power(self) -> float:
        """Upper bound of the model (== nameplate for γ=s=1 types)."""
        return self.nameplate_w

    def min_active_power(self, freq_ratio: float) -> float:
        """Idle floor — the deepest power any throttle can reach."""
        return self.idle_power(freq_ratio)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerPowerModel(nameplate={self.nameplate_w:.0f}W, "
            f"idle={self._idle_at_max:.0f}W, workers={self.num_workers})"
        )


class TypeSlotRegistry:
    """Append-only mapping of request types to dense slot indices.

    One registry is shared by every server of a rack, so all of them
    agree on one canonical slot order.  Slots are assigned in
    first-seen order; since which request starts service when is fully
    seed-determined (and identical across execution modes by the
    equivalence contract), the slot order is deterministic too.

    Types are keyed by ``name``: registering a *different* type under
    an already-registered name is rejected, because the cached factor
    tables would silently serve the wrong physics.
    """

    __slots__ = ("types", "_slots")

    def __init__(self) -> None:
        self.types: List[RequestType] = []
        self._slots: Dict[str, int] = {}

    def slot_of(self, rtype: RequestType) -> int:
        """Slot index of *rtype*, registering it on first sight."""
        slot = self._slots.get(rtype.name)
        if slot is not None:
            known = self.types[slot]
            if known is not rtype and known != rtype:
                raise ValueError(
                    f"request type name {rtype.name!r} re-registered with "
                    "different parameters; type names must be unique per "
                    "simulation"
                )
            return slot
        slot = len(self.types)
        self.types.append(rtype)
        self._slots[rtype.name] = slot
        return slot

    def __len__(self) -> int:
        return len(self.types)


class PowerEvalTable:
    """Cached per-(type-slot, DVFS-level) physics for one (model, ladder).

    The hot loops never call :meth:`RequestType.dynamic_power_factor` /
    :meth:`RequestType.speedup` directly — they read rows cached here,
    one float per registered type slot, materialised lazily per ladder
    level.  The cached values are exactly the floats the uncached calls
    would produce, so swapping the table in changes no result.

    :meth:`factor_matrix` exposes the same cache as a dense
    ``(num_slots, num_levels)`` array for the batched mode's vectorised
    rack evaluation; because the matrix is filled from the identical
    cached rows, scalar and vector paths share every input bit.
    """

    __slots__ = (
        "model",
        "ladder",
        "registry",
        "_factor_rows",
        "_speedup_rows",
        "_idle_by_level",
        "_matrix",
        "_matrix_slots",
    )

    def __init__(
        self,
        model: ServerPowerModel,
        ladder: FrequencyLadder,
        registry: Optional[TypeSlotRegistry] = None,
    ) -> None:
        self.model = model
        self.ladder = ladder
        self.registry = registry if registry is not None else TypeSlotRegistry()
        self._factor_rows: Dict[int, List[float]] = {}
        self._speedup_rows: Dict[int, List[float]] = {}
        self._idle_by_level: List[float] = [
            model.idle_power(ladder.ratio(level))
            for level in range(ladder.max_level + 1)
        ]
        self._matrix: Optional[np.ndarray] = None
        self._matrix_slots = -1

    def slot_of(self, rtype: RequestType) -> int:
        """Delegate to the shared registry."""
        return self.registry.slot_of(rtype)

    def idle_power_at(self, level: int) -> float:
        """Idle floor (watts) at ladder *level*."""
        return self._idle_by_level[level]

    def factor_row(self, level: int) -> List[float]:
        """``dynamic_power_factor`` per slot at *level* (grown lazily)."""
        row = self._factor_rows.get(level)
        if row is None:
            row = []
            self._factor_rows[level] = row
        types = self.registry.types
        if len(row) < len(types):
            ratio = self.ladder.ratio(level)
            alpha = self.model.alpha
            for rtype in types[len(row):]:
                row.append(rtype.dynamic_power_factor(ratio, alpha=alpha))
        return row

    def speedup_row(self, level: int) -> List[float]:
        """``speedup`` per slot at *level* (grown lazily)."""
        row = self._speedup_rows.get(level)
        if row is None:
            row = []
            self._speedup_rows[level] = row
        types = self.registry.types
        if len(row) < len(types):
            ratio = self.ladder.ratio(level)
            for rtype in types[len(row):]:
                row.append(rtype.speedup(ratio))
        return row

    def idle_array(self) -> np.ndarray:
        """Idle floor per level as an array (vector path)."""
        return np.asarray(self._idle_by_level)

    def factor_matrix(self) -> np.ndarray:
        """Dense ``(num_slots, num_levels)`` factor matrix (vector path).

        Rebuilt only when the registry has grown since the last call;
        entries are copied from the scalar rows so both paths read the
        same floats.
        """
        num_slots = len(self.registry)
        if self._matrix is None or self._matrix_slots != num_slots:
            num_levels = self.ladder.max_level + 1
            rows = [self.factor_row(level) for level in range(num_levels)]
            matrix = np.empty((num_slots, num_levels))
            for level in range(num_levels):
                row = rows[level]
                for slot in range(num_slots):
                    matrix[slot, level] = row[slot]
            self._matrix = matrix
            self._matrix_slots = num_slots
        return self._matrix
