"""Server power model.

Instantaneous server power is the sum of a frequency-dependent idle
floor and a per-worker dynamic term that depends on *what* each busy
worker is executing:

``P = P_idle(r) + (P_dyn_max / W) · Σ_busy γ_t · (s_t · r^α + (1 − s_t))``

where ``r = f/f_max``, ``W`` the worker count, and ``(γ_t, s_t)`` the
request type's power intensity and frequency sensitivity (see
:mod:`repro.workloads.catalog`).  With the default parameters a fully
loaded server running Colla-Filt at nominal frequency draws its 100 W
nameplate, matching the paper's leaf node.

This separation is the mechanism behind the paper's key observations:

* application-layer floods (big γ) drive power to nameplate while
  volume floods (tiny γ) barely move it — Figs 3 & 5;
* memory-bound K-means (small ``s``) keeps burning power when DVFS
  lowers ``r``, so capping it needs deeper V/F cuts — Fig 6b.
"""

from __future__ import annotations

from typing import Iterable

from .._validation import check_fraction, check_int, check_positive
from ..workloads.catalog import RequestType

__all__ = ["ServerPowerModel"]


class ServerPowerModel:
    """Analytic power model of one leaf server.

    Parameters
    ----------
    nameplate_w:
        Faceplate power: the draw with every worker busy on the most
        power-intense type at nominal frequency.
    idle_fraction:
        Fraction of nameplate drawn by an idle server at nominal
        frequency.
    idle_freq_slope:
        Fraction of the idle floor that scales linearly with the
        frequency ratio (static leakage vs. clock-tree power).
    alpha:
        Exponent of the dynamic-power/frequency relationship (V roughly
        tracks f, so dynamic power ~ f·V² gives α between 2 and 3).
    num_workers:
        Worker slots the dynamic budget is split across.
    """

    __slots__ = (
        "nameplate_w",
        "idle_fraction",
        "idle_freq_slope",
        "alpha",
        "num_workers",
        "_idle_at_max",
        "_dyn_max",
        "_per_worker",
    )

    def __init__(
        self,
        nameplate_w: float = 100.0,
        idle_fraction: float = 0.38,
        idle_freq_slope: float = 0.25,
        alpha: float = 2.4,
        num_workers: int = 8,
    ) -> None:
        check_positive("nameplate_w", nameplate_w)
        check_fraction("idle_fraction", idle_fraction, inclusive=False)
        check_fraction("idle_freq_slope", idle_freq_slope)
        check_positive("alpha", alpha)
        check_int("num_workers", num_workers, minimum=1)
        self.nameplate_w = float(nameplate_w)
        self.idle_fraction = float(idle_fraction)
        self.idle_freq_slope = float(idle_freq_slope)
        self.alpha = float(alpha)
        self.num_workers = num_workers
        self._idle_at_max = self.nameplate_w * self.idle_fraction
        self._dyn_max = self.nameplate_w - self._idle_at_max
        self._per_worker = self._dyn_max / num_workers

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def idle_power(self, freq_ratio: float) -> float:
        """Idle floor (watts) at the given frequency ratio."""
        check_fraction("freq_ratio", freq_ratio)
        s = self.idle_freq_slope
        return self._idle_at_max * ((1.0 - s) + s * freq_ratio)

    def worker_power(self, rtype: RequestType, freq_ratio: float) -> float:
        """Dynamic power (watts) of one worker executing *rtype*."""
        return self._per_worker * rtype.dynamic_power_factor(
            freq_ratio, alpha=self.alpha
        )

    def power(
        self, active_types: Iterable[RequestType], freq_ratio: float
    ) -> float:
        """Total server power for the given set of busy workers."""
        dyn = sum(
            rtype.dynamic_power_factor(freq_ratio, alpha=self.alpha)
            for rtype in active_types
        )
        return self.idle_power(freq_ratio) + self._per_worker * dyn

    # ------------------------------------------------------------------
    # Closed-form helpers used by planners and offline profiling
    # ------------------------------------------------------------------
    def full_load_power(self, rtype: RequestType, freq_ratio: float) -> float:
        """Power with all workers busy on *rtype* — DVFS planners' bound."""
        return self.idle_power(freq_ratio) + self._dyn_max * (
            rtype.dynamic_power_factor(freq_ratio, alpha=self.alpha)
        )

    def energy_per_request(self, rtype: RequestType, freq_ratio: float) -> float:
        """Marginal energy (joules) one request of *rtype* adds.

        This is the dynamic worker power times the stretched service
        time — the quantity the paper's Fig. 5b ranks request types by,
        and the cost the Token scheme charges per admission.
        """
        return self.worker_power(rtype, freq_ratio) * rtype.service_time(freq_ratio)

    def max_power(self) -> float:
        """Upper bound of the model (== nameplate for γ=s=1 types)."""
        return self.nameplate_w

    def min_active_power(self, freq_ratio: float) -> float:
        """Idle floor — the deepest power any throttle can reach."""
        return self.idle_power(freq_ratio)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerPowerModel(nameplate={self.nameplate_w:.0f}W, "
            f"idle={self._idle_at_max:.0f}W, workers={self.num_workers})"
        )
