"""Deterministic fault plans.

A :class:`FaultPlan` is the *schedule* half of the chaos layer: a typed,
seeded list of :class:`FaultEvent` saying what breaks, when, for how
long.  Plans are pure data — building one touches no simulator state —
so the same plan can be armed against any simulation, compared across
schemes, serialised into chaos payloads, and hashed for byte-identity
tests (:meth:`FaultPlan.signature`).

Two construction styles:

* **explicit schedule** — chain the builder methods
  (:meth:`~FaultPlan.server_crash`, :meth:`~FaultPlan.meter_noise`, …)
  to script a scenario;
* **hazard-rate draw** — :meth:`FaultPlan.from_hazard` samples crash
  and meter-fault arrivals from exponential inter-arrival times on a
  dedicated seeded stream (never the wall clock), for randomised but
  reproducible chaos.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .._validation import (
    check_fraction,
    check_int,
    check_non_negative,
    check_positive,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
]

#: SeedSequence spawn key isolating the hazard-draw stream from every
#: other consumer of the plan seed (the injector's noise stream uses 1).
_HAZARD_STREAM = 0


class FaultKind(enum.Enum):
    """The typed faults the injector knows how to apply."""

    SERVER_CRASH = "server_crash"
    PDU_TRIP = "pdu_trip"
    METER_DROPOUT = "meter_dropout"
    METER_STALE = "meter_stale"
    METER_NOISE = "meter_noise"
    BATTERY_FADE = "battery_fade"
    BATTERY_STUCK = "battery_stuck"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a server index for server-scoped kinds and ``-1`` for
    rack/infrastructure-wide ones; ``params`` carries the kind-specific
    knobs (durations, noise levels, fade fractions).  ``node`` scopes a
    PDU trip to one power-tree node (``"rack0"``, ``"row1"``); the empty
    string keeps the legacy whole-fleet trip.
    """

    time_s: float
    kind: FaultKind
    target: int = -1
    params: Dict[str, float] = field(default_factory=dict)
    node: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (kind reduced to its string value).

        ``node`` serialises only when set, so plans written before the
        topology layer keep their exact signatures.
        """
        out: Dict[str, object] = {
            "time_s": self.time_s,
            "kind": self.kind.value,
            "target": self.target,
            "params": dict(sorted(self.params.items())),
        }
        if self.node:
            out["node"] = self.node
        return out


@dataclass
class FaultPlan:
    """A seeded, ordered fault schedule.

    Parameters
    ----------
    seed:
        Master seed of the plan.  It keys both the hazard draw (when
        :meth:`from_hazard` built the plan) and the injector's
        measurement-noise stream, so one integer pins every random
        aspect of a chaos run.
    events:
        The schedule; builder methods append and return ``self`` for
        chaining.
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_int("seed", self.seed, minimum=0)

    # ------------------------------------------------------------------
    # Builders (chainable)
    # ------------------------------------------------------------------
    def server_crash(
        self, time_s: float, server_id: int, duration_s: float
    ) -> "FaultPlan":
        """Crash one server at *time_s*; it recovers after *duration_s*."""
        check_non_negative("time_s", time_s)
        check_int("server_id", server_id, minimum=0)
        check_positive("duration_s", duration_s)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.SERVER_CRASH,
                target=server_id,
                params={"duration_s": duration_s},
            )
        )
        return self

    def pdu_trip(
        self, time_s: float, duration_s: float, node: str = ""
    ) -> "FaultPlan":
        """Trip a branch circuit: its whole subtree fails at once.

        With the default empty *node* every server fails (the flat
        model's single PDU).  Against a power tree, *node* names the
        tripped PDU — ``"rack2"``, ``"row0"`` or ``"feed"`` — and the
        cascade takes down exactly that subtree: a row trip fails all of
        its racks' servers while the other rows keep serving.
        """
        check_non_negative("time_s", time_s)
        check_positive("duration_s", duration_s)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.PDU_TRIP,
                params={"duration_s": duration_s},
                node=node,
            )
        )
        return self

    def meter_dropout(self, time_s: float, duration_s: float) -> "FaultPlan":
        """Power meter returns nothing for *duration_s* seconds."""
        check_non_negative("time_s", time_s)
        check_positive("duration_s", duration_s)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.METER_DROPOUT,
                params={"duration_s": duration_s},
            )
        )
        return self

    def meter_stale(self, time_s: float, duration_s: float) -> "FaultPlan":
        """Power meter repeats its *time_s* reading for *duration_s*."""
        check_non_negative("time_s", time_s)
        check_positive("duration_s", duration_s)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.METER_STALE,
                params={"duration_s": duration_s},
            )
        )
        return self

    def meter_noise(
        self, time_s: float, sigma_w: float, bias_w: float = 0.0
    ) -> "FaultPlan":
        """From *time_s* on, add Gaussian noise/bias to meter reads."""
        check_non_negative("time_s", time_s)
        check_non_negative("sigma_w", sigma_w)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.METER_NOISE,
                params={"sigma_w": sigma_w, "bias_w": bias_w},
            )
        )
        return self

    def battery_fade(self, time_s: float, fraction: float) -> "FaultPlan":
        """Scale battery capacity by *fraction* at *time_s*."""
        check_non_negative("time_s", time_s)
        check_positive("fraction", fraction)
        check_fraction("fraction", fraction)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.BATTERY_FADE,
                params={"fraction": fraction},
            )
        )
        return self

    def battery_stuck(self, time_s: float, duration_s: float) -> "FaultPlan":
        """Freeze the battery at its SoC for *duration_s* seconds."""
        check_non_negative("time_s", time_s)
        check_positive("duration_s", duration_s)
        self.events.append(
            FaultEvent(
                time_s=time_s,
                kind=FaultKind.BATTERY_STUCK,
                params={"duration_s": duration_s},
            )
        )
        return self

    # ------------------------------------------------------------------
    # Hazard-rate construction
    # ------------------------------------------------------------------
    @classmethod
    def from_hazard(
        cls,
        seed: int,
        duration_s: float,
        num_servers: int,
        crash_rate_hz: float = 1.0 / 120.0,
        mean_outage_s: float = 20.0,
        meter_fault_rate_hz: float = 0.0,
        mean_meter_fault_s: float = 10.0,
    ) -> "FaultPlan":
        """Sample a plan from exponential inter-arrival hazards.

        Crash arrivals are a Poisson process of rate *crash_rate_hz*
        over ``[0, duration_s)``; each picks a uniform victim server and
        an exponential outage of mean *mean_outage_s*.  When
        *meter_fault_rate_hz* is nonzero, meter faults arrive the same
        way, alternating dropout and stale windows of mean
        *mean_meter_fault_s*.  All draws come from one
        ``SeedSequence([seed, 0])`` stream in a fixed order, so the same
        arguments always yield the same plan.
        """
        check_positive("duration_s", duration_s)
        check_int("num_servers", num_servers, minimum=1)
        check_non_negative("crash_rate_hz", crash_rate_hz)
        check_positive("mean_outage_s", mean_outage_s)
        check_non_negative("meter_fault_rate_hz", meter_fault_rate_hz)
        check_positive("mean_meter_fault_s", mean_meter_fault_s)
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, _HAZARD_STREAM])
        )
        plan = cls(seed=seed)
        if crash_rate_hz > 0.0:
            t = float(rng.exponential(1.0 / crash_rate_hz))
            while t < duration_s:
                victim = int(rng.integers(0, num_servers))
                outage_s = max(1e-3, float(rng.exponential(mean_outage_s)))
                plan.server_crash(t, victim, outage_s)
                t += float(rng.exponential(1.0 / crash_rate_hz))
        if meter_fault_rate_hz > 0.0:
            stale = False
            t = float(rng.exponential(1.0 / meter_fault_rate_hz))
            while t < duration_s:
                window_s = max(
                    1e-3, float(rng.exponential(mean_meter_fault_s))
                )
                if stale:
                    plan.meter_stale(t, window_s)
                else:
                    plan.meter_dropout(t, window_s)
                stale = not stale
                t += float(rng.exponential(1.0 / meter_fault_rate_hz))
        return plan

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the whole plan."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def signature(self) -> str:
        """Canonical JSON of the plan — the byte-identity test anchor."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = [event.kind.value for event in self.events]
        return f"FaultPlan(seed={self.seed}, events={kinds})"
