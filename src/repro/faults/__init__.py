"""repro.faults — deterministic fault injection and chaos sweeps.

The graceful-degradation layer: seeded :class:`FaultPlan` schedules of
typed faults (server crash, PDU trip, meter dropout/stale/noise,
battery fade/stuck), a :class:`FaultInjector` that arms them through
the event engine, and :func:`run_chaos` — the Table-2 scheme matrix
re-run with the infrastructure misbehaving, through the parallel
cached experiment runner.
"""

from .chaos import (
    CHAOS_SCHEMA_ID,
    CHAOS_SCHEMES,
    chaos_cell,
    run_chaos,
    validate_chaos_payload,
)
from .injector import FaultInjector
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "CHAOS_SCHEMA_ID",
    "CHAOS_SCHEMES",
    "chaos_cell",
    "run_chaos",
    "validate_chaos_payload",
]
