"""Fault injector: arms a :class:`~repro.faults.plan.FaultPlan`.

The injector is the bridge between a pure-data fault plan and a live
:class:`~repro.sim.simulation.DataCenterSimulation`.  :meth:`arm` does
two things:

* attaches a :class:`~repro.power.sensor.FaultyPowerSensor` between the
  rack and the scheme (noise drawn from ``SeedSequence([seed, 1])``, a
  stream no other component touches), so meter faults degrade what the
  controller *sees* while the physics stay exact;
* schedules every plan event on the engine at ``PRIORITY_MONITOR`` —
  faults land *before* the same-instant control action, the same
  ordering a real monitoring plane gives a real controller.

Degradation paths exercised when faults fire:

* a crashed server sheds queued requests back to the NLB
  (:meth:`~repro.network.load_balancer.NetworkLoadBalancer.reroute`)
  and fails in-flight ones as ``FAILED_SERVER`` terminal events;
* the NLB retries no-backend requests with capped exponential backoff
  (its :class:`~repro.network.load_balancer.RetryPolicy`);
* schemes fall back to last-known-good meter readings under the
  bounded-staleness guard of
  :meth:`~repro.power.manager.PowerManagementScheme.attach_power_sensor`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from .._validation import check_positive
from ..power.sensor import FaultyPowerSensor
from ..sim.events import PRIORITY_MONITOR
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultInjector"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.simulation import DataCenterSimulation

#: SeedSequence spawn key of the sensor-noise stream (hazard draw is 0).
_NOISE_STREAM = 1


class FaultInjector:
    """Applies a fault plan to one simulation.

    Parameters
    ----------
    sim:
        The target simulation (engine must not have passed the earliest
        plan event yet).
    plan:
        The fault schedule.
    staleness_bound_s:
        Bounded-staleness window handed to the schemes' sensor fallback:
        meter readings older than this make the scheme assume worst-case
        nameplate draw.
    attach_sensor:
        When True (default) the scheme's power observations are routed
        through the faultable sensor even if the plan contains no meter
        faults — keeping the observation path identical across the
        faulted and unfaulted arms of a comparison.
    """

    def __init__(
        self,
        sim: "DataCenterSimulation",
        plan: FaultPlan,
        staleness_bound_s: float = 5.0,
        attach_sensor: bool = True,
    ) -> None:
        check_positive("staleness_bound_s", staleness_bound_s)
        self.sim = sim
        self.plan = plan
        self.staleness_bound_s = float(staleness_bound_s)
        self._attach_sensor = attach_sensor
        self.sensor: FaultyPowerSensor = FaultyPowerSensor(
            sim.rack,
            rng=np.random.default_rng(
                np.random.SeedSequence([plan.seed, _NOISE_STREAM])
            ),
        )
        self.injected: Dict[str, int] = {}
        self._armed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Attach the sensor and schedule every plan event (once)."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        if self._attach_sensor:
            self.sim.scheme.attach_power_sensor(
                self.sensor, staleness_bound_s=self.staleness_bound_s
            )
        for event in self.plan.events:
            self.sim.engine.schedule_at(
                event.time_s,
                lambda e=event: self._apply(e),
                priority=PRIORITY_MONITOR,
            )

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        self.sim.obs.counters.inc(f"faults.injected.{kind.value}")
        handler = {
            FaultKind.SERVER_CRASH: self._server_crash,
            FaultKind.PDU_TRIP: self._pdu_trip,
            FaultKind.METER_DROPOUT: self._meter_dropout,
            FaultKind.METER_STALE: self._meter_stale,
            FaultKind.METER_NOISE: self._meter_noise,
            FaultKind.BATTERY_FADE: self._battery_fade,
            FaultKind.BATTERY_STUCK: self._battery_stuck,
        }[kind]
        handler(event)

    def _server_crash(self, event: FaultEvent) -> None:
        server = self.sim.rack.servers[event.target]
        server.fail(shed_sink=self.sim.nlb.reroute)
        self.sim.engine.schedule(
            event.params["duration_s"],
            server.recover,
            priority=PRIORITY_MONITOR,
        )

    def _pdu_trip(self, event: FaultEvent) -> None:
        """Fail the tripped PDU's whole subtree (cascade semantics).

        An un-scoped event keeps the legacy behaviour — every server
        trips (the flat model has exactly one PDU).  A node-scoped event
        requires the simulation to run a power tree and takes down the
        named node's subtree only: a row trip cascades into all of its
        racks' servers, the rest of the facility keeps serving.
        """
        if event.node:
            topology = self.sim.topology
            if topology is None:
                raise ValueError(
                    f"pdu_trip targets node {event.node!r} but the "
                    "simulation runs the flat topology"
                )
            victims = [
                self.sim.rack.servers[i]
                for i in topology.servers_under(event.node)
            ]
            self.sim.obs.counters.inc(f"topology.pdu_trips.{event.node}")
        else:
            victims = list(self.sim.rack.servers)
        tripped: List[int] = []
        for server in victims:
            if server.healthy:
                tripped.append(server.server_id)
                server.fail(shed_sink=self.sim.nlb.reroute)

        def restore() -> None:
            for server_id in tripped:
                self.sim.rack.servers[server_id].recover()

        self.sim.engine.schedule(
            event.params["duration_s"], restore, priority=PRIORITY_MONITOR
        )

    def _meter_dropout(self, event: FaultEvent) -> None:
        self.sensor.start_dropout(
            self.sim.engine.now, event.params["duration_s"]
        )

    def _meter_stale(self, event: FaultEvent) -> None:
        self.sensor.start_stale(
            self.sim.engine.now, event.params["duration_s"]
        )

    def _meter_noise(self, event: FaultEvent) -> None:
        self.sensor.set_noise(
            event.params["sigma_w"], event.params.get("bias_w", 0.0)
        )

    def _battery_fade(self, event: FaultEvent) -> None:
        if self.sim.battery is not None:
            self.sim.battery.apply_capacity_fade(event.params["fraction"])

    def _battery_stuck(self, event: FaultEvent) -> None:
        battery = self.sim.battery
        if battery is None:
            return
        battery.set_stuck(True)
        self.sim.engine.schedule(
            event.params["duration_s"],
            lambda: battery.set_stuck(False),
            priority=PRIORITY_MONITOR,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector({len(self.plan)} events, "
            f"armed={self._armed}, injected={self.injected})"
        )
