"""Chaos sweep: the Table-2 scheme matrix under attack *and* faults.

The paper evaluates Capping/Shaving/Token/Anti-DOPE against a traffic
flood with the infrastructure behaving perfectly.  The chaos sweep asks
the harsher question the fault layer exists for: how do those schemes —
plus the ``online-detect`` streaming detector — degrade when the flood
coincides with a server crash, a noisy or silent power meter, and a
battery that stops cooperating?

One :func:`chaos_cell` is one (scheme, scenario) run: it scripts a
deterministic :class:`~repro.faults.plan.FaultPlan` from the cell
parameters, arms a :class:`~repro.faults.injector.FaultInjector`, runs
the simulation and returns a flat JSON-ready dict with availability,
latency, peak power and — the fault layer's headline — the **drop
attribution** splitting losses the scheme chose (policy) from losses
the infrastructure inflicted (fault).

:func:`run_chaos` fans the scheme matrix through
:func:`repro.runner.run_cells`, so chaos sweeps inherit process-parallel
fan-out with byte-identical output for any worker count, plus on-disk
result caching.  The payload follows the hand-validated
``repro-chaos/1`` schema (:func:`validate_chaos_payload`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import check_int, check_positive
from .._version import __version__
from ..detect import make_scheme, validate_scheme_names
from ..metrics.latency import LatencyStats
from ..obs import Recorder, config_hash, jsonable
from ..power import BudgetLevel
from ..runner import CellSpec, ResultCache, run_cells
from ..sim import DataCenterSimulation, SimulationConfig
from ..workloads import COLLA_FILT, K_MEANS, WORD_COUNT, TrafficClass, uniform_mix
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = [
    "CHAOS_SCHEMA_ID",
    "CHAOS_SCHEMES",
    "chaos_cell",
    "run_chaos",
    "validate_chaos_payload",
]

#: Identifier stamped into every chaos document this version emits.
CHAOS_SCHEMA_ID = "repro-chaos/1"

#: The scheme matrix the sweep compares: Table 2 plus the online
#: detector and the history-driven predictor.  New schemes append at
#: the END — downstream consumers index cells positionally and the
#: capping control arm must remain first.
CHAOS_SCHEMES: Tuple[str, ...] = (
    "capping",
    "shaving",
    "token",
    "anti-dope",
    "online-detect",
    "prediction",
)

#: Attack onset within every chaos cell.
_ATTACK_START_S = 20.0

#: Staleness bound handed to the schemes' sensor fallback.
_STALENESS_BOUND_S = 5.0


def _scenario_plan(
    seed: int,
    duration_s: float,
    num_servers: int,
    profile: str,
    topology: str = "flat",
) -> FaultPlan:
    """The scripted fault schedule of one cell.

    ``"none"`` keeps the faultable sensor attached but injects nothing
    (the control arm); ``"combined"`` is the smoke scenario the ISSUE
    gates on — DOPE flood + one server crash + meter noise + a meter
    dropout long enough to cross the staleness bound; ``"severe"`` adds
    a PDU trip and battery degradation on top.  Under a power tree the
    severe trip targets ``row0`` — a row-level cascade that takes down
    that row's racks while the rest of the facility keeps serving —
    instead of the flat model's whole-fleet blackout.
    """
    plan = FaultPlan(seed=seed)
    if profile == "none":
        return plan
    crash_at_s = _ATTACK_START_S + 0.3 * (duration_s - _ATTACK_START_S)
    outage_s = max(5.0, 0.15 * duration_s)
    plan.meter_noise(_ATTACK_START_S + 5.0, sigma_w=8.0, bias_w=0.0)
    plan.server_crash(crash_at_s, seed % num_servers, outage_s)
    plan.meter_dropout(
        _ATTACK_START_S + 0.6 * (duration_s - _ATTACK_START_S),
        duration_s=3.0 * _STALENESS_BOUND_S,
    )
    if profile == "severe":
        plan.battery_fade(crash_at_s, fraction=0.5)
        plan.battery_stuck(
            crash_at_s + outage_s, duration_s=max(5.0, 0.1 * duration_s)
        )
        plan.pdu_trip(
            _ATTACK_START_S + 0.8 * (duration_s - _ATTACK_START_S),
            duration_s=max(4.0, 0.05 * duration_s),
            node="" if topology == "flat" else "row0",
        )
    return plan


def chaos_cell(
    scheme: str,
    seed: int,
    budget: str = "LOW",
    num_servers: int = 4,
    duration_s: float = 90.0,
    attack_rate_rps: float = 220.0,
    normal_rate_rps: float = 40.0,
    profile: str = "combined",
    topology: str = "flat",
) -> Dict[str, object]:
    """Run one scheme under the DOPE flood + fault scenario.

    Module-level and driven entirely by JSON-representable keyword
    arguments, so it is picklable for the process pool and cacheable by
    the runner.  Everything in the returned dict is deterministic per
    arguments — no wall-clock values — which is what makes chaos
    payloads byte-identical across worker counts.

    A tree *topology* sizes the fleet from the preset (ignoring
    *num_servers*), forwards through the ECMP/flowlet fabric and adds
    the per-node ``topology_report`` to the cell.
    """
    config = SimulationConfig.for_topology(
        topology,
        budget_level=BudgetLevel[budget],
        seed=seed,
        **({"num_servers": num_servers} if topology == "flat" else {}),
    )
    num_servers = config.num_servers
    scheme_obj = make_scheme(scheme, config)
    sim = DataCenterSimulation(config, scheme=scheme_obj)
    plan = _scenario_plan(seed, duration_s, num_servers, profile, topology)
    injector = FaultInjector(
        sim, plan, staleness_bound_s=_STALENESS_BOUND_S
    )
    injector.arm()
    sim.add_normal_traffic(rate_rps=normal_rate_rps)
    sim.add_flood(
        mix=uniform_mix((COLLA_FILT, K_MEANS, WORD_COUNT)),
        rate_rps=attack_rate_rps,
        num_agents=20,
        start_s=_ATTACK_START_S,
    )
    sim.run(duration_s)

    avail = sim.availability_report(
        sla_s=0.5,
        traffic_class=TrafficClass.NORMAL,
        start_s=_ATTACK_START_S,
    )
    stats: LatencyStats = sim.latency_stats(
        traffic_class=TrafficClass.NORMAL, start_s=_ATTACK_START_S
    )
    attribution = sim.collector.drop_attribution(
        traffic_class=TrafficClass.NORMAL, start_s=_ATTACK_START_S
    )
    # All-classes attribution: fault losses often hit the (dominant)
    # attack population, which the NORMAL-only split cannot see.
    attribution_all = sim.collector.drop_attribution()
    counters = sim.obs.counters
    cell: Dict[str, object] = (
        {}
        if sim.topology_monitor is None
        else {"topology_report": sim.topology_monitor.report()}
    )
    if hasattr(scheme_obj, "report"):
        # Online-detection cells carry the detector's verdict state so
        # the chaos document shows graceful degradation under meter
        # faults (calibration clamps, quarantine churn) per profile.
        cell["detector"] = jsonable(scheme_obj.report())
    return jsonable(
        {
            **cell,
            "scheme": scheme,
            "seed": seed,
            "profile": profile,
            "topology": topology,
            "fault_plan_signature": plan.signature(),
            "faults_injected": dict(sorted(injector.injected.items())),
            "offered": avail.offered,
            "served_within_sla": avail.served_within_sla,
            "served_late": avail.served_late,
            "dropped": avail.dropped,
            "dropped_fault": attribution["dropped_fault"],
            "dropped_policy": attribution["dropped_policy"],
            "drops_all_classes": attribution_all,
            "availability": avail.availability,
            "mean_latency_s": stats.mean,
            "p90_latency_s": stats.p90,
            "peak_power_w": sim.meter.peak_power(),
            "budget_w": sim.budget.supply_w,
            "violation_slots": counters.get("power.budget_violation_slots"),
            "server_failures": counters.get("cluster.server_failures"),
            "requests_rerouted": sim.nlb.rerouted,
            "nlb_retries": counters.get("network.nlb_retries"),
            "sensor_stale_fallbacks": counters.get(
                "power.sensor_stale_fallbacks"
            ),
            "sensor_worst_case_fallbacks": counters.get(
                "power.sensor_worst_case_fallbacks"
            ),
        }
    )


def run_chaos(
    mode: str = "smoke",
    seed: int = 0,
    budget: str = "low",
    num_servers: int = 4,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    recorder: Optional[Recorder] = None,
    name: Optional[str] = None,
    topology: str = "flat",
    schemes: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the chaos scheme matrix; return a ``repro-chaos/1`` payload.

    ``"smoke"`` runs the scheme matrix through the combined scenario for
    90 simulated seconds each; ``"full"`` runs both the combined and the
    severe profile for 240 s.  Cells fan out over *workers* processes
    through :func:`repro.runner.run_cells`; the payload is byte-identical
    for any worker count (it contains no wall-clock values).  A tree
    *topology* runs every cell against that power tree (fleet sized from
    the preset).  *schemes* restricts the matrix to a subset (order
    preserved); unknown names raise with the full menu.
    """
    if mode not in ("smoke", "full"):
        raise ValueError(f"mode must be 'smoke' or 'full', got {mode!r}")
    check_int("seed", seed, minimum=0)
    check_int("num_servers", num_servers, minimum=2)
    check_int("workers", workers, minimum=1)
    selected: Tuple[str, ...] = (
        CHAOS_SCHEMES
        if schemes is None
        else tuple(validate_scheme_names(schemes))
    )
    if topology != "flat":
        # Validate the preset eagerly (and surface the fleet size the
        # payload will report) before fanning out worker processes.
        num_servers = SimulationConfig.for_topology(topology).num_servers
    duration_s = 90.0 if mode == "smoke" else 240.0
    check_positive("duration_s", duration_s)
    profiles = ("combined",) if mode == "smoke" else ("combined", "severe")
    if recorder is None:
        recorder = Recorder()

    specs: List[CellSpec] = []
    for profile in profiles:
        for scheme in selected:
            specs.append(
                CellSpec(
                    index=len(specs),
                    params={
                        "scheme": scheme,
                        "seed": seed,
                        "budget": budget.upper(),
                        "num_servers": num_servers,
                        "duration_s": duration_s,
                        "profile": profile,
                        "topology": topology,
                    },
                    seed=seed,
                )
            )
    outcomes = run_cells(
        chaos_cell,
        specs,
        workers=workers,
        cache=cache,
        experiment_id="repro.faults.chaos_cell",
        recorder=recorder,
    )
    cells: List[Dict[str, object]] = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        assert outcome.value is not None
        cells.append(outcome.value)

    scenario = {
        "mode": mode,
        "seed": seed,
        "budget": budget.upper(),
        "num_servers": num_servers,
        "duration_s": duration_s,
        "profiles": list(profiles),
        "schemes": list(selected),
        "topology": topology,
    }
    payload = {
        "schema": CHAOS_SCHEMA_ID,
        "name": name if name else f"chaos-{mode}",
        "mode": mode,
        "version": __version__,
        "seed": seed,
        "config_hash": config_hash(scenario),
        "scenario": scenario,
        "cells": cells,
        "counters": recorder.counters.as_dict(),
    }
    errors = validate_chaos_payload(payload)
    if errors:
        raise ValueError(
            "chaos payload failed validation: " + "; ".join(errors)
        )
    return payload


# ----------------------------------------------------------------------
# repro-chaos/1 schema
# ----------------------------------------------------------------------

#: Required top-level keys of a chaos document and their types.
_CHAOS_REQUIRED = {
    "schema": str,
    "name": str,
    "mode": str,
    "version": str,
    "seed": int,
    "config_hash": str,
    "scenario": dict,
    "cells": list,
    "counters": dict,
}

#: Keys every cell must report (the drop attribution is mandatory).
_CELL_REQUIRED = (
    "scheme",
    "seed",
    "profile",
    "fault_plan_signature",
    "faults_injected",
    "offered",
    "dropped",
    "dropped_fault",
    "dropped_policy",
    "availability",
    "peak_power_w",
)


def validate_chaos_payload(payload: object) -> List[str]:
    """Validate a chaos document; return a list of problems (empty = ok).

    Hand-rolled like :func:`repro.obs.manifest.validate_bench_payload`
    so a bare install needs no schema dependency.  Beyond structure it
    checks the layer's two contracts: every cell attributes its drops
    (``dropped == dropped_policy + dropped_fault``) and the document
    round-trips through strict JSON (``allow_nan=False`` — the NaN
    export bug class).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"chaos payload must be a JSON object, got {type(payload).__name__}"]
    for key, expected in _CHAOS_REQUIRED.items():
        if key not in payload:
            problems.append(f"missing required key {key!r}")
        elif expected is int:
            if isinstance(payload[key], bool) or not isinstance(payload[key], int):
                problems.append(f"key {key!r} must be an int")
        elif not isinstance(payload[key], expected):
            problems.append(f"key {key!r} must be {expected.__name__}")
    if problems:
        return problems

    if payload["schema"] != CHAOS_SCHEMA_ID:
        problems.append(
            f"schema must be {CHAOS_SCHEMA_ID!r}, got {payload['schema']!r}"
        )
    if payload["mode"] not in ("smoke", "full"):
        problems.append(f"mode must be 'smoke' or 'full', got {payload['mode']!r}")

    for index, cell in enumerate(payload["cells"]):
        if not isinstance(cell, dict):
            problems.append(f"cells[{index}] must be an object")
            continue
        for key in _CELL_REQUIRED:
            if key not in cell:
                problems.append(f"cells[{index}] missing {key!r}")
        dropped = cell.get("dropped")
        policy = cell.get("dropped_policy")
        fault = cell.get("dropped_fault")
        if (
            isinstance(dropped, int)
            and isinstance(policy, int)
            and isinstance(fault, int)
            and dropped != policy + fault
        ):
            problems.append(
                f"cells[{index}] drop attribution does not add up: "
                f"{dropped} != {policy} + {fault}"
            )
    for counter_name, value in payload["counters"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(f"counter {counter_name!r} must be numeric")
    try:
        json.dumps(payload, allow_nan=False)
    except ValueError as exc:
        problems.append(f"payload is not strict JSON: {exc}")
    return problems
