"""Process-parallel, deterministic, cached execution of experiment cells.

:func:`run_cells` is the execution layer every sweep in the package
funnels through.  It takes one picklable experiment callable and a list
of :class:`CellSpec` (parameters + seed), and returns one
:class:`CellOutcome` per spec **in spec order** — regardless of worker
count, completion order, cache state or failures — so parallel output
is byte-identical to serial output once rendered.

Guarantees:

* ``workers=1`` (the default) runs strictly serially in-process, with
  zero pickling and zero pool overhead — the exact legacy execution
  path of :mod:`repro.analysis.sweep`.
* ``workers>1`` fans cells out over a :class:`ProcessPoolExecutor`.
  Experiments must then be picklable (module-level callables, bound
  methods of picklable objects, or picklable callable instances).
* A cell whose experiment **raises** is retried (``retries`` times,
  default once); if it still fails, its outcome carries a structured
  :class:`CellError` instead of killing the sweep.
* A cell whose worker **dies hard** (``os._exit``, segfault, OOM kill)
  breaks the pool; the runner rebuilds the pool and re-runs the
  not-yet-finished cells one at a time so the crash can be attributed
  to the single cell that caused it.  That cell gets the same
  retry-then-:class:`CellError` treatment; innocent cells are re-run
  without being charged an attempt.
* With a :class:`~repro.runner.cache.ResultCache`, cells whose key —
  ``(experiment id, params, seed, repro version)`` — is already stored
  are served from disk without executing anything; only successful
  cells are written back.
"""

from __future__ import annotations

import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .._validation import check_int
from ..obs import Recorder
from .cache import ResultCache
from .hashing import cell_key, default_experiment_id

__all__ = [
    "CellSpec",
    "CellOutcome",
    "CellError",
    "run_cells",
]

#: experiment(**params) -> JSON-serialisable mapping of results.
Experiment = Callable[..., Mapping[str, object]]


@dataclass(frozen=True)
class CellSpec:
    """One unit of work: a parameter binding plus its seed.

    ``params`` is passed to the experiment as keyword arguments and —
    together with ``seed`` — forms the cell's cache identity, so it must
    contain only JSON-representable values when caching is enabled.
    ``seed`` is metadata for keying and error reporting; by convention
    the experiment receives it inside ``params`` (the sweep layers put
    it there).
    """

    index: int
    params: Mapping[str, object] = field(default_factory=dict)
    seed: Optional[int] = None


class CellError(RuntimeError):
    """Structured record of one cell's permanent failure.

    Carried inside :class:`CellOutcome` rather than raised, so a single
    bad cell cannot abort a thousand-cell sweep; callers that prefer
    fail-fast semantics raise it themselves.
    """

    def __init__(
        self,
        index: int,
        params: Mapping[str, object],
        seed: Optional[int],
        kind: str,
        exc_type: str,
        message: str,
        traceback_text: str = "",
        attempts: int = 1,
    ) -> None:
        super().__init__(
            f"cell {index} (params={dict(params)!r}, seed={seed}) failed "
            f"after {attempts} attempt(s): {exc_type}: {message}"
        )
        self.index = index
        self.params = dict(params)
        self.seed = seed
        #: ``"exception"`` (experiment raised) or ``"crash"`` (worker died).
        self.kind = kind
        self.exc_type = exc_type
        self.message = message
        self.traceback_text = traceback_text
        self.attempts = attempts


@dataclass(frozen=True)
class CellOutcome:
    """Result of one cell: either a value or a :class:`CellError`."""

    spec: CellSpec
    value: Optional[Dict[str, object]] = None
    error: Optional[CellError] = None
    attempts: int = 1
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell produced a value."""
        return self.error is None


def _invoke(fn: Experiment, params: Mapping[str, object]) -> Tuple[str, ...]:
    """Child-side shim: run the experiment, never raise across the pipe.

    Ordinary exceptions come back as structured payloads so the parent
    can attribute, retry and report them; only a hard process death
    escapes (and surfaces as a broken pool).
    """
    try:
        value = dict(fn(**params))
    except Exception as exc:  # noqa: BLE001 - the capture point by design
        return ("error", type(exc).__name__, str(exc), traceback.format_exc())
    return ("ok", value)  # type: ignore[return-value]


def run_cells(
    experiment: Experiment,
    specs: Sequence[CellSpec],
    workers: int = 1,
    retries: int = 1,
    cache: Optional[ResultCache] = None,
    experiment_id: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> List[CellOutcome]:
    """Execute every spec and return outcomes in spec order.

    Parameters
    ----------
    experiment:
        Callable invoked as ``experiment(**spec.params)``; must return a
        JSON-serialisable mapping.  Must be picklable when ``workers>1``.
    specs:
        Cells to run.  Output order follows this sequence exactly.
    workers:
        Process count; ``1`` runs serially in-process (default).
    retries:
        Extra attempts after a cell's first failure before it is
        recorded as a :class:`CellError`.
    cache:
        Optional on-disk result cache; hits skip execution entirely.
    experiment_id:
        Stable name keying cache entries.  Defaults to the experiment's
        ``module.qualname``; required explicitly for lambdas/closures.
    recorder:
        Optional observation context.  Counters (cells, cache hits and
        misses, retries, errors) are deterministic — identical for any
        worker count — while per-cell wall-clock lands in the segregated
        timer table.
    """
    check_int("workers", workers, minimum=1)
    check_int("retries", retries, minimum=0)
    if cache is not None and experiment_id is None:
        experiment_id = default_experiment_id(experiment)
    if recorder is None:
        recorder = Recorder()
    counters = recorder.counters
    counters.inc("runner.cells_total", len(specs))

    outcomes: Dict[int, CellOutcome] = {}
    keys: Dict[int, str] = {}
    pending: List[CellSpec] = []
    with recorder.timers.phase("runner.run_cells"):
        for spec in specs:
            if cache is not None:
                assert experiment_id is not None
                key = cell_key(experiment_id, spec.params, spec.seed)
                keys[spec.index] = key
                hit = cache.get(key)
                if hit is not None:
                    counters.inc("runner.cache_hits")
                    outcomes[spec.index] = CellOutcome(
                        spec=spec, value=hit, attempts=0, from_cache=True
                    )
                    continue
                counters.inc("runner.cache_misses")
            pending.append(spec)

        if pending:
            if workers == 1:
                executed = _run_serial(experiment, pending, retries, recorder)
            else:
                executed = _run_pool(experiment, pending, workers, retries, recorder)
            for outcome in executed:
                outcomes[outcome.spec.index] = outcome
                counters.inc("runner.cells_executed")
                if outcome.attempts > 1:
                    counters.inc("runner.cell_retries", outcome.attempts - 1)
                if outcome.error is not None:
                    counters.inc("runner.cell_errors")
                if cache is not None and outcome.ok:
                    assert outcome.value is not None
                    cache.put(keys[outcome.spec.index], outcome.value)

    return [outcomes[spec.index] for spec in specs]


# ----------------------------------------------------------------------
# Serial path (byte-compatible legacy execution)
# ----------------------------------------------------------------------


def _run_serial(
    experiment: Experiment,
    specs: Sequence[CellSpec],
    retries: int,
    recorder: Recorder,
) -> List[CellOutcome]:
    results = []
    for spec in specs:
        attempts = 0
        while True:
            attempts += 1
            with recorder.timers.phase("runner.cell"):
                payload = _invoke(experiment, spec.params)
            if payload[0] == "ok":
                results.append(
                    CellOutcome(spec=spec, value=payload[1], attempts=attempts)
                )
                break
            if attempts > retries:
                results.append(
                    CellOutcome(
                        spec=spec,
                        error=_error_from_payload(spec, payload, attempts),
                        attempts=attempts,
                    )
                )
                break
    return results


def _error_from_payload(
    spec: CellSpec, payload: Tuple[str, ...], attempts: int
) -> CellError:
    _, exc_type, message, traceback_text = payload
    return CellError(
        index=spec.index,
        params=spec.params,
        seed=spec.seed,
        kind="exception",
        exc_type=exc_type,
        message=message,
        traceback_text=traceback_text,
        attempts=attempts,
    )


# ----------------------------------------------------------------------
# Pool path
# ----------------------------------------------------------------------


def _run_pool(
    experiment: Experiment,
    specs: Sequence[CellSpec],
    workers: int,
    retries: int,
    recorder: Recorder,
) -> List[CellOutcome]:
    results: Dict[int, CellOutcome] = {}
    queue: List[CellSpec] = list(specs)
    attempts: Dict[int, int] = {spec.index: 0 for spec in specs}
    # After a pool break the crashing cell is unknown (every in-flight
    # future dies with BrokenExecutor), so the runner switches to
    # one-cell-at-a-time submissions where a repeat crash is
    # attributable to exactly one spec.
    isolate = False

    while queue:
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            batch = queue[:1] if isolate else list(queue)
            crashed: List[CellSpec] = []
            # Pool mode cannot attribute wall-clock to single cells
            # (they overlap across workers), so each submission round is
            # timed as one batch instead.
            with recorder.timers.phase("runner.pool_batch"):
                futures = [
                    (spec, pool.submit(_invoke, experiment, spec.params))
                    for spec in batch
                ]
                for spec, future in futures:
                    try:
                        payload = future.result()
                    except BrokenExecutor:
                        crashed.append(spec)
                        continue
                    attempts[spec.index] += 1
                    if payload[0] == "ok":
                        results[spec.index] = CellOutcome(
                            spec=spec,
                            value=payload[1],
                            attempts=attempts[spec.index],
                        )
                    elif attempts[spec.index] > retries:
                        results[spec.index] = CellOutcome(
                            spec=spec,
                            error=_error_from_payload(
                                spec, payload, attempts[spec.index]
                            ),
                            attempts=attempts[spec.index],
                        )
                    # else: stays queued for the next round's retry.

            if crashed:
                if isolate:
                    # Single submission: the crash is this cell's.
                    spec = crashed[0]
                    attempts[spec.index] += 1
                    if attempts[spec.index] > retries:
                        results[spec.index] = CellOutcome(
                            spec=spec,
                            error=CellError(
                                index=spec.index,
                                params=spec.params,
                                seed=spec.seed,
                                kind="crash",
                                exc_type="WorkerCrash",
                                message=(
                                    "worker process died (hard exit, signal "
                                    "or OOM) while running this cell"
                                ),
                                attempts=attempts[spec.index],
                            ),
                            attempts=attempts[spec.index],
                        )
                else:
                    isolate = True

            # Everything without a recorded outcome — retries, crash
            # survivors, cells never submitted in isolate mode — stays
            # queued in original order; output order is fixed by
            # run_cells regardless.
            queue = [spec for spec in queue if spec.index not in results]
        finally:
            pool.shutdown(wait=True)

    return [results[spec.index] for spec in specs]
