"""Content-addressed cache keys for experiment cells.

A cell's key is the SHA-256 of a canonical JSON document naming the
experiment, its parameters, the seed and the repro version.  Canonical
means: keys sorted, compact separators, enums reduced to their values,
tuples to lists — so the same logical cell always serialises to the
same bytes regardless of dict insertion order or container flavour.

Anything that is not losslessly JSON-representable is rejected rather
than coerced: a key built from ``str(object)`` would silently collide
(or silently never hit) across runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Mapping, Optional

from .._version import __version__

__all__ = [
    "canonical_json",
    "cell_key",
    "default_experiment_id",
]

_ATOMS = (str, int, bool, type(None))


def _jsonify(value: object) -> object:
    """Reduce *value* to plain JSON types; raise on anything lossy."""
    if isinstance(value, _ATOMS):
        return value
    if isinstance(value, float):
        # repr round-trips exactly in Python 3, so float params keep
        # full precision in the key document.
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"cache-key mapping keys must be str, got {k!r}")
            out[k] = _jsonify(v)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    raise TypeError(
        f"value {value!r} of type {type(value).__name__} is not "
        "cache-key safe; pass only JSON-representable parameters"
    )


def canonical_json(value: object) -> str:
    """Serialise *value* to canonical (sorted, compact) JSON."""
    return json.dumps(_jsonify(value), sort_keys=True, separators=(",", ":"))


def cell_key(
    experiment_id: str,
    params: Mapping[str, object],
    seed: Optional[int],
    version: str = __version__,
) -> str:
    """SHA-256 key of one (experiment, params, seed, version) cell."""
    document = canonical_json(
        {
            "experiment": experiment_id,
            "params": dict(params),
            "seed": seed,
            "version": version,
        }
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def default_experiment_id(fn: object) -> str:
    """Stable identity of a module-level experiment callable.

    Lambdas, closures and ``functools.partial`` objects have no stable
    cross-run name — their identity would not survive a code edit that
    moves them one line — so they must be given an explicit
    ``experiment_id`` instead.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise TypeError(
            f"cannot derive a stable experiment id for {fn!r}; pass "
            "experiment_id= explicitly (lambdas/closures/partials have "
            "no cross-run name)"
        )
    return f"{module}.{qualname}"
