"""On-disk result cache for experiment cells.

One JSON file per cell, named by its :func:`~repro.runner.hashing.cell_key`
and sharded over 256 two-hex-digit directories.  Values are the
JSON-serialisable mappings experiments return; floats survive the
round-trip exactly (``json`` serialises via ``repr``), so a cache hit
reproduces the original run byte-for-byte in every exported artifact.

The cache is deliberately forgiving on the read path: a truncated,
corrupted or concurrently-deleted entry is treated as a miss and the
cell recomputes.  Writes are atomic (temp file + ``os.replace``) so a
killed run never leaves a half-written entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Optional, Union

from .._validation import require

__all__ = ["ResultCache"]

_KEY_LEN = 64  # hex sha256


class ResultCache:
    """Content-addressed store of experiment-cell results.

    Parameters
    ----------
    root:
        Directory to keep entries under; created on first use.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Entry path for *key* (whether or not it exists)."""
        require(
            len(key) == _KEY_LEN and all(c in "0123456789abcdef" for c in key),
            f"malformed cache key {key!r}",
        )
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Stored value for *key*, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self.misses += 1
            return None
        value = payload.get("value")
        if not isinstance(value, dict):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Mapping[str, object]) -> Path:
        """Atomically store *value* under *key*; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"key": key, "value": dict(value)}, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
