"""Experiment execution layer: parallel fan-out, caching, crash safety.

Every sweep in the package — :func:`repro.analysis.sweep.replicate`,
:class:`repro.analysis.sweep.GridSweep`,
:class:`repro.analysis.region.DopeRegionAnalyzer` and the
``python -m repro sweep`` command — executes its cells through
:func:`run_cells`, which provides:

* process-parallel fan-out with results merged in canonical cell order
  (parallel output is byte-identical to serial output);
* an on-disk :class:`ResultCache` keyed by content hash of
  ``(experiment id, params, seed, repro version)``;
* per-cell failure capture — raise-and-retry-once, then a structured
  :class:`CellError` outcome instead of a dead sweep, including when a
  worker process dies hard.
"""

from .cache import ResultCache
from .executor import CellError, CellOutcome, CellSpec, run_cells
from .hashing import canonical_json, cell_key, default_experiment_id

__all__ = [
    "CellError",
    "CellOutcome",
    "CellSpec",
    "ResultCache",
    "canonical_json",
    "cell_key",
    "default_experiment_id",
    "run_cells",
]
