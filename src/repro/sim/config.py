"""Simulation configuration.

One frozen dataclass gathers every knob of the simulated data center so
a run is reproducible from ``(config, scheme, traffic, seed)`` alone.
Defaults reproduce the paper's scaled-down testbed: a four-node rack of
100 W servers on the 1.2–2.4 GHz ladder, a 2-minute rack UPS, a
DDoS-deflate-style firewall at 150 req/s and 1-second control slots.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

from .._validation import (
    check_fraction,
    check_int,
    check_positive,
    require,
)
from ..power.budget import BudgetLevel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.topology import TopologySpec

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """All infrastructure knobs of one simulated data center."""

    # --- rack / topology --------------------------------------------
    num_servers: int = 4
    #: Power-tree preset name; ``"flat"`` is the treeless paper model
    #: and serialises *without* the key so pre-topology configs hash
    #: identically (the ``--topology flat`` byte-identity contract).
    topology: str = "flat"
    nameplate_w: float = 100.0
    workers_per_server: int = 8
    queue_capacity: int = 512
    queue_timeout_s: Optional[float] = None
    idle_fraction: float = 0.38
    alpha: float = 2.4

    # --- power ------------------------------------------------------
    budget_level: BudgetLevel = BudgetLevel.NORMAL
    slot_s: float = 1.0
    use_battery: bool = True
    battery_sustain_s: float = 120.0
    battery_efficiency: float = 0.9

    # --- network ----------------------------------------------------
    use_firewall: bool = True
    firewall_threshold_rps: float = 150.0
    firewall_poll_s: float = 10.0
    firewall_ban_s: float = 600.0

    # --- measurement ------------------------------------------------
    meter_interval_s: float = 1.0

    # --- online detection -------------------------------------------
    #: Quarantine-pool placement of the ``online-detect`` scheme:
    #: ``"dc"`` carves one pool at the end of rack order, ``"row"``
    #: isolates one server per row of a power tree.  The default
    #: serialises *without* the key (same contract as ``topology``) so
    #: pre-detector configs hash identically.
    detect_placement: str = "dc"

    # --- prediction-based oversubscription --------------------------
    #: Power-history horizon of the ``prediction`` scheme: the decaying
    #: observed-max floor fades over roughly this many seconds and the
    #: percentile estimator is paced to traverse the nameplate range in
    #: the same window.  The default serialises *without* the key (same
    #: contract as ``topology``) so pre-predictor configs hash
    #: identically.
    prediction_horizon_s: float = 60.0

    # --- reproducibility --------------------------------------------
    seed: int = 0

    def __post_init__(self) -> None:
        check_int("num_servers", self.num_servers, minimum=1)
        # Late import: cluster.topology sits below sim in the layering
        # DAG but importing it at module scope would cycle through the
        # cluster package while repro.sim is still initialising.
        from ..cluster.topology import FLAT_TOPOLOGY, named_topology, topology_names

        require(
            self.topology in topology_names(),
            f"unknown topology {self.topology!r}; "
            f"choose one of {list(topology_names())}",
        )
        if self.topology != FLAT_TOPOLOGY:
            spec = named_topology(self.topology)
            require(
                self.num_servers == spec.total_servers,
                f"topology {self.topology!r} wires {spec.total_servers} "
                f"servers, config has num_servers={self.num_servers}; "
                "use SimulationConfig.for_topology to size the fleet",
            )
        check_positive("nameplate_w", self.nameplate_w)
        check_int("workers_per_server", self.workers_per_server, minimum=1)
        check_int("queue_capacity", self.queue_capacity, minimum=0)
        if self.queue_timeout_s is not None:
            check_positive("queue_timeout_s", self.queue_timeout_s)
        check_fraction("idle_fraction", self.idle_fraction, inclusive=False)
        check_positive("alpha", self.alpha)
        check_positive("slot_s", self.slot_s)
        check_positive("battery_sustain_s", self.battery_sustain_s)
        check_fraction("battery_efficiency", self.battery_efficiency, inclusive=False)
        check_positive("firewall_threshold_rps", self.firewall_threshold_rps)
        check_positive("firewall_poll_s", self.firewall_poll_s)
        check_positive("firewall_ban_s", self.firewall_ban_s)
        check_positive("meter_interval_s", self.meter_interval_s)
        require(
            self.detect_placement in ("dc", "row"),
            f"detect_placement must be 'dc' or 'row', "
            f"got {self.detect_placement!r}",
        )
        check_positive("prediction_horizon_s", self.prediction_horizon_s)
        check_int("seed", self.seed, minimum=0)

    @property
    def rack_nameplate_w(self) -> float:
        """Total rack faceplate power (the Normal-PB supply)."""
        return self.nameplate_w * self.num_servers

    @property
    def topology_spec(self) -> Optional["TopologySpec"]:
        """The tree preset, or ``None`` for the flat model."""
        from ..cluster.topology import FLAT_TOPOLOGY, named_topology

        if self.topology == FLAT_TOPOLOGY:
            return None
        return named_topology(self.topology)

    @classmethod
    def for_topology(cls, name: str, **kwargs: Any) -> "SimulationConfig":
        """A config sized for topology *name* (fleet size from the spec)."""
        from ..cluster.topology import FLAT_TOPOLOGY, named_topology

        if name != FLAT_TOPOLOGY:
            kwargs.setdefault("num_servers", named_topology(name).total_servers)
        return cls(topology=name, **kwargs)

    @property
    def supply_w(self) -> float:
        """Provisioned supply at the configured budget level."""
        return self.rack_nameplate_w * self.budget_level.fraction

    def with_budget(self, level: BudgetLevel) -> "SimulationConfig":
        """Copy of this config at a different provisioning level."""
        return replace(self, budget_level=level)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy of this config with a different master seed."""
        return replace(self, seed=seed)

    def without_firewall(self) -> "SimulationConfig":
        """Copy with the perimeter defence disabled (Fig. 10's solid lines)."""
        return replace(self, use_firewall=False)

    # ------------------------------------------------------------------
    # Serialisation (experiment manifests)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; the budget level serialises as its name."""
        out = asdict(self)
        out["budget_level"] = self.budget_level.name
        if self.topology == "flat":
            # The flat default serialises without the key: configs from
            # before the topology layer hash identically, which is what
            # keeps `--topology flat` byte-identical to pre-tree runs.
            del out["topology"]
        if self.detect_placement == "dc":
            # Same delete-at-default contract: pre-detector configs and
            # cached experiment ids keep their identity.
            del out["detect_placement"]
        if math.isclose(self.prediction_horizon_s, 60.0):
            # Same delete-at-default contract for the predictor horizon.
            del out["prediction_horizon_s"]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        payload = dict(data)
        level = payload.get("budget_level")
        if isinstance(level, str):
            payload["budget_level"] = BudgetLevel[level]
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**payload)
