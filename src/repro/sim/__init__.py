"""Discrete-event simulation substrate.

The primitives (clock, events, engine) are imported eagerly; the
orchestration layer (:class:`SimulationConfig`,
:class:`DataCenterSimulation`) depends on every other subpackage and is
exposed lazily via PEP 562 to keep low-level imports cycle-free.
"""

from .clock import SimulationClock
from .engine import EventEngine
from .events import (
    PRIORITY_CONTROL,
    PRIORITY_MONITOR,
    PRIORITY_WORKLOAD,
    Event,
    EventQueue,
)

_LAZY = {
    "SimulationConfig": ("config", "SimulationConfig"),
    "DataCenterSimulation": ("simulation", "DataCenterSimulation"),
    "FacilitySimulation": ("facility", "FacilitySimulation"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


__all__ = [
    "SimulationClock",
    "SimulationConfig",
    "EventEngine",
    "Event",
    "EventQueue",
    "PRIORITY_WORKLOAD",
    "PRIORITY_MONITOR",
    "PRIORITY_CONTROL",
    "DataCenterSimulation",
    "FacilitySimulation",
]
