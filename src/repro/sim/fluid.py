"""Hybrid fluid mode: analytic integration of provably-steady segments.

The batched engine removes heap round-trips but still pays the full
ingress pipeline per request.  For some segments even that is wasted
work: when every arrival a generator can produce up to a known horizon
*provably* takes the same terminal path, the segment's effect on every
model quantity is a closed-form function of the arrival *count* — the
defining property of a fluid approximation.  The canonical case (and
the only one implemented) is the paper's volume flood after detection:
a DDoS-deflate-style firewall has banned every source in the flood's
pool, so each arrival deterministically ends as ``DROPPED_FIREWALL``
without touching a queue, a server or the power model.

:class:`BannedPoolDrain` is the proof object plus the bulk ledger:

* :meth:`BannedPoolDrain.horizon` returns the time up to which the
  steady-path proof holds (all pool sources banned past ``now``), or
  ``None`` when it does not;
* :meth:`BannedPoolDrain.absorb` applies the aggregate effect of ``n``
  absorbed arrivals — firewall rejection stats, NLB drop tallies and
  per-outcome counters, and one weighted
  :class:`~repro.network.request.CompletionRecord` per request type —
  exactly what ``n`` per-request traversals of the reject path would
  have recorded.

Per-request ids are **never materialised** for absorbed arrivals (the
lazy-id contract: ids exist only where outcomes diverge, and inside an
absorbed cohort they provably do not), and the per-arrival interarrival
draws are replaced by one Poisson count draw per segment.  Fluid runs
are therefore statistically faithful rather than byte-identical, which
is why the mode is opt-in (``EventEngine(mode="batched", fluid=True)``)
and excluded from the golden-equivalence contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..network.request import RequestOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..metrics.collector import MetricsCollector
    from ..network.firewall import RateLimitFirewall
    from ..network.load_balancer import NetworkLoadBalancer
    from ..network.sources import SourcePool
    from ..workloads.generator import TrafficGenerator

__all__ = ["BannedPoolDrain"]


class BannedPoolDrain:
    """Fluid absorber for an open-loop pool rejected at the perimeter.

    Parameters
    ----------
    firewall:
        The perimeter defence whose bans constitute the steadiness
        proof.
    source_pool:
        The generator's agent identities.
    nlb:
        Ingress balancer whose drop tallies the absorbed cohort must
        appear in.
    collector:
        Metrics sink receiving one aggregate record per request type.
    """

    __slots__ = (
        "firewall",
        "source_pool",
        "nlb",
        "collector",
        "_source_ids",
        "_mix",
        "_pvals",
    )

    def __init__(
        self,
        firewall: "RateLimitFirewall",
        source_pool: "SourcePool",
        nlb: "NetworkLoadBalancer",
        collector: "MetricsCollector",
    ) -> None:
        self.firewall = firewall
        self.source_pool = source_pool
        self.nlb = nlb
        self.collector = collector
        self._source_ids = tuple(
            range(source_pool.first_id, source_pool.first_id + source_pool.size)
        )
        # Mix-weight array cache: one tuple→ndarray conversion per mix
        # swap instead of one per absorbed segment.
        self._mix = None
        self._pvals: Optional[np.ndarray] = None

    def horizon(self, now: float) -> Optional[float]:
        """Time up to which every pool arrival is provably rejected.

        ``None`` means the proof fails right now (at least one source
        is admissible) and the caller must stay on the per-request
        path.
        """
        return self.firewall.ban_horizon(self._source_ids, now)

    def absorb(
        self, generator: "TrafficGenerator", count: int, time_s: float
    ) -> None:
        """Apply the bulk effect of *count* absorbed arrivals at *time_s*."""
        if count <= 0:
            return
        self.firewall.record_bulk_rejections(count)
        self.nlb.drop_bulk(count, RequestOutcome.DROPPED_FIREWALL)
        mix = generator.mix
        types = mix.types
        traffic_class = self.source_pool.traffic_class
        if len(types) == 1:
            per_type = [count]
        else:
            if mix is not self._mix:
                self._mix = mix
                self._pvals = np.asarray(mix.weights)
            per_type = generator.rng.multinomial(count, self._pvals)
        for rtype, n in zip(types, per_type):
            if n:
                self.collector.sink_bulk(
                    int(n),
                    rtype.name,
                    traffic_class,
                    RequestOutcome.DROPPED_FIREWALL,
                    time_s,
                )
