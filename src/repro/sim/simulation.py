"""DataCenterSimulation — the top-level facade.

Wires the whole stack together from a :class:`SimulationConfig` and a
:class:`~repro.power.manager.PowerManagementScheme`:

::

    traffic generators ──► NLB (firewall → filter → policy) ──► rack
                                                      ▲            │
                                scheme (per-slot step)┴── meter ────┘
                                                      battery

and exposes the convenience constructors the examples and benchmarks
use for the paper's three populations (AliOS normal users, flood tools,
the adaptive DOPE attacker).  Randomness is split from one master
``SeedSequence``, so runs are bit-reproducible per seed while every
component gets an independent stream.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..cluster.dvfs import FrequencyLadder
from ..cluster.power_model import ServerPowerModel
from ..cluster.rack import Rack
from ..cluster.topology import PowerTopology, TopologyMonitor
from ..metrics.availability import AvailabilityReport, availability
from ..metrics.collector import MetricsCollector
from ..metrics.energy import EnergyAccountant, EnergyReport
from ..metrics.latency import LatencyStats
from ..network.fabric import FlowletEcmpFabric
from ..network.firewall import NullFirewall, RateLimitFirewall
from ..network.load_balancer import (
    NetworkLoadBalancer,
    RetryPolicy,
    RoundRobinPolicy,
)
from ..network.sources import SourceRegistry
from ..obs import Recorder, RunManifest, config_hash
from ..power.battery import Battery
from ..power.budget import PowerBudget
from ..power.manager import NullScheme, PowerManagementScheme
from ..power.meter import PowerMeter
from ..sim.engine import EventEngine
from ..sim.events import PRIORITY_CONTROL
from ..sim.fluid import BannedPoolDrain
from ..trace.alibaba import ClusterTrace
from ..workloads.catalog import RequestMix, TrafficClass
from ..workloads.dope import DopeAttacker
from ..workloads.generator import TrafficGenerator
from ..workloads.normal import make_normal_traffic
from ..workloads.attacks import make_flood
from .config import SimulationConfig

__all__ = ["DataCenterSimulation"]


class DataCenterSimulation:
    """One simulated power-constrained data center.

    Parameters
    ----------
    config:
        Infrastructure description (rack, budget, firewall, battery…).
    scheme:
        The Table 2 power-management scheme under test; ``None`` runs
        unmanaged (the vulnerability-characterisation arm).
    engine:
        Pre-built engine to share across facades; overrides
        *engine_mode*.
    engine_mode:
        Execution strategy for a privately-built engine (``"scalar"``
        or ``"batched"``).  Deliberately not part of
        :class:`SimulationConfig`: a mode is a way of *evaluating* the
        model, not a different model, so it must not move config hashes
        or deterministic manifests.
    fluid:
        Opt a privately-built batched engine into hybrid fluid
        integration (see :mod:`repro.sim.fluid`).  Statistically
        faithful, not byte-identical — off by default.
    """

    def __init__(
        self,
        config: SimulationConfig = SimulationConfig(),
        scheme: Optional[PowerManagementScheme] = None,
        engine: Optional[EventEngine] = None,
        engine_mode: str = "scalar",
        fluid: bool = False,
    ) -> None:
        self.config = config
        # A shared engine lets several data-center instances co-exist in
        # one simulated world (multi-rack facility scenarios).
        self.engine = (
            engine
            if engine is not None
            else EventEngine(mode=engine_mode, fluid=fluid)
        )
        self._seedseq = np.random.SeedSequence(config.seed)
        self.collector = MetricsCollector()
        self.registry = SourceRegistry()

        power_model = ServerPowerModel(
            nameplate_w=config.nameplate_w,
            idle_fraction=config.idle_fraction,
            alpha=config.alpha,
            num_workers=config.workers_per_server,
        )
        self.rack = Rack(
            engine=self.engine,
            num_servers=config.num_servers,
            rng=self.new_rng(),
            power_model=power_model,
            ladder=FrequencyLadder(),
            queue_capacity=config.queue_capacity,
            completion_sink=self.collector.sink,
            queue_timeout_s=config.queue_timeout_s,
        )
        # The power tree (None in the flat model).  Tree mode overlays
        # per-node budgets on the same flat server list; the enforced
        # top-level budget — what the meter and every scheme see — is
        # the DC feed's oversubscribed supply rather than the full rack
        # nameplate.
        spec = config.topology_spec
        self.topology: Optional[PowerTopology] = None
        self.topology_monitor: Optional[TopologyMonitor] = None
        self.fabric: Optional[FlowletEcmpFabric] = None
        if spec is not None:
            self.topology = PowerTopology(
                spec,
                server_nameplate_w=config.nameplate_w,
                budget_fraction=config.budget_level.fraction,
            )
            self.topology_monitor = TopologyMonitor(
                self.engine, self.rack, self.topology
            )
            self.budget = PowerBudget(
                self.topology.feed.budget_w, config.budget_level
            )
        else:
            self.budget = PowerBudget.for_level(
                config.budget_level, self.rack.nameplate_w
            )
        self.battery: Optional[Battery] = (
            Battery.for_rack(
                self.rack.nameplate_w,
                sustain_s=config.battery_sustain_s,
                efficiency=config.battery_efficiency,
            )
            if config.use_battery
            else None
        )

        self.scheme = scheme or NullScheme()
        self.scheme.bind(
            self.engine, self.rack, self.budget, self.battery, config.slot_s
        )
        if self.topology is not None:
            self.scheme.bind_topology(self.topology)

        if config.use_firewall:
            self.firewall: RateLimitFirewall = RateLimitFirewall(
                threshold_rps=config.firewall_threshold_rps,
                poll_interval_s=config.firewall_poll_s,
                ban_duration_s=config.firewall_ban_s,
            )
        else:
            self.firewall = NullFirewall()
        self.firewall.attach(self.engine)

        # Scheme-specific policies (Anti-DOPE's PDF) win; otherwise a
        # tree forwards through the ECMP/flowlet fabric and the flat
        # model keeps its single-NLB rotation.
        policy = self.scheme.forwarding_policy(self.rack.servers)
        if policy is None and spec is not None:
            self.fabric = FlowletEcmpFabric(
                num_racks=spec.num_racks,
                servers_per_rack=spec.servers_per_rack,
                num_spines=spec.num_spines,
                flowlet_gap_s=spec.flowlet_gap_s,
                salt=config.seed,
                obs=self.engine.obs,
            )
            policy = self.fabric
        if policy is None:
            policy = RoundRobinPolicy()
        self.nlb = NetworkLoadBalancer(
            servers=self.rack.servers,
            policy=policy,
            firewall=self.firewall,
            admission_filter=self.scheme.admission_filter(),
            drop_sink=self.collector.sink,
            now=lambda: self.engine.now,
            obs=self.engine.obs,
            retry_policy=RetryPolicy(),
            scheduler=self.engine.schedule,
        )

        self.meter = PowerMeter(
            self.engine, self.rack, config.meter_interval_s, self.battery
        )
        self.generators: List[TrafficGenerator] = []
        self.attackers: List[DopeAttacker] = []
        self._started = False

    # ------------------------------------------------------------------
    # RNG management
    # ------------------------------------------------------------------
    def new_rng(self) -> np.random.Generator:
        """An independent child stream of the master seed."""
        return np.random.default_rng(self._seedseq.spawn(1)[0])

    # ------------------------------------------------------------------
    # Traffic population builders
    # ------------------------------------------------------------------
    def add_normal_traffic(
        self,
        rate_rps: float = 40.0,
        num_users: int = 200,
        mix: Optional[RequestMix] = None,
        trace: Optional[ClusterTrace] = None,
        trace_peak_rate_rps: Optional[float] = None,
        start_delay_s: float = 0.0,
        label: str = "alios",
    ) -> TrafficGenerator:
        """Attach the legitimate AliOS population and start it."""
        gen = make_normal_traffic(
            self.engine,
            self.nlb.dispatch,
            self.registry,
            self.new_rng(),
            rate_rps=rate_rps,
            num_users=num_users,
            mix=mix,
            trace=trace,
            trace_peak_rate_rps=trace_peak_rate_rps,
            label=label,
        )
        gen.start(start_delay_s)
        self._attach_fluid_drain(gen)
        self.generators.append(gen)
        return gen

    def add_flood(
        self,
        mix,
        rate_rps: float,
        num_agents: int = 20,
        start_s: float = 0.0,
        end_s: Optional[float] = None,
        label: str = "flood",
        closed_loop: bool = True,
        think_s: float = 0.2,
        poisson: bool = False,
    ) -> TrafficGenerator:
        """Attach a flood generator, optionally windowed to [start, end)."""
        gen = make_flood(
            self.engine,
            self.nlb.dispatch,
            self.registry,
            self.new_rng(),
            mix=mix,
            rate_rps=rate_rps,
            num_agents=num_agents,
            label=label,
            closed_loop=closed_loop,
            think_s=think_s,
            poisson=poisson,
        )
        if end_s is not None:
            gen.run_window(start_s, end_s)
        else:
            gen.start(start_s)
        self._attach_fluid_drain(gen)
        self.generators.append(gen)
        return gen

    def _attach_fluid_drain(self, gen) -> None:
        """Wire a fluid absorber onto *gen* when the engine opts in.

        Only open-loop :class:`TrafficGenerator` populations can be
        absorbed (closed-loop clients are self-limiting and never
        steady); the drain engages at run time only while the firewall
        provably rejects the generator's whole source pool.
        """
        if self.engine.fluid and isinstance(gen, TrafficGenerator):
            gen.fluid_drain = BannedPoolDrain(
                self.firewall, gen.source_pool, self.nlb, self.collector
            )

    def add_dope_attacker(
        self,
        start_delay_s: float = 0.0,
        label: str = "dope",
        **kwargs,
    ) -> DopeAttacker:
        """Attach the adaptive DOPE attacker (Fig. 12 loop)."""
        attacker = DopeAttacker(
            self.engine,
            self.nlb.dispatch,
            self.registry,
            self.new_rng(),
            firewall=self.firewall,
            label=label,
            **kwargs,
        )
        attacker.start(start_delay_s)
        self.attackers.append(attacker)
        return attacker

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def ensure_started(self) -> None:
        """Arm the meter and the control loop (idempotent).

        Called automatically by :meth:`run`; facility-level drivers that
        share one engine across several instances call it explicitly and
        then run the engine themselves.
        """
        if not self._started:
            self.meter.start()
            if self.topology_monitor is not None:
                self.topology_monitor.start(self.config.meter_interval_s)
            self.engine.every(
                self.config.slot_s,
                self.scheme.slot_tick,
                priority=PRIORITY_CONTROL,
            )
            self._started = True

    def run(self, duration_s: float) -> None:
        """Advance the simulation by *duration_s* seconds.

        The first call starts the meter and the scheme's control loop;
        subsequent calls continue from where the previous one stopped,
        so multi-phase experiments (baseline window → attack window)
        are plain sequential calls.
        """
        self.ensure_started()
        self.engine.run(until=self.engine.now + duration_s)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Recorder:
        """The observation context every component records into."""
        return self.engine.obs

    def run_manifest(self, name: str = "run") -> RunManifest:
        """Structured record of this run so far.

        The manifest's deterministic part (config hash, seed, version,
        counters) is identical across same-seed runs; wall timings ride
        along outside the deterministic hash.
        """
        return RunManifest(
            name=name,
            seed=self.config.seed,
            config_hash=config_hash(self.config.to_dict()),
            counters=self.obs.counters.as_dict(),
            timings_s=self.obs.timers.as_dict(),
        )

    def topology_report(self) -> Optional[dict]:
        """Per-node power/violation summary, or ``None`` in flat mode."""
        if self.topology_monitor is None:
            return None
        return self.topology_monitor.report()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def latency_stats(
        self,
        traffic_class: Optional[TrafficClass] = TrafficClass.NORMAL,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        type_name: Optional[str] = None,
    ) -> LatencyStats:
        """Latency summary of one population over one window."""
        times = self.collector.response_times(
            traffic_class=traffic_class,
            type_name=type_name,
            start_s=start_s,
            end_s=end_s,
        )
        return LatencyStats.from_times(times)

    def availability_report(
        self,
        sla_s: float = 1.0,
        traffic_class: Optional[TrafficClass] = TrafficClass.NORMAL,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> AvailabilityReport:
        """Availability of one population over one window."""
        records = self.collector.filtered(
            traffic_class=traffic_class, start_s=start_s, end_s=end_s
        )
        return availability(records, sla_s=sla_s)

    def start_energy_accounting(self) -> EnergyAccountant:
        """Begin an energy-measurement window at the current time."""
        return EnergyAccountant(self.rack, self.battery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataCenterSimulation(t={self.engine.now:.0f}s, "
            f"scheme={self.scheme.name}, budget={self.budget.supply_w:.0f}W)"
        )
