"""Facility simulation: several racks behind one oversubscribed feed.

The paper studies one rack; real oversubscription is hierarchical.
:class:`FacilitySimulation` instantiates ``num_racks`` complete
data-center stacks (each with its own NLB, firewall, battery and power
scheme) on one shared event engine, and runs a facility-level re-plan
loop: every interval, each rack's *unthrottled* power demand is
estimated and the :class:`~repro.power.hierarchy.FacilityBudgetAllocator`
water-fills the facility budget across the racks, updating each rack's
:class:`~repro.power.budget.PowerBudget` in place so its local scheme
enforces the new share in the next control slot.

This is the substrate for cross-rack DOPE questions: an attack on one
rack inflates that rack's demand, bids facility headroom away from its
neighbours, and degrades *their* users without a single packet sent to
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .._validation import check_fraction, check_int, check_positive
from ..power.hierarchy import FacilityBudgetAllocator, RackAllocation
from ..power.manager import NullScheme, PowerManagementScheme
from .config import SimulationConfig
from .engine import EventEngine
from .events import PRIORITY_CONTROL
from .simulation import DataCenterSimulation

__all__ = [
    "ReplanRecord",
    "FacilityStats",
    "FacilitySimulation",
]

SchemeFactory = Callable[[], PowerManagementScheme]


@dataclass
class ReplanRecord:
    """One facility re-plan decision."""

    time_s: float
    demands_w: List[float]
    allocations: List[RackAllocation]


@dataclass
class FacilityStats:
    """Re-plan history."""

    replans: int = 0
    records: List[ReplanRecord] = field(default_factory=list)


class FacilitySimulation:
    """Several racks sharing one power feed and one simulated world.

    Parameters
    ----------
    num_racks:
        How many rack stacks to instantiate.
    facility_fraction:
        Facility budget as a fraction of the summed rack nameplates
        (the facility-level oversubscription knob).
    scheme_factory:
        Builds each rack's local power-management scheme.
    rack_config:
        Per-rack configuration template; rack *i* runs with seed
        ``rack_config.seed + i``.  Rack-level budgets start at the
        template's level and are overwritten by the facility re-plan.
    replan_interval_s:
        Seconds between facility allocations.
    floor_fraction:
        Per-rack allocation floor (see the allocator).
    """

    def __init__(
        self,
        num_racks: int = 3,
        facility_fraction: float = 0.85,
        scheme_factory: Optional[SchemeFactory] = None,
        rack_config: SimulationConfig = SimulationConfig(),
        replan_interval_s: float = 5.0,
        floor_fraction: float = 0.2,
    ) -> None:
        check_int("num_racks", num_racks, minimum=1)
        check_fraction("facility_fraction", facility_fraction, inclusive=False)
        check_positive("replan_interval_s", replan_interval_s)
        factory = scheme_factory or NullScheme
        self.engine = EventEngine()
        self.racks: List[DataCenterSimulation] = [
            DataCenterSimulation(
                rack_config.with_seed(rack_config.seed + i),
                scheme=factory(),
                engine=self.engine,
            )
            for i in range(num_racks)
        ]
        total_nameplate = sum(r.rack.nameplate_w for r in self.racks)
        self.facility_budget_w = total_nameplate * facility_fraction
        self.allocator = FacilityBudgetAllocator(
            self.facility_budget_w, floor_fraction=floor_fraction
        )
        self.replan_interval_s = float(replan_interval_s)
        self.stats = FacilityStats()
        self._started = False

    # ------------------------------------------------------------------
    # Facility control
    # ------------------------------------------------------------------
    def rack_demand_w(self, sim: DataCenterSimulation) -> float:
        """A rack's unthrottled power demand (what it *wants* to draw).

        Uses the scheme's model-based prediction at nominal frequency,
        so a throttled rack still reports its true appetite — the
        signal the facility needs to re-plan fairly.
        """
        return sim.scheme.predict_power_at_level(sim.rack.ladder.max_level)

    def replan(self) -> ReplanRecord:
        """One facility allocation; updates every rack budget in place."""
        demands = [self.rack_demand_w(sim) for sim in self.racks]
        allocations = self.allocator.allocate(demands)
        for sim, allocation in zip(self.racks, allocations):
            # Never allocate below the rack's gated-off floor; a budget
            # of ~0 would be unenforceable anyway (idle power remains).
            sim.budget.supply_w = max(allocation.allocated_w, 1e-6)
        record = ReplanRecord(self.engine.now, demands, allocations)
        self.stats.replans += 1
        self.stats.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> None:
        """Advance the shared world by *duration_s* seconds."""
        if not self._started:
            for sim in self.racks:
                sim.ensure_started()
            self.replan()  # initial split before any control slot
            self.engine.every(
                self.replan_interval_s, self.replan, priority=PRIORITY_CONTROL
            )
            self._started = True
        self.engine.run(until=self.engine.now + duration_s)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    def total_power(self) -> float:
        """Instantaneous facility IT power."""
        return sum(sim.rack.total_power() for sim in self.racks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FacilitySimulation({len(self.racks)} racks, "
            f"feed={self.facility_budget_w:.0f}W, t={self.now:.0f}s)"
        )
