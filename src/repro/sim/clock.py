"""Simulation clock.

The clock is the single source of truth for "now" inside a simulation.
It only ever moves forward; the event engine advances it as events are
dispatched.  Keeping it as a tiny standalone object (rather than a bare
float on the engine) lets every component hold a reference to the same
monotonically advancing time without holding a reference to the engine
itself.
"""

from __future__ import annotations

from .._validation import check_finite, check_non_negative

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonic simulation time in seconds.

    Parameters
    ----------
    start:
        Initial simulation time.  Defaults to ``0.0``.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        check_non_negative("start", start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward to *time_s*.

        Raises
        ------
        ValueError
            If *time_s* is earlier than the current time (the clock never
            runs backwards) or not finite.
        """
        check_finite("time_s", time_s)
        if time_s < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={time_s}"
            )
        self._now = float(time_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now:.6f})"
