"""Event primitives for the discrete-event engine.

An :class:`Event` is a scheduled callback.  Events are ordered by
``(time_s, priority, sequence)`` so that simultaneous events dispatch in a
deterministic order: lower priority values run first, and among equal
priorities the event scheduled first runs first.  Cancellation is done
lazily (the heap entry stays in the queue but is skipped on pop), which
is the standard O(1)-cancel / amortised-O(log n)-pop idiom for heap
based schedulers.

The heap stores ``(time_s, priority, seq, event)`` tuples rather than
the events themselves: the unique ``seq`` guarantees the :class:`Event`
object is never compared, so every sift comparison is a C-level tuple
comparison instead of a Python ``__lt__`` call — the difference between
~0.4 µs and ~0.07 µs per comparison on the hot path.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .._validation import check_finite

__all__ = [
    "Event",
    "EventQueue",
    "NO_ARG",
]

# Well-known priority bands.  Control actions run after the workload
# events of the same instant so that a power reading taken "at" t sees
# every arrival/departure that happened at t.
PRIORITY_WORKLOAD = 0
PRIORITY_MONITOR = 10
PRIORITY_CONTROL = 20

#: Sentinel meaning "callback takes no argument".  Scheduling with a
#: real ``arg`` lets hot callers (server completions) avoid allocating a
#: capturing lambda per event.
NO_ARG = object()

_INF = float("inf")


class Event:
    """A scheduled callback inside the simulation.

    Instances are created by :meth:`repro.sim.engine.EventEngine.schedule`;
    user code normally only keeps them around to :meth:`cancel` them.
    """

    __slots__ = ("time_s", "priority", "seq", "callback", "arg", "cancelled")

    def __init__(
        self,
        time_s: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        arg: object = NO_ARG,
    ) -> None:
        self.time_s = time_s
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.arg = arg
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_s, self.priority, self.seq) < (
            other.time_s,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_s:.6f}, prio={self.priority}, {state})"


_HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_count", "_live")

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._count = 0
        self._live = 0

    def push(
        self,
        time_s: float,
        callback: Callable[..., None],
        priority: int = PRIORITY_WORKLOAD,
        arg: object = NO_ARG,
    ) -> Event:
        """Schedule *callback* at absolute *time_s* and return its handle."""
        if not (-_INF < time_s < _INF):  # inline fast path; NaN also fails
            check_finite("time_s", time_s)
        time_s = float(time_s)
        seq = self._count
        self._count = seq + 1
        event = Event(time_s, priority, seq, callback, arg)
        heapq.heappush(self._heap, (time_s, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty.

        Cancelled events are discarded transparently.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it has not fired yet."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
