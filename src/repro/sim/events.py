"""Event primitives for the discrete-event engine.

An :class:`Event` is a scheduled callback.  Events are ordered by
``(time_s, priority, sequence)`` so that simultaneous events dispatch in a
deterministic order: lower priority values run first, and among equal
priorities the event scheduled first runs first.  Cancellation is done
lazily (the heap entry stays in the queue but is skipped on pop), which
is the standard O(1)-cancel / amortised-O(log n)-pop idiom for heap
based schedulers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from .._validation import check_finite

__all__ = [
    "Event",
    "EventQueue",
]

# Well-known priority bands.  Control actions run after the workload
# events of the same instant so that a power reading taken "at" t sees
# every arrival/departure that happened at t.
PRIORITY_WORKLOAD = 0
PRIORITY_MONITOR = 10
PRIORITY_CONTROL = 20


class Event:
    """A scheduled callback inside the simulation.

    Instances are created by :meth:`repro.sim.engine.EventEngine.schedule`;
    user code normally only keeps them around to :meth:`cancel` them.
    """

    __slots__ = ("time_s", "priority", "seq", "callback", "cancelled")

    def __init__(
        self,
        time_s: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
    ) -> None:
        self.time_s = time_s
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_s, self.priority, self.seq) < (
            other.time_s,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_s:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(
        self,
        time_s: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_WORKLOAD,
    ) -> Event:
        """Schedule *callback* at absolute *time_s* and return its handle."""
        check_finite("time_s", time_s)
        event = Event(float(time_s), int(priority), next(self._counter), callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_s if self._heap else None

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it has not fired yet."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
