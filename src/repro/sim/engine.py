"""Discrete-event simulation engine.

The engine owns the :class:`~repro.sim.clock.SimulationClock` and the
:class:`~repro.sim.events.EventQueue` and exposes the two operations
everything else is built from:

* :meth:`EventEngine.schedule` / :meth:`EventEngine.schedule_at` —
  register a callback at a future simulation time;
* :meth:`EventEngine.run` — dispatch events in time order until a
  deadline or until the queue drains.

It also provides :meth:`EventEngine.every`, a convenience for the
slotted control loops (power managers, firewall polls, attacker
adjustment) that the paper's systems are built around.

Execution modes
---------------
The engine runs in one of two *execution* modes, selected at
construction and deliberately **not** part of any
:class:`~repro.sim.config.SimulationConfig` (a mode is a strategy for
evaluating the same model, not a different model — config hashes and
deterministic manifests must not depend on it):

* ``"scalar"`` — the reference path: every arrival is its own heap
  event.
* ``"batched"`` — cohort run-ahead: an open-loop traffic generator may
  advance a run of consecutive arrivals *inline* (one heap event for
  the whole cohort) via :meth:`try_advance_inline`, as long as no other
  queued event falls between them and the run deadline admits it.  Each
  inline arrival still advances the clock and counts as one dispatched
  (logical) event, so ``engine.events_dispatched`` is identical across
  modes — the byte-identical equivalence contract the golden tests
  enforce.

On top of the batched mode sits the **opt-in hybrid fluid mode**
(``fluid=True``): when a segment of simulated time is *provably steady*
— every arrival in it deterministically takes the same terminal path,
e.g. an open-loop flood whose sources are all firewall-banned past the
segment's end — the segment is integrated analytically instead of
event by event (:meth:`try_advance_fluid`).  The absorbed arrivals are
credited as dispatched logical events and accounted in bulk, but their
per-request ids are never materialised and their interarrival gaps are
replaced by one aggregate draw, so fluid runs are *statistically*
faithful rather than byte-identical.  Fluid mode therefore sits outside
the golden-equivalence contract and is never enabled by default.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Optional, Tuple

from .._validation import check_non_negative, check_positive
from ..obs import Recorder
from .clock import SimulationClock
from .events import NO_ARG, Event, EventQueue, PRIORITY_WORKLOAD

__all__ = [
    "EventEngine",
    "ENGINE_MODES",
    "ENGINE_SELECT_ENV",
    "ENGINE_SELECTIONS",
    "engine_from_env",
    "resolve_engine_selection",
]

#: Valid execution modes.
ENGINE_MODES = ("scalar", "batched")

#: Environment variable selecting an engine for env-aware entry points
#: (the bench driver, the figure benches, the region sweep).
ENGINE_SELECT_ENV = "REPRO_BENCH_ENGINE"

#: Valid engine selections: the two execution modes plus ``"fluid"``
#: (the batched engine with hybrid fluid integration opted in).
ENGINE_SELECTIONS = ("scalar", "batched", "fluid")


def engine_from_env(default: str = "fluid") -> str:
    """The engine selected by ``REPRO_BENCH_ENGINE``, or *default*.

    Entry points differ in their default: the bench driver measures at
    full speed (``"fluid"``), while exact consumers (the region sweep)
    default to ``"batched"``, which is byte-identical to scalar.
    """
    value = os.environ.get(ENGINE_SELECT_ENV, "").strip().lower()
    if not value:
        return default
    if value not in ENGINE_SELECTIONS:
        raise ValueError(
            f"{ENGINE_SELECT_ENV} must be one of {ENGINE_SELECTIONS}, "
            f"got {value!r}"
        )
    return value


def resolve_engine_selection(engine: str) -> Tuple[str, bool]:
    """Map an engine selection name to ``(EventEngine mode, fluid flag)``."""
    if engine == "fluid":
        return "batched", True
    if engine not in ENGINE_SELECTIONS:
        raise ValueError(
            f"engine must be one of {ENGINE_SELECTIONS}, got {engine!r}"
        )
    return engine, False


class EventEngine:
    """Heap-based discrete event loop with a monotonic clock.

    Every engine carries a :class:`~repro.obs.Recorder` (``obs``): the
    shared observation context all components wired to this engine
    record into.  Pass one in to share a recorder across several
    engines (bench phases); the default is a private fresh recorder.

    Parameters
    ----------
    start_time_s:
        Initial simulation time.
    obs:
        Shared observation context (default: a private recorder).
    mode:
        Execution strategy, ``"scalar"`` (default) or ``"batched"`` —
        see the module docstring.  Same-seed runs produce byte-identical
        deterministic outputs in either mode.
    fluid:
        Opt into hybrid fluid integration of provably-steady segments
        (requires ``mode="batched"``).  Fluid runs are statistically
        faithful but **not** byte-identical to scalar runs — see the
        module docstring.
    """

    def __init__(
        self,
        start_time_s: float = 0.0,
        obs: Optional[Recorder] = None,
        mode: str = "scalar",
        fluid: bool = False,
    ) -> None:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"mode must be one of {ENGINE_MODES}, got {mode!r}"
            )
        if fluid and mode != "batched":
            raise ValueError("fluid mode requires mode='batched'")
        self.clock = SimulationClock(start_time_s)
        self.obs = obs if obs is not None else Recorder()
        self.mode = mode
        #: Fast-path flag components branch on (``mode == "batched"``).
        self.batched = mode == "batched"
        #: Hybrid fluid integration enabled (batched engines only).
        self.fluid = fluid
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._until: Optional[float] = None
        self.dispatched = 0
        self._serial = 0

    def next_serial(self) -> int:
        """Next id from this engine's entity counter (0, 1, 2, …).

        Entities that need a unique, reproducible identity within one
        simulated world (e.g. requests) draw from here instead of a
        process-global counter, so that two same-seed simulations number
        their entities identically — a prerequisite for byte-identical
        exports.
        """
        serial = self._serial
        self._serial += 1
        return serial

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock._now

    def schedule(
        self,
        delay_s: float,
        callback: Callable[..., None],
        priority: int = PRIORITY_WORKLOAD,
        arg: object = NO_ARG,
    ) -> Event:
        """Schedule *callback* to run *delay_s* seconds from now.

        When *arg* is given the callback is invoked as ``callback(arg)``
        — hot callers use this to avoid allocating a capturing lambda
        per event.
        """
        if delay_s < 0.0:
            check_non_negative("delay_s", delay_s)  # raises with full context
        return self._queue.push(self.clock._now + delay_s, callback, priority, arg)

    def schedule_at(
        self,
        time_s: float,
        callback: Callable[..., None],
        priority: int = PRIORITY_WORKLOAD,
        arg: object = NO_ARG,
    ) -> Event:
        """Schedule *callback* at the absolute simulation *time_s*."""
        if time_s < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock._now}, "
                f"requested={time_s}"
            )
        return self._queue.push(time_s, callback, priority, arg)

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_WORKLOAD,
        start_delay_s: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run *callback* every *interval_s* seconds until cancelled.

        Returns a zero-argument function that stops the recurrence.  The
        first invocation happens after *start_delay_s* (default: one full
        interval).
        """
        check_positive("interval_s", interval_s)
        if start_delay_s is not None:
            check_non_negative("start_delay_s", start_delay_s)
        state = {"event": None, "stopped": False}

        def tick() -> None:
            """One recurrence firing; reschedules itself until stopped."""
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["event"] = self.schedule(interval_s, tick, priority)

        first = interval_s if start_delay_s is None else start_delay_s
        state["event"] = self.schedule(first, tick, priority)

        def stop() -> None:
            """Cancel the recurrence."""
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                self._queue.cancel(event)

        return stop

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in order until *until* (or queue exhaustion).

        Events with timestamp exactly equal to *until* are executed.  The
        clock is left at ``min(until, last event time)`` — i.e. if the
        queue drains early the clock does not jump to the deadline.

        Returns the final simulation time.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        self._until = until
        dispatched_before = self.dispatched
        sim_before_s = self.clock._now
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        clock = self.clock
        try:
            with self.obs.timers.phase("engine.run"):
                # The loop touches queue/clock internals directly: a
                # peek is one tuple index and an advance one attribute
                # store.  Entries popped here are monotonically ordered
                # by construction, so the clock's backwards check is
                # redundant on this path (and stays armed everywhere
                # else).
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    time_s = entry[0]
                    if until is not None and time_s > until:
                        clock.advance_to(until)
                        break
                    heappop(heap)
                    queue._live -= 1
                    clock._now = time_s
                    if event.arg is NO_ARG:
                        event.callback()
                    else:
                        event.callback(event.arg)
                    self.dispatched += 1
                else:
                    if until is not None and clock._now < until and not self._stopped:
                        clock.advance_to(until)
        finally:
            self._running = False
            self._until = None
            counters = self.obs.counters
            counters.inc("engine.run_calls")
            counters.inc(
                "engine.events_dispatched", self.dispatched - dispatched_before
            )
            counters.inc(
                "engine.sim_time_advanced_s", self.clock._now - sim_before_s
            )
        return self.clock._now

    def try_advance_inline(self, time_s: float) -> bool:
        """Batched-mode run-ahead: advance the clock to *time_s* inline.

        Succeeds — advancing the clock and counting one dispatched
        logical event — only when it is *provably* equivalent to
        scheduling and immediately popping a heap event at *time_s*:

        * a :meth:`run` is active and has not been stopped;
        * *time_s* does not overrun the run deadline;
        * *time_s* is **strictly** earlier than every queued event (a
          queued event with an equal timestamp holds a smaller sequence
          number and must dispatch first in scalar mode);
        * *time_s* does not move the clock backwards (also rejects NaN).

        Returns ``False`` without side effects otherwise; the caller
        falls back to scheduling a regular event.
        """
        if not self._running or self._stopped:
            return False
        until = self._until
        if until is not None and time_s > until:
            return False
        next_time_s = self._queue.peek_time()
        if next_time_s is not None and time_s >= next_time_s:
            return False
        clock = self.clock
        if not (time_s >= clock._now):  # NaN fails every comparison
            return False
        clock._now = time_s
        self.dispatched += 1
        return True

    def try_advance_fluid(self, time_s: float, n_events: int) -> bool:
        """Fluid-mode segment jump: advance to *time_s* in one step.

        Credits *n_events* analytically integrated arrivals as
        dispatched logical events without materialising them.  The jump
        is admitted only when it provably cannot reorder anything:

        * fluid mode is on, a :meth:`run` is active and not stopped;
        * *time_s* does not overrun the run deadline;
        * *time_s* does not pass any queued event (landing exactly *on*
          the next event's timestamp is fine — the absorbed arrivals
          all lie strictly inside the segment);
        * *time_s* does not move the clock backwards (rejects NaN).

        The caller is responsible for the segment's *model* accounting
        (drop counters, firewall stats, aggregate completion records);
        this method only handles clock and engine bookkeeping.
        """
        if not self.fluid or not self._running or self._stopped:
            return False
        until = self._until
        if until is not None and time_s > until:
            return False
        next_time_s = self._queue.peek_time()
        if next_time_s is not None and time_s > next_time_s:
            return False
        clock = self.clock
        if not (time_s >= clock._now):  # NaN fails every comparison
            return False
        dt_s = time_s - clock._now
        clock._now = time_s
        self.dispatched += n_events
        counters = self.obs.counters
        counters.inc("engine.fluid_segments")
        counters.inc("engine.fluid_time_advanced_s", dt_s)
        return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)
