"""Discrete-event simulation engine.

The engine owns the :class:`~repro.sim.clock.SimulationClock` and the
:class:`~repro.sim.events.EventQueue` and exposes the two operations
everything else is built from:

* :meth:`EventEngine.schedule` / :meth:`EventEngine.schedule_at` —
  register a callback at a future simulation time;
* :meth:`EventEngine.run` — dispatch events in time order until a
  deadline or until the queue drains.

It also provides :meth:`EventEngine.every`, a convenience for the
slotted control loops (power managers, firewall polls, attacker
adjustment) that the paper's systems are built around.
"""

from __future__ import annotations

from typing import Callable, Optional

from .._validation import check_non_negative, check_positive
from ..obs import Recorder
from .clock import SimulationClock
from .events import Event, EventQueue, PRIORITY_WORKLOAD

__all__ = ["EventEngine"]


class EventEngine:
    """Heap-based discrete event loop with a monotonic clock.

    Every engine carries a :class:`~repro.obs.Recorder` (``obs``): the
    shared observation context all components wired to this engine
    record into.  Pass one in to share a recorder across several
    engines (bench phases); the default is a private fresh recorder.
    """

    def __init__(
        self, start_time_s: float = 0.0, obs: Optional[Recorder] = None
    ) -> None:
        self.clock = SimulationClock(start_time_s)
        self.obs = obs if obs is not None else Recorder()
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.dispatched = 0
        self._serial = 0

    def next_serial(self) -> int:
        """Next id from this engine's entity counter (0, 1, 2, …).

        Entities that need a unique, reproducible identity within one
        simulated world (e.g. requests) draw from here instead of a
        process-global counter, so that two same-seed simulations number
        their entities identically — a prerequisite for byte-identical
        exports.
        """
        serial = self._serial
        self._serial += 1
        return serial

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    def schedule(
        self,
        delay_s: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_WORKLOAD,
    ) -> Event:
        """Schedule *callback* to run *delay_s* seconds from now."""
        check_non_negative("delay_s", delay_s)
        return self._queue.push(self.clock.now + delay_s, callback, priority)

    def schedule_at(
        self,
        time_s: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_WORKLOAD,
    ) -> Event:
        """Schedule *callback* at the absolute simulation *time_s*."""
        if time_s < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, requested={time_s}"
            )
        return self._queue.push(time_s, callback, priority)

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_WORKLOAD,
        start_delay_s: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run *callback* every *interval_s* seconds until cancelled.

        Returns a zero-argument function that stops the recurrence.  The
        first invocation happens after *start_delay_s* (default: one full
        interval).
        """
        check_positive("interval_s", interval_s)
        if start_delay_s is not None:
            check_non_negative("start_delay_s", start_delay_s)
        state = {"event": None, "stopped": False}

        def tick() -> None:
            """One recurrence firing; reschedules itself until stopped."""
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["event"] = self.schedule(interval_s, tick, priority)

        first = interval_s if start_delay_s is None else start_delay_s
        state["event"] = self.schedule(first, tick, priority)

        def stop() -> None:
            """Cancel the recurrence."""
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                self._queue.cancel(event)

        return stop

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in order until *until* (or queue exhaustion).

        Events with timestamp exactly equal to *until* are executed.  The
        clock is left at ``min(until, last event time)`` — i.e. if the
        queue drains early the clock does not jump to the deadline.

        Returns the final simulation time.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        dispatched_before = self.dispatched
        sim_before_s = self.clock.now
        try:
            with self.obs.timers.phase("engine.run"):
                while self._queue and not self._stopped:
                    next_time_s = self._queue.peek_time()
                    if until is not None and next_time_s is not None and next_time_s > until:
                        self.clock.advance_to(until)
                        break
                    event = self._queue.pop()
                    if event is None:
                        break
                    self.clock.advance_to(event.time_s)
                    event.callback()
                    self.dispatched += 1
                else:
                    if until is not None and self.clock.now < until and not self._stopped:
                        self.clock.advance_to(until)
        finally:
            self._running = False
            counters = self.obs.counters
            counters.inc("engine.run_calls")
            counters.inc(
                "engine.events_dispatched", self.dispatched - dispatched_before
            )
            counters.inc(
                "engine.sim_time_advanced_s", self.clock.now - sim_before_s
            )
        return self.clock.now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)
