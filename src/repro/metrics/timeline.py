"""Windowed latency timelines.

Figures like 15a plot behaviour *over time*; latency needs the same
treatment: bucket completion records onto a fixed time grid and compute
per-bucket statistics, yielding the ``mean(t)`` / ``p90(t)`` series a
dashboard or a plot consumes.  Bucketing is by *arrival* time, matching
the collector's windowing convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from .._validation import check_positive, require
from ..network.request import CompletionRecord
from .latency import LatencyStats

__all__ = [
    "TimelineBucket",
    "LatencyTimeline",
]


@dataclass(frozen=True)
class TimelineBucket:
    """Statistics of one time bucket."""

    start_s: float
    end_s: float
    offered: int
    completed: int
    stats: LatencyStats

    @property
    def mid_s(self) -> float:
        """Bucket midpoint (the natural x coordinate)."""
        return 0.5 * (self.start_s + self.end_s)

    @property
    def drop_fraction(self) -> float:
        """Offered-but-not-completed fraction in this bucket."""
        if not self.offered:
            return 0.0
        return 1.0 - self.completed / self.offered


class LatencyTimeline:
    """Fixed-grid latency series over a record population.

    Parameters
    ----------
    records:
        The (pre-filtered) completion records.
    bucket_s:
        Bucket width in seconds.
    start_s, end_s:
        Grid bounds; default to the records' arrival span.
    """

    def __init__(
        self,
        records: Iterable[CompletionRecord],
        bucket_s: float = 10.0,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> None:
        check_positive("bucket_s", bucket_s)
        recs = list(records)
        require(len(recs) > 0, "LatencyTimeline needs at least one record")
        arrivals = [r.arrival_time_s for r in recs]
        lo = min(arrivals) if start_s is None else float(start_s)
        hi = max(arrivals) if end_s is None else float(end_s)
        require(hi >= lo, "end_s must be >= start_s")
        n = max(1, int(math.ceil((hi - lo) / bucket_s + 1e-12)))
        grid: List[List[CompletionRecord]] = [[] for _ in range(n)]
        for r in recs:
            if not lo <= r.arrival_time_s <= hi:
                continue
            idx = min(int((r.arrival_time_s - lo) / bucket_s), n - 1)
            grid[idx].append(r)

        self.bucket_s = float(bucket_s)
        self.buckets: List[TimelineBucket] = []
        for i, bucket_records in enumerate(grid):
            completed = [r for r in bucket_records if r.completed]
            self.buckets.append(
                TimelineBucket(
                    start_s=lo + i * bucket_s,
                    end_s=lo + (i + 1) * bucket_s,
                    offered=sum(r.weight for r in bucket_records),
                    completed=sum(r.weight for r in completed),
                    stats=LatencyStats.from_records(completed),
                )
            )

    # ------------------------------------------------------------------
    # Series accessors (plot-ready arrays)
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Bucket midpoints."""
        return np.array([b.mid_s for b in self.buckets])

    def means(self) -> np.ndarray:
        """Per-bucket mean response time (NaN for empty buckets)."""
        return np.array([b.stats.mean for b in self.buckets])

    def p90s(self) -> np.ndarray:
        """Per-bucket p90 response time (NaN for empty buckets)."""
        return np.array([b.stats.p90 for b in self.buckets])

    def offered(self) -> np.ndarray:
        """Per-bucket offered request counts."""
        return np.array([b.offered for b in self.buckets])

    def drop_fractions(self) -> np.ndarray:
        """Per-bucket drop fractions."""
        return np.array([b.drop_fraction for b in self.buckets])

    def worst_bucket(self) -> TimelineBucket:
        """The bucket with the highest mean latency (NaNs skipped)."""
        candidates = [b for b in self.buckets if b.stats.count > 0]
        require(len(candidates) > 0, "no bucket has completed records")
        return max(candidates, key=lambda b: b.stats.mean)

    def __len__(self) -> int:
        return len(self.buckets)
