"""Measurement substrate: completion records, latency, energy, availability."""

from .availability import AvailabilityReport, availability
from .collector import MetricsCollector
from .energy import EnergyAccountant, EnergyReport, normalized_energy
from .latency import LatencyStats, slowdown
from .timeline import LatencyTimeline, TimelineBucket

__all__ = [
    "MetricsCollector",
    "LatencyStats",
    "slowdown",
    "AvailabilityReport",
    "availability",
    "EnergyAccountant",
    "EnergyReport",
    "normalized_energy",
    "LatencyTimeline",
    "TimelineBucket",
]
