"""Energy accounting (paper Section 6.5, Fig. 19).

Rack load energy is the exact integral each server accrues; the grid
(utility) side additionally reflects the battery: energy the UPS
delivered came out of storage (charged earlier, with conversion loss),
and recharging draws extra grid power.  Fig. 19 normalises each
scheme's total consumed energy "to the supplied utility power energy",
which :func:`normalized_energy` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._validation import check_positive
from ..cluster.rack import Rack
from ..power.battery import Battery

__all__ = [
    "EnergyReport",
    "EnergyAccountant",
    "normalized_energy",
]


@dataclass(frozen=True)
class EnergyReport:
    """Energy split of one run."""

    duration_s: float
    load_energy_j: float
    battery_delivered_j: float
    battery_recharge_grid_j: float
    battery_efficiency: float = 0.9

    @property
    def utility_energy_j(self) -> float:
        """Grid-side energy: load minus UPS delivery plus recharge draw."""
        return self.load_energy_j - self.battery_delivered_j + (
            self.battery_recharge_grid_j
        )

    @property
    def battery_debt_j(self) -> float:
        """Grid energy still owed to restore the battery's initial SoC.

        Energy delivered from storage that has not been replenished
        within the window must eventually be bought back from the grid,
        paying the conversion loss — ``(delivered − stored)/η``.
        """
        stored = self.battery_recharge_grid_j * self.battery_efficiency
        outstanding = max(0.0, self.battery_delivered_j - stored)
        return outstanding / self.battery_efficiency

    @property
    def committed_utility_energy_j(self) -> float:
        """Utility energy including the deferred battery recharge.

        This is the fair basis for Fig. 19's comparison: a scheme that
        rode through the attack on stored energy has not *saved* that
        energy, merely deferred (and inflated) its purchase.
        """
        return self.utility_energy_j + self.battery_debt_j

    @property
    def mean_load_power_w(self) -> float:
        """Average rack power over the window."""
        return self.load_energy_j / self.duration_s

    @property
    def mean_utility_power_w(self) -> float:
        """Average grid power over the window."""
        return self.utility_energy_j / self.duration_s

    def __str__(self) -> str:
        return (
            f"load={self.load_energy_j / 3600:.1f}Wh "
            f"utility={self.utility_energy_j / 3600:.1f}Wh "
            f"battery_out={self.battery_delivered_j / 3600:.1f}Wh"
        )


class EnergyAccountant:
    """Snapshot-based energy bookkeeping for one rack (+ battery).

    Construct it, run the window, then call :meth:`report` — deltas are
    measured against the construction-time snapshot so warm-up energy
    is excluded.
    """

    def __init__(self, rack: Rack, battery: Optional[Battery] = None) -> None:
        self.rack = rack
        self.battery = battery
        self._t0 = rack.engine.now
        self._load0 = rack.total_energy_joules()
        self._delivered0 = battery.delivered_j if battery else 0.0
        self._absorbed0 = battery.absorbed_grid_j if battery else 0.0

    def report(self) -> EnergyReport:
        """Energy consumed since construction."""
        duration_s = self.rack.engine.now - self._t0
        check_positive("window duration", duration_s)
        delivered = (self.battery.delivered_j - self._delivered0) if self.battery else 0.0
        absorbed = (
            (self.battery.absorbed_grid_j - self._absorbed0) if self.battery else 0.0
        )
        return EnergyReport(
            duration_s=duration_s,
            load_energy_j=self.rack.total_energy_joules() - self._load0,
            battery_delivered_j=delivered,
            battery_recharge_grid_j=absorbed,
            battery_efficiency=(
                self.battery.efficiency if self.battery is not None else 0.9
            ),
        )


def normalized_energy(report: EnergyReport, supply_w: float) -> float:
    """Fig. 19's metric: consumed energy over the supplied-power energy.

    A value of 1.0 means the run drew exactly the budgeted energy for
    the window; capping pushes it below 1, battery-heavy schemes push
    the utility share around via recharge losses.
    """
    check_positive("supply_w", supply_w)
    return report.utility_energy_j / (supply_w * report.duration_s)
