"""Response-time statistics.

The paper's SLA metrics: mean response time (Fig. 16), the 90th/95th/
99th percentile tail latencies (Figs. 15b, 17) plus min/max.  All
percentiles are exact order statistics over the full sample (NumPy's
linear-interpolation definition), never streaming approximations — a
10-minute window at 1 000 req/s is only ~600 k floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..network.request import CompletionRecord

__all__ = [
    "LatencyStats",
    "slowdown",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one response-time sample (all values in seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "LatencyStats":
        """Compute exact statistics from raw response times."""
        arr = np.asarray(times, dtype=float)
        if arr.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        p50, p90, p95, p99 = np.percentile(arr, [50, 90, 95, 99])
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            p99=float(p99),
        )

    @classmethod
    def from_records(cls, records: Iterable[CompletionRecord]) -> "LatencyStats":
        """Statistics over the completed records in *records*."""
        return cls.from_times([r.response_time for r in records if r.completed])

    def percentile(self, p: float) -> float:
        """Named-percentile accessor (50/90/95/99 only).

        Raises :class:`ValueError` for any other value — including
        fractional ones like ``99.9`` or ``50.5``, which an ``int()``
        coercion used to silently truncate onto the stored p99/p50.
        """
        table = {50: self.p50, 90: self.p90, 95: self.p95, 99: self.p99}
        try:
            return table[p]
        except (KeyError, TypeError):
            raise ValueError(f"only percentiles {sorted(table)} are stored") from None

    def as_millis(self) -> dict:
        """All statistics converted to milliseconds (reporting helper)."""
        def ms(x: float) -> float:
            """Seconds → milliseconds."""
            return x * 1e3

        return {
            "count": self.count,
            "mean_ms": ms(self.mean),
            "min_ms": ms(self.minimum),
            "max_ms": ms(self.maximum),
            "p50_ms": ms(self.p50),
            "p90_ms": ms(self.p90),
            "p95_ms": ms(self.p95),
            "p99_ms": ms(self.p99),
        }

    def __str__(self) -> str:
        if self.count == 0:
            return "LatencyStats(empty)"
        return (
            f"n={self.count} mean={self.mean * 1e3:.1f}ms "
            f"p90={self.p90 * 1e3:.1f}ms p95={self.p95 * 1e3:.1f}ms "
            f"p99={self.p99 * 1e3:.1f}ms max={self.maximum * 1e3:.1f}ms"
        )


def slowdown(stats: LatencyStats, baseline: LatencyStats) -> dict:
    """Ratio of each latency statistic to a *baseline* run's.

    The paper reports attacks as multipliers ("7.4× longer mean
    response time, 8.9× the 90th-percentile tail"); this computes those
    multipliers for any pair of runs.
    """
    if baseline.count == 0 or stats.count == 0:
        raise ValueError("both samples must be non-empty")

    def ratio(a: float, b: float) -> float:
        """Safe ratio (infinite for a zero baseline)."""
        return a / b if b > 0 else float("inf")

    return {
        "mean": ratio(stats.mean, baseline.mean),
        "p50": ratio(stats.p50, baseline.p50),
        "p90": ratio(stats.p90, baseline.p90),
        "p95": ratio(stats.p95, baseline.p95),
        "p99": ratio(stats.p99, baseline.p99),
    }
