"""Metrics collector: the terminal sink for every request.

The collector implements both the server completion-sink and the NLB
drop-sink signatures, so every request's fate — served, firewalled,
shaped away or queue-overflowed — lands in one flat record list.  All
query methods return NumPy arrays or filtered record lists, keeping the
analysis layer vectorised.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from ..network.request import (
    FAULT_OUTCOMES,
    CompletionRecord,
    Request,
    RequestOutcome,
)
from ..workloads.catalog import TrafficClass

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates :class:`CompletionRecord` objects for one run."""

    def __init__(self) -> None:
        self.records: List[CompletionRecord] = []

    # ------------------------------------------------------------------
    # Sink interfaces
    # ------------------------------------------------------------------
    def sink(self, request: Request, outcome: RequestOutcome, time_s: float) -> None:
        """Record the terminal *outcome* of *request* at *time_s*.

        This single method satisfies both the server ``completion_sink``
        and the NLB ``drop_sink`` contracts.
        """
        self.records.append(CompletionRecord(request, outcome, time_s))

    def sink_bulk(
        self,
        count: int,
        type_name: str,
        traffic_class: TrafficClass,
        outcome: RequestOutcome,
        time_s: float,
    ) -> None:
        """Record *count* identical terminals as one aggregate record.

        The fluid-drain path lands here: a whole analytically absorbed
        cohort becomes a single weighted record instead of *count*
        per-request ones.  Count-style queries (:meth:`outcome_counts`,
        :meth:`drop_attribution`, :meth:`total`, availability) sum
        weights, so the aggregate is indistinguishable from its
        expansion everywhere except record-list length.
        """
        self.records.append(
            CompletionRecord.aggregate(
                count, type_name, traffic_class, outcome, time_s
            )
        )

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def filtered(
        self,
        traffic_class: Optional[TrafficClass] = None,
        type_name: Optional[str] = None,
        outcome: Optional[RequestOutcome] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        completed_only: bool = False,
    ) -> List[CompletionRecord]:
        """Records matching every given criterion.

        Time filtering is on *arrival* time, so a window captures the
        requests offered during it regardless of when they finished.
        """
        out = []
        for r in self.records:
            if traffic_class is not None and r.traffic_class is not traffic_class:
                continue
            if type_name is not None and r.type_name != type_name:
                continue
            if outcome is not None and r.outcome is not outcome:
                continue
            if completed_only and not r.completed:
                continue
            if start_s is not None and r.arrival_time_s < start_s:
                continue
            if end_s is not None and r.arrival_time_s >= end_s:
                continue
            out.append(r)
        return out

    def response_times(
        self,
        traffic_class: Optional[TrafficClass] = None,
        type_name: Optional[str] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> np.ndarray:
        """Response times (seconds) of completed matching requests."""
        recs = self.filtered(
            traffic_class=traffic_class,
            type_name=type_name,
            start_s=start_s,
            end_s=end_s,
            completed_only=True,
        )
        return np.array([r.response_time for r in recs])

    def outcome_counts(
        self,
        traffic_class: Optional[TrafficClass] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> dict:
        """Histogram of outcomes over the matching records."""
        counts = {outcome: 0 for outcome in RequestOutcome}
        for r in self.filtered(
            traffic_class=traffic_class, start_s=start_s, end_s=end_s
        ):
            counts[r.outcome] += r.weight
        return counts

    def drop_attribution(
        self,
        traffic_class: Optional[TrafficClass] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> dict:
        """Split drops into policy-caused vs fault-caused counts.

        Policy drops are deliberate rejections (firewall, token bucket,
        queue overflow/timeout); fault drops are losses the chaos layer
        inflicted (server crash mid-service, no healthy backend).  The
        distinction keeps "the scheme shed load" separate from "the
        infrastructure failed" in chaos-run reports.
        """
        policy = fault = 0
        for r in self.filtered(
            traffic_class=traffic_class, start_s=start_s, end_s=end_s
        ):
            if r.outcome is RequestOutcome.COMPLETED:
                continue
            if r.outcome in FAULT_OUTCOMES:
                fault += r.weight
            else:
                policy += r.weight
        return {"dropped_policy": policy, "dropped_fault": fault}

    def total(self, traffic_class: Optional[TrafficClass] = None) -> int:
        """Number of matching requests (aggregate records count fully)."""
        if traffic_class is None:
            return sum(r.weight for r in self.records)
        return sum(
            r.weight for r in self.records if r.traffic_class is traffic_class
        )

    def clear(self) -> None:
        """Drop all records (reuse across warm-up phases)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
