"""Service-availability accounting (paper Fig. 9).

The paper measures "severe decline in service availability" when
power-insufficient clusters face floods.  Availability here is the
fraction of *offered* legitimate requests that were served within an
SLA deadline — requests rejected anywhere in the pipeline (firewall,
token bucket, queue overflow) and requests served too late both count
against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .._validation import check_positive
from ..network.request import FAULT_OUTCOMES, CompletionRecord, RequestOutcome

__all__ = [
    "AvailabilityReport",
    "availability",
]


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability decomposition over one record population."""

    offered: int
    served_within_sla: int
    served_late: int
    dropped: int
    sla_s: float
    #: Drops caused by injected infrastructure faults (server crash,
    #: no healthy backend) — a subset of ``dropped``, kept separate so
    #: chaos runs can tell policy rejections from fault losses.
    dropped_fault: int = 0

    @property
    def availability(self) -> float:
        """Fraction of offered requests served within the SLA."""
        return self.served_within_sla / self.offered if self.offered else 1.0

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered requests rejected before service."""
        return self.dropped / self.offered if self.offered else 0.0

    @property
    def dropped_policy(self) -> int:
        """Drops attributable to policy (firewall/token/queue), not faults."""
        return self.dropped - self.dropped_fault

    @property
    def goodput_fraction(self) -> float:
        """Fraction served at all (late or not)."""
        if not self.offered:
            return 1.0
        return (self.served_within_sla + self.served_late) / self.offered

    def __str__(self) -> str:
        fault = f" [{self.dropped_fault} fault]" if self.dropped_fault else ""
        return (
            f"availability={self.availability * 100:.1f}% "
            f"(offered={self.offered}, in-SLA={self.served_within_sla}, "
            f"late={self.served_late}, dropped={self.dropped}{fault}, "
            f"SLA={self.sla_s * 1e3:.0f}ms)"
        )


def availability(
    records: Iterable[CompletionRecord],
    sla_s: float = 1.0,
) -> AvailabilityReport:
    """Compute availability of *records* against an SLA deadline.

    Parameters
    ----------
    records:
        The (pre-filtered) population — typically the legitimate class
        over the observation window.
    sla_s:
        Response-time deadline in seconds.
    """
    check_positive("sla_s", sla_s)
    offered = in_sla = late = dropped = dropped_fault = 0
    for record in records:
        weight = record.weight
        offered += weight
        if record.outcome is RequestOutcome.COMPLETED:
            if record.response_time <= sla_s:
                in_sla += weight
            else:
                late += weight
        else:
            dropped += weight
            if record.outcome in FAULT_OUTCOMES:
                dropped_fault += weight
    return AvailabilityReport(
        offered=offered,
        served_within_sla=in_sla,
        served_late=late,
        dropped=dropped,
        sla_s=sla_s,
        dropped_fault=dropped_fault,
    )
