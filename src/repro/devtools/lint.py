"""Command-line front end for the :mod:`repro.devtools` linter.

Usage::

    python -m repro lint src/repro                 # text report
    python -m repro lint src/repro --format json
    python -m repro lint src/repro --format sarif --out lint.sarif
    python -m repro lint src/repro --baseline lint-baseline.json
    python -m repro lint src/repro --write-baseline lint-baseline.json
    python -m repro lint src/repro --rules REP009,REP010
    python -m repro lint --list-rules

``python -m repro.devtools.lint`` is a historical alias with the same
flags (kept because ``scripts/check.sh`` and docs referenced it long
before the main CLI grew a ``lint`` subcommand; both paths call the
same :func:`run`).

Exit status: 0 when no finding survives suppression *and* the
baseline, 1 otherwise, 2 on usage errors.  ``scripts/check.sh`` runs
this ahead of the tier-1 test suite, and
``tests/test_static_analysis.py`` enforces a zero-finding tree as a
tier-1 gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import dataflow as _dataflow  # noqa: F401  (importing registers the rules)
from . import reachability as _reachability  # noqa: F401
from . import registries as _registries  # noqa: F401
from . import rules as _rules  # noqa: F401
from .baseline import load_baseline, render_baseline, unbaselined
from .engine import lint_paths, registered_rules, render_json, render_text
from .sarif import render_sarif

__all__ = ["configure_parser", "run", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to *parser* (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run(
    options: argparse.Namespace,
    parser: Optional[argparse.ArgumentParser] = None,
) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    if parser is None:
        parser = _build_parser()
    if options.list_rules:
        for rule_cls in registered_rules():
            print(f"{rule_cls.rule_id}  {rule_cls.summary}")
        return 0

    if not options.paths:
        parser.error("at least one path is required (e.g. src/repro)")

    selected = None
    if options.rules is not None:
        selected = [
            token.strip() for token in options.rules.split(",") if token.strip()
        ]

    try:
        findings = lint_paths(options.paths, rules=selected)
    except ValueError as exc:  # unknown rule id
        parser.error(str(exc))
    except OSError as exc:  # unreadable / nonexistent path
        parser.error(f"cannot read {exc.filename or 'path'}: {exc.strerror}")

    if options.write_baseline is not None:
        with open(options.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(findings))
        print(
            f"wrote {len(findings)} finding(s) to baseline "
            f"{options.write_baseline}"
        )
        return 0

    if options.baseline is not None:
        try:
            with open(options.baseline, "r", encoding="utf-8") as handle:
                baseline = load_baseline(handle.read())
        except OSError as exc:
            parser.error(
                f"cannot read baseline {options.baseline}: {exc.strerror}"
            )
        except ValueError as exc:
            parser.error(f"bad baseline {options.baseline}: {exc}")
        findings = unbaselined(findings, baseline)

    if options.format == "json":
        report = render_json(findings)
    elif options.format == "sarif":
        report = render_sarif(findings)
    else:
        report = render_text(findings)

    if options.out is not None:
        with open(options.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 1 if findings else 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Domain-aware static analysis for the repro package "
        "(determinism, unit dataflow, layering, contracts).",
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = _build_parser()
    options = parser.parse_args(argv)
    return run(options, parser)


if __name__ == "__main__":
    sys.exit(main())
