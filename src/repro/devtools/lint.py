"""Command-line front end for the :mod:`repro.devtools` linter.

Usage::

    python -m repro.devtools.lint src/repro            # text report
    python -m repro.devtools.lint src/repro --format json
    python -m repro.devtools.lint src/repro --rules REP001,REP004
    python -m repro.devtools.lint --list-rules

Exit status: 0 when no findings, 1 when any finding survives
suppression, 2 on usage errors.  ``scripts/check.sh`` runs this ahead
of the tier-1 test suite, and ``tests/test_static_analysis.py``
enforces a zero-finding tree as a tier-1 gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import rules as _rules  # noqa: F401  (importing registers the rules)
from .engine import lint_paths, registered_rules, render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Domain-aware static analysis for the repro package "
        "(determinism, unit discipline, layering, exports).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_cls in registered_rules():
            print(f"{rule_cls.rule_id}  {rule_cls.summary}")
        return 0

    if not options.paths:
        parser.error("at least one path is required (e.g. src/repro)")

    selected = None
    if options.rules is not None:
        selected = [token.strip() for token in options.rules.split(",") if token.strip()]

    try:
        findings = lint_paths(options.paths, rules=selected)
    except ValueError as exc:  # unknown rule id
        parser.error(str(exc))
    except OSError as exc:  # unreadable / nonexistent path
        parser.error(f"cannot read {exc.filename or 'path'}: {exc.strerror}")

    if options.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
