"""REP011/REP012 — contract-registry rules.

Two subsystems ship central registries that the code must stay in sync
with, and both fail *silently* when it does not:

* **Observability** (:mod:`repro.obs.contract`): ``counters.inc`` and
  ``counters.get`` mint/read any name you hand them, so a typo'd
  counter name is a permanently-zero dashboard column, not an error.
  REP011 checks every string-literal counter/timer name in the tree
  against the declared registry; f-string names are checked by their
  literal head against the declared prefixes.
* **Drop attribution** (:data:`repro.network.request.FAULT_OUTCOMES` /
  ``POLICY_OUTCOMES``): the chaos metrics split every non-completed
  request into scheme-chosen (policy) versus infrastructure-inflicted
  (fault) losses, and the split is only meaningful while the two sets
  partition the outcome enum.  A new ``RequestOutcome`` member that
  joins neither set silently lands in the policy bucket by arithmetic
  (``dropped - dropped_fault``).  REP012 re-derives the partition from
  the AST and flags members in neither set, members in both, set
  entries that name no member, and project-wide ``RequestOutcome.X``
  references to members that do not exist.

Both rules abstain on anything dynamic they cannot resolve (a name
computed at runtime and *not* rooted in a declared prefix is flagged,
because the prefix registry exists precisely to declare those).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..obs.contract import TIMER_NAMES, is_declared_counter
from .engine import Finding, ModuleInfo, ProjectInfo, ProjectRule, Rule, register

__all__ = ["ObsContractRule", "OutcomeContractRule"]

#: Method names on a ``counters`` receiver that take a counter name.
_COUNTER_METHODS = frozenset({"inc", "get"})

#: Method names on a ``timers`` receiver that take a phase name.
_TIMER_METHODS = frozenset({"phase"})

#: Enum members excluded from the fault/policy partition: a completed
#: request was not dropped, so it belongs to neither bucket.
_PARTITION_EXEMPT = frozenset({"COMPLETED"})


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    """Name of the object a method is called on (``rec.counters.inc``
    → ``counters``)."""
    return _terminal_name(func.value)


def _fstring_head(node: ast.JoinedStr) -> Optional[str]:
    """Leading literal text of an f-string, or None when it starts with
    an interpolation (fully dynamic — nothing to check statically)."""
    if not node.values:
        return None
    first = node.values[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


@register
class ObsContractRule(Rule):
    """REP011: counter/timer name literals must be declared.

    Every string literal passed to ``counters.inc``/``counters.get``
    must appear in :data:`repro.obs.contract.COUNTER_NAMES` (f-strings:
    their literal head must start a declared prefix), and every literal
    passed to ``timers.phase`` must appear in ``TIMER_NAMES``.  The
    registry module itself is exempt — it *is* the declaration.
    """

    rule_id = "REP011"
    summary = "counter/timer name not declared in the obs contract registry"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module == "repro.obs.contract":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            receiver = _receiver_name(node.func)
            method = node.func.attr
            if receiver == "counters" and method in _COUNTER_METHODS:
                yield from self._check_counter_arg(module, node, method)
            elif receiver == "timers" and method in _TIMER_METHODS:
                yield from self._check_timer_arg(module, node, method)

    def _name_arg(self, node: ast.Call) -> Optional[ast.AST]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    def _check_counter_arg(
        self, module: ModuleInfo, node: ast.Call, method: str
    ) -> Iterator[Finding]:
        arg = self._name_arg(node)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not is_declared_counter(arg.value):
                yield self.finding(
                    module,
                    arg,
                    f"counter name {arg.value!r} (in counters.{method}) is "
                    "not declared in repro.obs.contract.COUNTER_NAMES — a "
                    "typo here reads/mints a silent zero; declare it or "
                    "fix the spelling",
                )
        elif isinstance(arg, ast.JoinedStr):
            head = _fstring_head(arg)
            if head is None or not is_declared_counter(head):
                shown = head if head is not None else "<dynamic>"
                yield self.finding(
                    module,
                    arg,
                    f"dynamic counter name starting {shown!r} (in "
                    f"counters.{method}) matches no declared prefix in "
                    "repro.obs.contract.COUNTER_PREFIXES; declare the "
                    "family prefix",
                )

    def _check_timer_arg(
        self, module: ModuleInfo, node: ast.Call, method: str
    ) -> Iterator[Finding]:
        arg = self._name_arg(node)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in TIMER_NAMES:
                yield self.finding(
                    module,
                    arg,
                    f"timer phase {arg.value!r} (in timers.{method}) is not "
                    "declared in repro.obs.contract.TIMER_NAMES; declare it "
                    "or fix the spelling",
                )


class _OutcomeDeclaration:
    """One ``RequestOutcome`` enum plus its partition sets in a module."""

    def __init__(self, module: ModuleInfo, class_node: ast.ClassDef) -> None:
        self.module = module
        self.class_node = class_node
        self.members: Dict[str, ast.AST] = {}
        for stmt in class_node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        self.members[target.id] = stmt
        self.fault: Dict[str, ast.AST] = {}
        self.policy: Dict[str, ast.AST] = {}
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "FAULT_OUTCOMES":
                    self.fault = self._set_members(stmt.value)
                elif target.id == "POLICY_OUTCOMES":
                    self.policy = self._set_members(stmt.value)

    @staticmethod
    def _set_members(value: ast.AST) -> Dict[str, ast.AST]:
        members: Dict[str, ast.AST] = {}
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "RequestOutcome"
            ):
                members[node.attr] = node
        return members


@register
class OutcomeContractRule(ProjectRule):
    """REP012: FAULT_OUTCOMES ∪ POLICY_OUTCOMES must partition the enum.

    Re-derives the drop-attribution partition from the AST of whichever
    module defines ``RequestOutcome``, then checks totality (every
    non-COMPLETED member in a set), disjointness (no member in both),
    referential integrity of the sets themselves, and — project-wide —
    that every literal ``RequestOutcome.X`` reference names a real
    member.
    """

    rule_id = "REP012"
    summary = "RequestOutcome drop-attribution partition violated"

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        declarations: List[_OutcomeDeclaration] = []
        for module in project.modules:
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef) and stmt.name == "RequestOutcome":
                    declarations.append(_OutcomeDeclaration(module, stmt))
        if not declarations:
            return
        known_members: Set[str] = set()
        reported: Set[int] = set()
        for decl in declarations:
            known_members.update(decl.members)
            yield from self._check_partition(decl)
            # set entries are checked above; don't re-flag them as refs
            for node in list(decl.fault.values()) + list(decl.policy.values()):
                reported.add(id(node))
        yield from self._check_references(project, known_members, reported)

    def _check_partition(self, decl: _OutcomeDeclaration) -> Iterator[Finding]:
        for name, node in decl.fault.items():
            if name not in decl.members:
                yield self.finding(
                    decl.module,
                    node,
                    f"FAULT_OUTCOMES entry RequestOutcome.{name} names no "
                    "enum member",
                )
        for name, node in decl.policy.items():
            if name not in decl.members:
                yield self.finding(
                    decl.module,
                    node,
                    f"POLICY_OUTCOMES entry RequestOutcome.{name} names no "
                    "enum member",
                )
        for name, node in decl.members.items():
            in_fault = name in decl.fault
            in_policy = name in decl.policy
            if name in _PARTITION_EXEMPT:
                if in_fault or in_policy:
                    yield self.finding(
                        decl.module,
                        node,
                        f"RequestOutcome.{name} is not a drop and must not "
                        "appear in FAULT_OUTCOMES/POLICY_OUTCOMES",
                    )
            elif in_fault and in_policy:
                yield self.finding(
                    decl.module,
                    node,
                    f"RequestOutcome.{name} is in both FAULT_OUTCOMES and "
                    "POLICY_OUTCOMES; drop attribution would double-count it",
                )
            elif not in_fault and not in_policy:
                yield self.finding(
                    decl.module,
                    node,
                    f"RequestOutcome.{name} is in neither FAULT_OUTCOMES nor "
                    "POLICY_OUTCOMES; drop attribution is no longer total — "
                    "add it to exactly one set",
                )

    def _check_references(
        self, project: ProjectInfo, members: Set[str], reported: Set[int]
    ) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "RequestOutcome"
                    and not node.attr.startswith("_")
                    and node.attr not in members
                    and id(node) not in reported
                ):
                    yield self.finding(
                        module,
                        node,
                        f"RequestOutcome.{node.attr} does not exist "
                        f"(known members: {', '.join(sorted(members))})",
                    )
