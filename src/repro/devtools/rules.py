"""Domain lint rules REP001–REP008 for the :mod:`repro` package.

Each rule encodes one invariant the simulator's headline numbers depend
on — determinism, unit discipline, layering, validation coverage — as a
mechanical AST check.  See the "Static analysis & invariants" section of
``DESIGN.md`` for the rationale behind every rule and the recipe for
adding a new one.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .engine import Finding, ModuleInfo, Rule, register
from .layering import allowed_imports, node_for

__all__ = [
    "DeterminismRule",
    "FloatEqualityRule",
    "UnitSuffixRule",
    "LayeringRule",
    "MutableDefaultRule",
    "ValidationCoverageRule",
    "AllExportsRule",
    "ReturnAnnotationRule",
    "UNIT_SUFFIXES",
]

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Recognised measurement suffixes for power / energy / time / frequency
#: / rate quantities.  REP002 treats identifiers carrying one of these as
#: float quantities; REP003 demands one on identifiers named after a
#: bare quantity stem.
UNIT_SUFFIXES: Tuple[str, ...] = (
    "_w",
    "_kw",
    "_mw",
    "_wh",
    "_kwh",
    "_j",
    "_kj",
    "_s",
    "_ms",
    "_us",
    "_ns",
    "_hz",
    "_khz",
    "_mhz",
    "_ghz",
    "_rps",
)


def _has_unit_suffix(name: str) -> bool:
    lowered = name.lower()
    return any(lowered.endswith(suffix) for suffix in UNIT_SUFFIXES)


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# REP001 — determinism
# ---------------------------------------------------------------------------

_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)
_WALLCLOCK_TIME_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


@register
class DeterminismRule(Rule):
    """REP001: all randomness flows from seeded generators; no wall clocks.

    Forbids the stdlib :mod:`random` module, the legacy ``np.random.*``
    global functions (the seeded new-style constructors such as
    ``np.random.default_rng`` / ``np.random.SeedSequence`` are allowed),
    and wall-clock reads (``time.time()``, ``datetime.now()``, …) —
    simulation code must take its randomness from an injected
    ``np.random.Generator`` and its time from the simulation clock.
    """

    rule_id = "REP001"
    summary = "nondeterminism: unseeded randomness or wall-clock access"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            module,
                            node,
                            "import of stdlib 'random'; inject a seeded "
                            "np.random.Generator instead",
                        )
                    elif alias.name == "numpy.random":
                        yield self.finding(
                            module,
                            node,
                            "import of 'numpy.random' module; use "
                            "np.random.default_rng(seed) generators",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module,
                        node,
                        "import from stdlib 'random'; inject a seeded "
                        "np.random.Generator instead",
                    )
                elif node.module == "numpy.random":
                    bad = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _NP_RANDOM_ALLOWED
                    ]
                    if bad:
                        yield self.finding(
                            module,
                            node,
                            f"legacy numpy.random import(s) {bad}; only seeded "
                            "generator constructors are allowed",
                        )
                elif node.module == "time":
                    bad = [
                        alias.name
                        for alias in node.names
                        if alias.name in _WALLCLOCK_TIME_FUNCS
                    ]
                    if bad:
                        yield self.finding(
                            module,
                            node,
                            f"wall-clock import(s) {bad} from 'time'; use the "
                            "simulation clock (engine.now)",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        if chain is None or len(chain) < 2:
            return
        if chain[0] == "random" and len(chain) == 2:
            yield self.finding(
                module,
                node,
                f"call to random.{chain[1]}(); use an injected seeded "
                "np.random.Generator",
            )
        elif (
            len(chain) >= 3
            and chain[-2] == "random"
            and chain[-3] in ("np", "numpy")
            and chain[-1] not in _NP_RANDOM_ALLOWED
        ):
            yield self.finding(
                module,
                node,
                f"legacy global np.random.{chain[-1]}(); derive a generator "
                "from the run's SeedSequence",
            )
        elif chain[0] == "time" and len(chain) == 2 and chain[1] in _WALLCLOCK_TIME_FUNCS:
            yield self.finding(
                module,
                node,
                f"wall-clock time.{chain[1]}(); use the simulation clock "
                "(engine.now)",
            )
        elif chain[-1] in _WALLCLOCK_DATETIME and any(
            part in ("datetime", "date") for part in chain[:-1]
        ):
            dotted = ".".join(chain)
            yield self.finding(
                module,
                node,
                f"wall-clock {dotted}(); simulation time must come from the "
                "simulation clock",
            )


# ---------------------------------------------------------------------------
# REP002 — float equality on physical quantities
# ---------------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """REP002: no ``==``/``!=`` on computed power/time/frequency floats.

    Flags equality comparisons where either operand is a float literal
    or an identifier carrying a measurement suffix (``_w``, ``_s``,
    ``_ghz``, …).  Use :func:`math.isclose` (or an explicit ordering
    test) instead; exact float equality on computed quantities is how
    capping thresholds silently stop firing.
    """

    rule_id = "REP002"
    summary = "float equality on measured quantity; use math.isclose"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                culprit = self._float_operand(pair)
                if culprit is not None:
                    yield self.finding(
                        module,
                        node,
                        f"float equality involving {culprit!r}; use "
                        "math.isclose (or an ordering comparison)",
                    )

    @staticmethod
    def _float_operand(pair: Tuple[ast.AST, ast.AST]) -> Optional[str]:
        for operand in pair:
            if isinstance(operand, ast.Constant) and isinstance(operand.value, float):
                return repr(operand.value)
            name = _terminal_name(operand)
            if name is not None and _has_unit_suffix(name):
                return name
        return None


# ---------------------------------------------------------------------------
# REP003 — unit-suffix discipline
# ---------------------------------------------------------------------------

_STEM_SUGGESTIONS: Dict[str, str] = {
    "power": "_w / _kw",
    "watts": "_w",
    "energy": "_j / _wh / _kwh",
    "joules": "_j",
    "freq": "_hz / _ghz",
    "frequency": "_hz / _ghz",
    "time": "_s",
    "duration": "_s",
    "interval": "_s",
    "timeout": "_s",
    "delay": "_s",
    "latency": "_s",
    "period": "_s",
    "elapsed": "_s",
}


def _bare_stem(name: str) -> Optional[str]:
    lowered = name.lower()
    for stem in _STEM_SUGGESTIONS:
        if lowered == stem or lowered.endswith("_" + stem):
            return stem
    return None


@register
class UnitSuffixRule(Rule):
    """REP003: quantity-named identifiers must carry a unit suffix.

    A variable, attribute, field or parameter whose name *ends* in a
    bare quantity stem (``power``, ``time``, ``delay``, ``frequency``,
    …) is ambiguous about its unit — the exact bug class behind wrong
    W-vs-kW capping thresholds and ms-vs-s slot arithmetic.  Such names
    must end in a measurement suffix instead (``peak_power_w``,
    ``arrival_time_s``, ``cap_freq_ghz``).
    """

    rule_id = "REP003"
    summary = "quantity identifier without unit suffix"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_target(module, target)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_target(module, node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    yield from self._check_name(module, arg, arg.arg)

    def _check_target(self, module: ModuleInfo, target: ast.AST) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(module, element)
        elif isinstance(target, ast.Name):
            yield from self._check_name(module, target, target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield from self._check_name(module, target, target.attr)

    def _check_name(
        self, module: ModuleInfo, node: ast.AST, name: str
    ) -> Iterator[Finding]:
        stem = _bare_stem(name)
        if stem is not None:
            hint = _STEM_SUGGESTIONS[stem]
            yield self.finding(
                module,
                node,
                f"identifier {name!r} names a quantity without a unit; "
                f"suffix it (e.g. {hint})",
            )


# ---------------------------------------------------------------------------
# REP004 — architecture layering
# ---------------------------------------------------------------------------


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _iter_runtime_imports(
    nodes: Sequence[ast.AST],
) -> Iterator[Union[ast.Import, ast.ImportFrom]]:
    for node in nodes:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
            yield from _iter_runtime_imports(node.orelse)
        else:
            yield from _iter_runtime_imports(list(ast.iter_child_nodes(node)))


@register
class LayeringRule(Rule):
    """REP004: runtime imports must follow the declared architecture DAG.

    Every module maps to a layering node (see
    :mod:`repro.devtools.layering`); a runtime import of another node is
    legal only when the declared DAG allows it — e.g. ``cluster`` may
    import the DES kernel (``sim.kernel``) but never the orchestration
    layer (``sim``).  ``if TYPE_CHECKING:`` imports are exempt.
    """

    rule_id = "REP004"
    summary = "import violates the declared architecture layering"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module is None:
            return
        importer = node_for(module.module)
        if importer is None:
            return
        allowed = allowed_imports(importer)
        if allowed is None:  # root layer: unconstrained
            return
        for stmt in _iter_runtime_imports(module.tree.body):
            seen: Set[str] = set()
            for target in self._import_targets(module, stmt):
                target_node = node_for(target)
                if (
                    target_node is None
                    or target_node == importer
                    or target_node in allowed
                    or target_node in seen
                ):
                    continue
                seen.add(target_node)
                yield self.finding(
                    module,
                    stmt,
                    f"layer {importer!r} may not import {target_node!r} "
                    f"(via {target}); allowed: {sorted(allowed)}",
                )

    @staticmethod
    def _import_targets(
        module: ModuleInfo, stmt: Union[ast.Import, ast.ImportFrom]
    ) -> Iterator[str]:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name
            return
        if stmt.level == 0:
            base = stmt.module or ""
            if base != "repro" and not base.startswith("repro."):
                return
        else:
            assert module.module is not None
            parts = module.module.split(".")
            package = parts if module.is_package else parts[:-1]
            if stmt.level - 1 > 0:
                package = package[: len(package) - (stmt.level - 1)]
            if not package:
                return
            base = ".".join(package + ([stmt.module] if stmt.module else []))
        for alias in stmt.names:
            if alias.name == "*":
                yield base
            else:
                yield f"{base}.{alias.name}"


# ---------------------------------------------------------------------------
# REP005 — shared mutable state
# ---------------------------------------------------------------------------


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and not node.args and not node.keywords:
        return isinstance(node.func, ast.Name) and node.func.id in (
            "list",
            "dict",
            "set",
        )
    return False


@register
class MutableDefaultRule(Rule):
    """REP005: no mutable default arguments or shared mutable class attrs.

    A ``def f(x=[])`` default and a class-level ``cache = {}`` are both
    one shared object across every call/instance — classic
    state-bleeds-between-runs bugs in long simulation campaigns.  Use
    ``None``-plus-assign or ``dataclasses.field(default_factory=...)``.
    """

    rule_id = "REP005"
    summary = "mutable default argument / shared mutable class attribute"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                defaults = list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_literal(default):
                        yield self.finding(
                            module,
                            default,
                            "mutable default argument; use None and assign "
                            "inside the function",
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.Assign):
                        value = stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                    if value is not None and _is_mutable_literal(value):
                        yield self.finding(
                            module,
                            stmt,
                            f"class {node.name!r} shares one mutable object "
                            "across instances; use "
                            "field(default_factory=...) or set it in __init__",
                        )


# ---------------------------------------------------------------------------
# REP006 — validation coverage of config constructors
# ---------------------------------------------------------------------------

_NUMERIC_ANNOTATION_RE = re.compile(r"\b(int|float)\b")


def _is_numeric_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return _NUMERIC_ANNOTATION_RE.search(text) is not None


def _is_validation_call(func: ast.AST) -> bool:
    name = _terminal_name(func)
    return name is not None and (name.startswith("check_") or name == "require")


@register
class ValidationCoverageRule(Rule):
    """REP006: numeric params of public ``*Config`` classes are validated.

    Every ``int``/``float`` field (or ``__init__`` parameter) of a
    public class named ``*Config`` must be passed to one of the
    :mod:`repro._validation` helpers (``check_*`` / ``require``)
    somewhere in the class — the :class:`repro.SimulationConfig`
    ``__post_init__`` pattern.  Unvalidated knobs become silent
    mis-simulation when a caller passes a watt value where the model
    expects a fraction.
    """

    rule_id = "REP006"
    summary = "numeric config parameter not routed through repro._validation"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config") or node.name.startswith("_"):
                continue
            validated = self._validated_names(node)
            for field_name, field_node in self._numeric_fields(node):
                if field_name not in validated:
                    yield self.finding(
                        module,
                        field_node,
                        f"numeric parameter {field_name!r} of {node.name} is "
                        "never passed to a repro._validation check",
                    )

    @staticmethod
    def _numeric_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
        fields: List[Tuple[str, ast.AST]] = []
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
                and _is_numeric_annotation(stmt.annotation)
            ):
                fields.append((stmt.target.id, stmt))
            elif (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ):
                args = stmt.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.arg != "self" and _is_numeric_annotation(arg.annotation):
                        fields.append((arg.arg, arg))
        return fields

    @staticmethod
    def _validated_names(node: ast.ClassDef) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call) and _is_validation_call(sub.func)):
                continue
            values = list(sub.args) + [kw.value for kw in sub.keywords]
            for value in values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    names.add(value.value)
                elif (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    names.add(value.attr)
                elif isinstance(value, ast.Name):
                    names.add(value.id)
        return names


# ---------------------------------------------------------------------------
# REP007 — __all__ consistency
# ---------------------------------------------------------------------------


@register
class AllExportsRule(Rule):
    """REP007: every module with public defs declares a truthful ``__all__``.

    Three checks: the module declares ``__all__`` when it defines public
    functions/classes; every name listed in ``__all__`` actually exists
    (defined, imported, or a key of a PEP 562 ``_LAZY`` table); and
    every public top-level function/class appears in ``__all__``.
    Private modules (leading underscore, except ``__init__``) and
    ``__main__`` entry scripts are exempt.
    """

    rule_id = "REP007"
    summary = "__all__ missing, stale, or incomplete"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        stem = Path(module.path).stem
        if stem == "__main__" or (stem.startswith("_") and stem != "__init__"):
            return
        tree = module.tree
        public_defs: List[Tuple[str, ast.AST]] = []
        defined: Set[str] = set()
        star_import = False
        all_node: Optional[ast.Assign] = None
        exports: List[str] = []

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs.append((stmt.name, stmt))
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    defined.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        defined.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in self._target_names(target):
                        defined.add(name)
                        if name == "__all__":
                            all_node = stmt
                if all_node is stmt:
                    exports = self._literal_strings(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                defined.add(stmt.target.id)

        defined |= self._lazy_names(tree)

        if all_node is None:
            if public_defs:
                yield self.finding(
                    module,
                    None,
                    f"module defines public names "
                    f"({', '.join(sorted(n for n, _ in public_defs))}) "
                    "but no __all__",
                )
            return
        export_set = set(exports)
        if not star_import:
            for name in exports:
                if name not in defined:
                    yield self.finding(
                        module,
                        all_node,
                        f"__all__ exports {name!r} which is not defined in "
                        "the module",
                    )
        for name, def_node in public_defs:
            if name not in export_set:
                yield self.finding(
                    module,
                    def_node,
                    f"public definition {name!r} is missing from __all__ "
                    "(export it or prefix with '_')",
                )

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from AllExportsRule._target_names(element)

    @staticmethod
    def _literal_strings(value: ast.AST) -> List[str]:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return []
        return [
            element.value
            for element in value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]

    @staticmethod
    def _lazy_names(tree: ast.Module) -> Set[str]:
        """Names served by the PEP 562 ``_LAZY`` + ``__getattr__`` idiom."""
        has_getattr = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__"
            for stmt in tree.body
        )
        if not has_getattr:
            return set()
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_LAZY" for t in stmt.targets
                )
                and isinstance(stmt.value, ast.Dict)
            ):
                return {
                    key.value
                    for key in stmt.value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
        return set()


# ---------------------------------------------------------------------------
# REP008 — return-annotation coverage
# ---------------------------------------------------------------------------


@register
class ReturnAnnotationRule(Rule):
    """REP008: public functions and methods annotate their return type.

    Applies to module-level functions and class methods whose name does
    not start with an underscore.  Nested helper functions are exempt
    (they are implementation detail, not API).
    """

    rule_id = "REP008"
    summary = "public function without a return-type annotation"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_body(module, module.tree.body, "")

    def _check_body(
        self, module: ModuleInfo, body: Sequence[ast.stmt], prefix: str
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name.startswith("_"):
                    continue
                if stmt.returns is None:
                    qualname = f"{prefix}{stmt.name}"
                    yield self.finding(
                        module,
                        stmt,
                        f"public function {qualname!r} has no return-type "
                        "annotation",
                    )
            elif isinstance(stmt, ast.ClassDef):
                yield from self._check_body(module, stmt.body, f"{stmt.name}.")
