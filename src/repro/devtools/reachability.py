"""REP010 — cross-process determinism race detector.

The runner's contract (``tests/test_determinism.py``) is that a sweep's
merged output is byte-identical for any worker count.  The dynamic test
can only catch a violation that happens to fire; this rule is its
static counterpart.  It identifies the *cell callables* — the
experiment functions :func:`repro.runner.run_cells` fans out across
processes — walks the intra-project call graph reachable from them, and
flags the three statically-recognisable ways a cell can observe which
process (or how many prior cells) it ran in:

1. **Module-level mutable state.**  A cell that mutates a module global
   (``global`` rebinding, ``X.append(...)``, ``X[k] = v``,
   ``next(module_counter)``) accumulates per-*process* state: the 4th
   cell in a serial run sees three predecessors, the 4th cell under
   ``workers=4`` sees none.  Reads of a module global that is mutated
   elsewhere in its module are flagged for the same reason.
2. **Unordered iteration feeding outputs.**  Iterating a ``set`` (or
   feeding one into ``list``/``tuple``/``join``/a serialization or
   hashing sink such as ``json.dumps``/``canonical_json``/``cell_key``)
   makes cell output depend on hash-iteration order.  Wrapping the set
   in ``sorted(...)`` is the fix and is recognised.
3. **Unseeded RNG construction.**  ``default_rng()`` or
   ``SeedSequence()`` with no arguments draws OS entropy, which no two
   runs share.

The call graph is deliberately conservative: it follows same-module
functions, ``from repro.x import f`` edges into the linted project,
``self.method`` calls within a class, and classes instantiated into a
cell-callable slot (their ``__init__``/``__call__``).  What it cannot
resolve it does not follow — a path the rule does not see is a path it
stays silent about.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from .engine import Finding, ModuleInfo, ProjectInfo, ProjectRule, register

__all__ = ["DeterminismRaceRule"]

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Names a cell-fanning executor call may carry.
_EXECUTOR_FUNCS = frozenset({"run_cells", "replicate"})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popitem",
        "popleft",
        "setdefault",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)

#: Callables whose output depends on the order of their iterable input.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "map", "join"})

#: Serialization / hashing sinks: any unordered iterable in their
#: argument subtree lands in a deterministic artifact.
_SERIALIZATION_SINKS = frozenset(
    {
        "dumps",
        "dump",
        "canonical_json",
        "cell_key",
        "config_hash",
        "deterministic_hash",
        "sha256",
        "md5",
        "blake2b",
    }
)

#: Set-returning methods (receiver order lost either way).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_set_expression(node: ast.AST, module_sets: Set[str]) -> bool:
    """Statically set-typed: display, comprehension, ``set()``-like call,
    a set-algebra method call, or a module-level set constant."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in module_sets
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra on at least one known set operand
        return _is_set_expression(node.left, module_sets) or _is_set_expression(
            node.right, module_sets
        )
    return False


@dataclass
class _FunctionEntry:
    """One function/method in the project-wide function table."""

    module: ModuleInfo
    module_key: str
    qualname: str
    node: AnyFunctionDef
    class_name: Optional[str] = None


@dataclass
class _ModuleIndex:
    """Per-module symbol tables the resolver needs."""

    info: ModuleInfo
    functions: Dict[str, AnyFunctionDef] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: local name -> (source module, original name) for from-imports.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: every module-level assigned name -> its value node (or None).
    module_globals: Dict[str, Optional[ast.AST]] = field(default_factory=dict)
    #: module-level names bound to set expressions.
    module_sets: Set[str] = field(default_factory=set)
    #: module-level names mutated by *some* function in this module.
    mutated_globals: Set[str] = field(default_factory=set)


def _import_source_module(
    module_key: str, is_package: bool, stmt: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted name an ``ImportFrom`` statement reads from.

    Resolves relative levels against *module_key* (the importing
    module's dotted name): in ``repro.faults.chaos``, ``from ..sim
    import X`` → ``repro.sim``; in the ``repro.sim`` package
    ``__init__``, ``from .engine import X`` → ``repro.sim.engine``.
    """
    if stmt.level == 0:
        return stmt.module
    parts = module_key.split(".")
    package = parts if is_package else parts[:-1]
    if stmt.level - 1 > len(package):
        return None
    base = package[: len(package) - (stmt.level - 1)]
    if stmt.module:
        base = base + stmt.module.split(".")
    return ".".join(base) if base else None


def _index_module(info: ModuleInfo, module_key: str) -> _ModuleIndex:
    index = _ModuleIndex(info=info)
    is_package = info.path.endswith("__init__.py")
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            index.classes[stmt.name] = stmt
        elif isinstance(stmt, ast.ImportFrom):
            source = _import_source_module(module_key, is_package, stmt)
            if source is None:
                continue
            for alias in stmt.names:
                if alias.name != "*":
                    index.from_imports[alias.asname or alias.name] = (
                        source,
                        alias.name,
                    )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    index.module_globals[target.id] = stmt.value
                    if _is_set_expression(stmt.value, set()):
                        index.module_sets.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            index.module_globals[stmt.target.id] = stmt.value
            if stmt.value is not None and _is_set_expression(stmt.value, set()):
                index.module_sets.add(stmt.target.id)
    return index


def _bound_names(node: AnyFunctionDef) -> Set[str]:
    """Names bound locally anywhere inside *node* (params + stores)."""
    bound: Set[str] = set()
    args = node.args
    for arg in (
        args.posonlyargs
        + args.args
        + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            bound.add(sub.id)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
            bound.add(sub.name)
    return bound


def _global_mutations(
    index: _ModuleIndex, node: AnyFunctionDef
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, global name, how)`` for module-state mutations."""
    bound = _bound_names(node)
    declared_global: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
            for name in sub.names:
                yield sub, name, "declares it global (rebinding)"

    def is_module_global(name: str) -> bool:
        if name in declared_global:
            return False  # already reported at the global statement
        return name in index.module_globals and name not in bound

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and is_module_global(func.value.id)
            ):
                yield sub, func.value.id, f"calls .{func.attr}() on it"
            elif (
                isinstance(func, ast.Name)
                and func.id == "next"
                and sub.args
                and isinstance(sub.args[0], ast.Name)
                and is_module_global(sub.args[0].id)
            ):
                yield sub, sub.args[0].id, "advances it with next()"
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                container = None
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    container = target.value
                if (
                    container is not None
                    and isinstance(container, ast.Name)
                    and is_module_global(container.id)
                ):
                    yield sub, container.id, "assigns into it"
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and is_module_global(target.value.id)
                ):
                    yield sub, target.value.id, "deletes from it"


def _mutated_global_reads(
    index: _ModuleIndex, node: AnyFunctionDef
) -> Iterator[Tuple[ast.AST, str]]:
    """Reads of module globals that some function in the module mutates.

    Lines already reported as mutation sites are skipped — the mutation
    finding subsumes the read.
    """
    bound = _bound_names(node)
    mutation_sites = {
        (getattr(site, "lineno", None), name)
        for site, name, _ in _global_mutations(index, node)
    }
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in index.mutated_globals
            and sub.id not in bound
            and (sub.lineno, sub.id) not in mutation_sites
        ):
            yield sub, sub.id


def _walk_skipping_sorted(node: ast.AST) -> Iterator[ast.AST]:
    """Pre-order walk that does not descend into ``sorted(...)`` calls.

    A set already routed through ``sorted()`` has a defined order, so
    the serialization-sink check must not re-flag it.
    """
    if isinstance(node, ast.Call) and _terminal_name(node.func) == "sorted":
        return
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _walk_skipping_sorted(child)


def _local_set_names(node: AnyFunctionDef) -> Set[str]:
    """Locals that only ever hold set expressions inside *node*.

    A name once reassigned to anything non-set (``s = sorted(s)``) is
    dropped — after that its iteration order is defined.
    """
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expression(sub.value, assigned_set):
                        assigned_set.add(target.id)
                    else:
                        assigned_other.add(target.id)
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            if sub.value is not None and _is_set_expression(sub.value, assigned_set):
                assigned_set.add(sub.target.id)
            else:
                assigned_other.add(sub.target.id)
    return assigned_set - assigned_other


def _unordered_iterations(
    index: _ModuleIndex, node: AnyFunctionDef
) -> Iterator[Tuple[ast.AST, str]]:
    """Set-ordered data reaching loops, consumers or serialization sinks."""
    bound = _bound_names(node)
    module_sets = (index.module_sets - bound) | _local_set_names(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            if _is_set_expression(sub.iter, module_sets):
                yield sub.iter, "iterates a set in hash order"
        elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in sub.generators:
                if _is_set_expression(generator.iter, module_sets):
                    yield generator.iter, "iterates a set in hash order"
        elif isinstance(sub, ast.Call):
            name = _terminal_name(sub.func)
            if name in _ORDER_SENSITIVE_CONSUMERS:
                for arg in sub.args:
                    if _is_set_expression(arg, module_sets):
                        yield arg, f"feeds a set into {name}() unsorted"
            elif name in _SERIALIZATION_SINKS:
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    for inner in _walk_skipping_sorted(arg):
                        if _is_set_expression(inner, module_sets):
                            yield (
                                inner,
                                f"feeds a set into the {name}() "
                                "serialization sink",
                            )


def _unseeded_rng(node: AnyFunctionDef) -> Iterator[Tuple[ast.AST, str]]:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call) or sub.args or sub.keywords:
            continue
        name = _terminal_name(sub.func)
        if name == "default_rng":
            yield sub, "default_rng() with no seed draws OS entropy"
        elif name == "SeedSequence":
            yield sub, "SeedSequence() with no entropy draws OS entropy"


class _CallGraph:
    """Conservative intra-project call graph."""

    def __init__(self, project: ProjectInfo) -> None:
        self.indexes: Dict[str, _ModuleIndex] = {}
        self.functions: Dict[Tuple[str, str], _FunctionEntry] = {}
        for info in project.modules:
            key = info.module or info.path
            index = _index_module(info, key)
            self.indexes[key] = index
            for name, fn in index.functions.items():
                self.functions[(key, name)] = _FunctionEntry(
                    module=info, module_key=key, qualname=name, node=fn
                )
            for class_name, class_node in index.classes.items():
                for stmt in class_node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{class_name}.{stmt.name}"
                        self.functions[(key, qualname)] = _FunctionEntry(
                            module=info,
                            module_key=key,
                            qualname=qualname,
                            node=stmt,
                            class_name=class_name,
                        )
        for index in self.indexes.values():
            mutated: Set[str] = set()
            for entry in self.functions.values():
                if entry.module is not index.info:
                    continue
                for _, name, _ in _global_mutations(index, entry.node):
                    mutated.add(name)
            index.mutated_globals = mutated

    # -- resolution ----------------------------------------------------

    def resolve_function(
        self,
        module_key: str,
        name: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve *name* in *module_key* to a function-table key,
        chasing ``from x import y`` re-export chains (``__init__``
        facades) until a definition or a dead end."""
        if (module_key, name) in self.functions:
            return (module_key, name)
        index = self.indexes.get(module_key)
        if index is None:
            return None
        target = index.from_imports.get(name)
        if target is None:
            return None
        seen = _seen if _seen is not None else set()
        if (module_key, name) in seen:
            return None
        seen.add((module_key, name))
        return self.resolve_function(target[0], target[1], seen)

    def resolve_class(
        self,
        module_key: str,
        name: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve *name* to ``(module_key, class name)`` when it is a
        class, chasing re-export chains like :meth:`resolve_function`."""
        index = self.indexes.get(module_key)
        if index is None:
            return None
        if name in index.classes:
            return (module_key, name)
        target = index.from_imports.get(name)
        if target is None:
            return None
        seen = _seen if _seen is not None else set()
        if (module_key, name) in seen:
            return None
        seen.add((module_key, name))
        return self.resolve_class(target[0], target[1], seen)

    def class_entry_keys(self, class_key: Tuple[str, str]) -> List[Tuple[str, str]]:
        module_key, class_name = class_key
        keys = []
        for method in ("__init__", "__call__"):
            key = (module_key, f"{class_name}.{method}")
            if key in self.functions:
                keys.append(key)
        return keys

    def callees(self, key: Tuple[str, str]) -> List[Tuple[str, str]]:
        entry = self.functions[key]
        out: List[Tuple[str, str]] = []
        for sub in ast.walk(entry.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                resolved = self.resolve_function(entry.module_key, func.id)
                if resolved is not None:
                    out.append(resolved)
                    continue
                class_key = self.resolve_class(entry.module_key, func.id)
                if class_key is not None:
                    out.extend(self.class_entry_keys(class_key))
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and entry.class_name is not None
            ):
                method_key = (
                    entry.module_key,
                    f"{entry.class_name}.{func.attr}",
                )
                if method_key in self.functions:
                    out.append(method_key)
        return out

    # -- entry points --------------------------------------------------

    def entry_points(self) -> Dict[Tuple[str, str], str]:
        """Cell callables: ``{function key: reason}``."""
        entries: Dict[Tuple[str, str], str] = {}
        for (module_key, qualname), entry in self.functions.items():
            if "." not in qualname and qualname.endswith("_cell"):
                entries.setdefault(
                    (module_key, qualname), f"cell-named function {qualname!r}"
                )
        for key, entry in list(self.functions.items()):
            for sub in ast.walk(entry.node):
                if not isinstance(sub, ast.Call):
                    continue
                if _terminal_name(sub.func) not in _EXECUTOR_FUNCS:
                    continue
                experiment = None
                if sub.args:
                    experiment = sub.args[0]
                for keyword in sub.keywords:
                    if keyword.arg == "experiment":
                        experiment = keyword.value
                if not isinstance(experiment, ast.Name):
                    continue
                reason = (
                    f"passed to {_terminal_name(sub.func)}() in "
                    f"{entry.qualname}"
                )
                resolved = self.resolve_function(entry.module_key, experiment.id)
                if resolved is not None:
                    entries.setdefault(resolved, reason)
                    continue
                class_key = self._resolve_instance_class(entry, experiment.id)
                if class_key is not None:
                    for method_key in self.class_entry_keys(class_key):
                        entries.setdefault(method_key, reason)
        return entries

    def _resolve_instance_class(
        self, entry: _FunctionEntry, var_name: str
    ) -> Optional[Tuple[str, str]]:
        """``probe = SomeProbe(...)`` inside *entry* → that class."""
        for sub in ast.walk(entry.node):
            if not isinstance(sub, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == var_name for t in sub.targets
            ):
                continue
            value = sub.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                return self.resolve_class(entry.module_key, value.func.id)
        return None

    def reachable(
        self, entries: Dict[Tuple[str, str], str]
    ) -> Dict[Tuple[str, str], str]:
        """BFS closure: ``{function key: entry description}``."""
        origin: Dict[Tuple[str, str], str] = {}
        queue = list(entries.items())
        while queue:
            key, reason = queue.pop(0)
            if key in origin:
                continue
            origin[key] = reason
            for callee in self.callees(key):
                if callee not in origin:
                    queue.append((callee, reason))
        return origin


@register
class DeterminismRaceRule(ProjectRule):
    """REP010: cell-reachable code must be process-count oblivious.

    Functions reachable from :func:`repro.runner.run_cells` cell
    callables may not mutate (or read mutated) module-level state,
    iterate sets into ordered outputs or serialization/hashing sinks,
    or construct unseeded RNGs — each makes ``workers=1`` and
    ``workers=N`` runs observably different, breaking the byte-identity
    contract the sweep caches and manifests rely on.
    """

    rule_id = "REP010"
    summary = "nondeterminism on a run_cells cell path (race/order/entropy)"

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = _CallGraph(project)
        entries = graph.entry_points()
        if not entries:
            return
        for key, via in graph.reachable(entries).items():
            entry = graph.functions[key]
            index = graph.indexes[entry.module_key]
            context = f"on a cell path ({via})"
            for node, name, how in _global_mutations(index, entry.node):
                yield self.finding(
                    entry.module,
                    node,
                    f"{entry.qualname} mutates module-level state "
                    f"{name!r}: {how} {context}; per-process state "
                    "diverges between worker counts",
                )
            for node, name in _mutated_global_reads(index, entry.node):
                yield self.finding(
                    entry.module,
                    node,
                    f"{entry.qualname} reads module-level {name!r}, "
                    f"which this module also mutates, {context}; "
                    "pass state explicitly instead",
                )
            for node, how in _unordered_iterations(index, entry.node):
                yield self.finding(
                    entry.module,
                    node,
                    f"{entry.qualname} {how} {context}; wrap it in "
                    "sorted(...) to fix the order",
                )
            for node, how in _unseeded_rng(entry.node):
                yield self.finding(
                    entry.module,
                    node,
                    f"{entry.qualname}: {how} {context}; derive it from "
                    "the cell's seed",
                )
