"""repro.devtools — self-contained static analysis for the simulator.

A stdlib-:mod:`ast` rule engine plus domain rules (REP001–REP008) that
mechanically enforce the invariants the paper reproduction depends on:
seeded determinism, unit-suffix discipline on power/time/frequency
quantities, float-comparison hygiene, the declared architecture DAG,
validation coverage and export consistency.

Run it as ``python -m repro.devtools.lint src/repro``; the tier-1 test
``tests/test_static_analysis.py`` gates every PR on a zero-finding
tree.  Nothing inside :mod:`repro` proper may import this package (the
layering DAG itself forbids it) — it is a development tool, not a
runtime dependency.
"""

from . import dataflow as _dataflow  # noqa: F401  (importing registers the rules)
from . import reachability as _reachability  # noqa: F401
from . import registries as _registries  # noqa: F401
from . import rules as _rules  # noqa: F401
from .engine import (
    Finding,
    ModuleInfo,
    ProjectInfo,
    ProjectRule,
    Rule,
    build_rules,
    lint_module,
    lint_paths,
    lint_project,
    lint_source,
    load_module,
    register,
    registered_rules,
    render_json,
    render_text,
)
from .layering import ALLOWED_IMPORTS, node_for, validate_layering

__all__ = [
    "Finding",
    "ModuleInfo",
    "ProjectInfo",
    "Rule",
    "ProjectRule",
    "register",
    "registered_rules",
    "build_rules",
    "load_module",
    "lint_module",
    "lint_source",
    "lint_paths",
    "lint_project",
    "render_text",
    "render_json",
    "ALLOWED_IMPORTS",
    "node_for",
    "validate_layering",
]
