"""Finding baselines: adopt the linter without stopping the line.

A new rule usually lands with pre-existing findings the team has
judged acceptable (documented false positives, debt scheduled for its
own PR).  A *baseline file* records those as fingerprints; the lint
then fails only on findings **not** in the baseline, so new debt is
blocked while old debt is visible but non-fatal.

Fingerprints are ``(path, rule, message)`` — deliberately excluding
the line and column so that unrelated edits that merely shift a
baselined finding up or down the file do not resurrect it.  Two
identical messages from the same rule in the same file collapse to one
fingerprint; that is the right behavior for the suppress-or-fix
decision the baseline encodes.

The file format is versioned JSON with sorted entries, so regenerating
it (``--write-baseline``) produces a minimal, reviewable diff.  The
intended steady state of this repo is an **empty** baseline — every
entry carries a ``# why`` obligation in review.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Set, Tuple

from .engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "render_baseline",
    "unbaselined",
]

#: Format version stamped into every baseline file.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    """Stable identity of a finding: path, rule and message (no line)."""
    return (finding.path.replace("\\", "/"), finding.rule, finding.message)


def load_baseline(text: str) -> Set[Fingerprint]:
    """Parse baseline file *text* into a set of fingerprints.

    Raises ``ValueError`` on malformed documents (wrong version, wrong
    shape) — a silently-ignored baseline would un-suppress everything
    or, worse, suppress nothing while appearing to work.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ValueError("baseline root must be a JSON object")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise ValueError("baseline 'findings' must be a list")
    fingerprints: Set[Fingerprint] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("baseline entries must be objects")
        try:
            path, rule, message = entry["path"], entry["rule"], entry["message"]
        except KeyError as exc:
            raise ValueError(f"baseline entry missing key {exc}") from None
        if not all(isinstance(v, str) for v in (path, rule, message)):
            raise ValueError("baseline entry fields must be strings")
        fingerprints.add((path.replace("\\", "/"), rule, message))
    return fingerprints


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize *findings* as a baseline document (sorted, versioned)."""
    entries = sorted({fingerprint(f) for f in findings})
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": path, "rule": rule, "message": message}
            for path, rule, message in entries
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def unbaselined(
    findings: Sequence[Finding], baseline: Set[Fingerprint]
) -> List[Finding]:
    """The findings that are *not* covered by *baseline* (sorted order
    preserved) — the set the lint exit status is computed from."""
    return [f for f in findings if fingerprint(f) not in baseline]
