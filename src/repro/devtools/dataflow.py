"""REP009 — intra-procedural dimensional dataflow analysis.

REP003 checks one identifier at a time: a quantity-named variable must
carry a unit suffix.  REP009 is the strictly stronger dataflow check:
it runs a small abstract interpreter over every function body (and over
module/class constant blocks), where the abstract value of an
expression is its *unit dimension* — power, energy, time, frequency,
rate, dimensionless, or unknown (see :mod:`repro.devtools.dimensions`).

Dimensions enter the environment from unit suffixes on parameter and
variable names, from string unit tags inside annotations, and from
iterating suffixed sequences; they propagate through arithmetic via the
dimension algebra (``W × s → J``, ``J / s → W``, scalar literals are
transparent under ``*``/``/``).  The rule flags the places where two
*known but different* dimensions meet:

* ``+`` / ``-`` / augmented assignment between mixed dimensions
  (``power_w + energy_j`` — the Table-2 bug class);
* ordering/equality comparisons and ``min``/``max`` over mixed
  dimensions;
* assigning an expression of one dimension to a name whose suffix
  declares another (``energy_j = power_w``), and dimension-changing
  reassignment of an unsuffixed local;
* passing a value of one dimension to a keyword parameter whose name is
  suffixed with another (``run(duration_s=peak_power_w)``);
* conditional expressions whose branches carry different dimensions.

``rate`` and ``frequency`` are treated as compatible (both inverse
time), and *unknown never fires* — the analysis abstains rather than
guesses.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .dimensions import (
    DIMENSIONLESS,
    FREQUENCY,
    RATE,
    UNKNOWN,
    combine_div,
    combine_mul,
    dimension_of_annotation,
    dimension_of_name,
)
from .engine import Finding, ModuleInfo, Rule, register

__all__ = ["DimensionalDataflowRule"]

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls whose result carries the common dimension of their arguments
#: (and whose *mixed* arguments therefore indicate a comparison or
#: aggregation across incompatible units).
_HOMOGENEOUS_CALLS = frozenset({"min", "max", "abs", "sum", "fsum"})


def _compatible(left: str, right: str) -> bool:
    """True when two known dimensions may legally meet in +/-/compare."""
    if left == right:
        return True
    return {left, right} == {RATE, FREQUENCY}


def _snippet(node: ast.AST, limit: int = 40) -> str:
    """Short source rendering of *node* for finding messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic AST
        text = f"<{type(node).__name__}>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


class _FunctionAnalysis:
    """Abstract interpretation of one straight-line scope."""

    def __init__(self, rule: "DimensionalDataflowRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.env: Dict[str, str] = {}
        self.findings: List[Finding] = []

    # -- environment ---------------------------------------------------

    def seed_params(self, node: AnyFunctionDef) -> None:
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            dimension = dimension_of_name(arg.arg)
            if dimension is UNKNOWN:
                dimension = dimension_of_annotation(arg.annotation)
            if dimension is not UNKNOWN:
                self.env[arg.arg] = dimension

    def _bind(self, name: str, dimension: Optional[str]) -> None:
        if dimension is UNKNOWN:
            self.env.pop(name, None)
        else:
            self.env[name] = dimension

    # -- findings ------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))

    # -- statement walk ------------------------------------------------

    def run_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own analysis pass
        if isinstance(stmt, ast.Assign):
            value_dim = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, stmt.value, value_dim)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value_dim = self.eval(stmt.value)
                if value_dim is UNKNOWN:
                    value_dim = dimension_of_annotation(stmt.annotation)
                    self.assign(stmt.target, stmt.value, value_dim, check=False)
                else:
                    self.assign(stmt.target, stmt.value, value_dim)
        elif isinstance(stmt, ast.AugAssign):
            self.aug_assign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.run_block(stmt.body)
            self.run_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dim = self.eval(stmt.iter)
            self.bind_loop_target(stmt.target, stmt.iter, iter_dim)
            self.run_block(stmt.body)
            self.run_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.run_block(stmt.body)
            self.run_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
            self.run_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_block(stmt.body)
            for handler in stmt.handlers:
                self.run_block(handler.body)
            self.run_block(stmt.orelse)
            self.run_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def assign(
        self,
        target: ast.AST,
        value: ast.AST,
        value_dim: Optional[str],
        check: bool = True,
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            name = target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self.assign(sub_target, sub_value, self.eval(sub_value))
            return
        else:
            return

        declared = dimension_of_name(name)
        if check and value_dim is not UNKNOWN:
            if declared is not UNKNOWN and not _compatible(declared, value_dim):
                self._flag(
                    target,
                    f"assigning a {value_dim} expression "
                    f"({_snippet(value)}) to {name!r}, which is "
                    f"unit-suffixed as {declared}",
                )
            elif declared is UNKNOWN and isinstance(target, ast.Name):
                previous = self.env.get(name)
                if previous is not None and not _compatible(previous, value_dim):
                    self._flag(
                        target,
                        f"reassigning {name!r} from {previous} to "
                        f"{value_dim} ({_snippet(value)}); one local, "
                        "one dimension",
                    )
        if isinstance(target, ast.Name):
            self._bind(name, declared if declared is not UNKNOWN else value_dim)

    def aug_assign(self, stmt: ast.AugAssign) -> None:
        target_dim = self.eval(stmt.target)
        value_dim = self.eval(stmt.value)
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            if (
                target_dim is not UNKNOWN
                and value_dim is not UNKNOWN
                and not _compatible(target_dim, value_dim)
            ):
                self._flag(
                    stmt,
                    f"augmented {_snippet(stmt.target)} "
                    f"({target_dim}) with a {value_dim} value "
                    f"({_snippet(stmt.value)})",
                )
        elif isinstance(stmt.op, (ast.Mult, ast.Div)):
            combine = combine_mul if isinstance(stmt.op, ast.Mult) else combine_div
            result = combine(target_dim, self.scalar_aware(stmt.value, value_dim))
            if isinstance(stmt.target, ast.Name):
                self.assign(stmt.target, stmt.value, result, check=True)

    def bind_loop_target(
        self, target: ast.AST, iterable: ast.AST, iter_dim: Optional[str]
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        declared = dimension_of_name(target.id)
        if (
            declared is not UNKNOWN
            and iter_dim is not UNKNOWN
            and not _compatible(declared, iter_dim)
        ):
            self._flag(
                target,
                f"loop variable {target.id!r} ({declared}) iterates a "
                f"{iter_dim} sequence ({_snippet(iterable)})",
            )
        self._bind(target.id, declared if declared is not UNKNOWN else iter_dim)

    # -- expression evaluation -----------------------------------------

    @staticmethod
    def scalar_aware(node: ast.AST, dimension: Optional[str]) -> Optional[str]:
        """Numeric literals are transparent scalars under ``*`` and ``/``."""
        if (
            dimension is UNKNOWN
            and isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
        ):
            return DIMENSIONLESS
        return dimension

    def eval(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            declared = dimension_of_name(node.id)
            if declared is not UNKNOWN:
                return declared
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            self.eval(node.value)
            return dimension_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            return operand if isinstance(node.op, (ast.UAdd, ast.USub)) else UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value_dim = self.eval(node.value)
            self.assign(node.target, node.value, value_dim)
            return value_dim
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        if isinstance(node, ast.Compare):
            return self.eval_compare(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            return self.eval_ifexp(node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value)
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.eval(element)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.eval_comprehension(node)
        return UNKNOWN

    def eval_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                left is not UNKNOWN
                and right is not UNKNOWN
                and not _compatible(left, right)
            ):
                verb = "adding" if isinstance(node.op, ast.Add) else "subtracting"
                self._flag(
                    node,
                    f"{verb} mixed dimensions: {_snippet(node.left)} "
                    f"({left}) and {_snippet(node.right)} ({right})",
                )
                return UNKNOWN
            return left if left is not UNKNOWN else right
        if isinstance(node.op, ast.Mult):
            return combine_mul(
                self.scalar_aware(node.left, left),
                self.scalar_aware(node.right, right),
            )
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return combine_div(
                self.scalar_aware(node.left, left),
                self.scalar_aware(node.right, right),
            )
        return UNKNOWN

    def eval_compare(self, node: ast.Compare) -> Optional[str]:
        operands = [node.left] + list(node.comparators)
        dims = [self.eval(operand) for operand in operands]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                continue
            left, right = dims[index], dims[index + 1]
            if (
                left is not UNKNOWN
                and right is not UNKNOWN
                and not _compatible(left, right)
            ):
                self._flag(
                    node,
                    f"comparing mixed dimensions: "
                    f"{_snippet(operands[index])} ({left}) vs "
                    f"{_snippet(operands[index + 1])} ({right})",
                )
        return UNKNOWN

    def eval_call(self, node: ast.Call) -> Optional[str]:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
            self.eval(node.func.value)

        arg_dims = [self.eval(arg) for arg in node.args]
        for keyword in node.keywords:
            if keyword.value is None:  # pragma: no cover - defensive
                continue
            value_dim = self.eval(keyword.value)
            if keyword.arg is None:
                continue
            declared = dimension_of_name(keyword.arg)
            if (
                declared is not UNKNOWN
                and value_dim is not UNKNOWN
                and not _compatible(declared, value_dim)
            ):
                self._flag(
                    keyword.value,
                    f"passing a {value_dim} value "
                    f"({_snippet(keyword.value)}) to keyword "
                    f"{keyword.arg!r}, which is unit-suffixed as {declared}",
                )

        if func_name in _HOMOGENEOUS_CALLS:
            known = [d for d in arg_dims if d is not UNKNOWN]
            distinct = sorted(set(known))
            if len(distinct) > 1 and not (
                len(distinct) == 2 and _compatible(distinct[0], distinct[1])
            ):
                self._flag(
                    node,
                    f"{func_name}() over mixed dimensions "
                    f"({', '.join(distinct)}): {_snippet(node)}",
                )
                return UNKNOWN
            return known[0] if known else UNKNOWN
        return UNKNOWN

    def eval_ifexp(self, node: ast.IfExp) -> Optional[str]:
        self.eval(node.test)
        body = self.eval(node.body)
        orelse = self.eval(node.orelse)
        if (
            body is not UNKNOWN
            and orelse is not UNKNOWN
            and not _compatible(body, orelse)
        ):
            self._flag(
                node,
                f"conditional branches carry different dimensions: "
                f"{_snippet(node.body)} ({body}) vs "
                f"{_snippet(node.orelse)} ({orelse})",
            )
            return UNKNOWN
        return body if body is not UNKNOWN else orelse

    def eval_comprehension(
        self, node: Union[ast.ListComp, ast.SetComp, ast.GeneratorExp]
    ) -> Optional[str]:
        for generator in node.generators:
            iter_dim = self.eval(generator.iter)
            self.bind_loop_target(generator.target, generator.iter, iter_dim)
            for condition in generator.ifs:
                self.eval(condition)
        return self.eval(node.elt)


@register
class DimensionalDataflowRule(Rule):
    """REP009: unit dimensions must stay consistent through dataflow.

    An abstract interpreter assigns each local a dimension (power,
    energy, time, frequency, rate, dimensionless) inferred from unit
    suffixes, annotations and the dimension algebra, then flags
    mixed-dimension ``+``/``-``/comparisons, dimension-changing
    (re)assignments, and mixed keyword bindings.  ``W × s → J``-class
    products are legal by construction; anything the algebra cannot
    justify is *unknown* and never flagged.
    """

    rule_id = "REP009"
    summary = "mixed unit dimensions in dataflow (add/sub/compare/assign)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for scope, params in self._scopes(module.tree):
            analysis = _FunctionAnalysis(self, module)
            if params is not None:
                analysis.seed_params(params)
            analysis.run_block(scope)
            yield from analysis.findings

    @staticmethod
    def _scopes(
        tree: ast.Module,
    ) -> Iterator[Tuple[List[ast.stmt], Optional[AnyFunctionDef]]]:
        """Every straight-line scope: module body, class bodies, functions."""
        yield tree.body, None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield node.body, None
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.body, node
