"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests; emitting it lets the CI pipeline
annotate PR diffs with REP findings instead of burying them in a job
log.  Only the small, stable subset code scanning actually reads is
emitted: the tool driver with its rule metadata, and one ``result``
per finding with a physical location.

The output is deterministic: findings are rendered in their sorted
engine order and the JSON is dumped with sorted keys, so two runs over
the same tree are byte-identical (the same property every other
artifact in this repo has).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .._version import __version__
from .engine import Finding, registered_rules

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_metadata() -> List[Dict[str, object]]:
    rules = []
    for rule_cls in registered_rules():
        rules.append(
            {
                "id": rule_cls.rule_id,
                "shortDescription": {"text": rule_cls.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rules


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "ROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """Render *findings* as a SARIF 2.1.0 document (a JSON string)."""
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-devtools",
                        "informationUri": "https://example.invalid/repro",
                        "version": __version__,
                        "rules": _rule_metadata(),
                    }
                },
                "results": [_result(finding) for finding in findings],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
