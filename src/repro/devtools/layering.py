"""Declared architecture layering for :mod:`repro` (the REP004 DAG).

The package is layered bottom-up: discrete-event kernel and catalog data
at the bottom, the orchestration facade (:mod:`repro.sim.simulation`)
and analysis tooling at the top.  Two subpackages are *split* because
they contain both a bottom and a top layer:

* ``sim`` — the kernel modules (``clock``/``engine``/``events``) are a
  dependency of everything, while the orchestration modules
  (``config``/``simulation``/``facility``) depend on everything; and
* ``workloads`` — ``catalog`` is pure request-profile data imported by
  the network and cluster substrates, while the generator modules sit
  above the network layer they drive.

Each node below lists the *only* other nodes it may import at runtime
(``if TYPE_CHECKING:`` imports are annotation-only and exempt).  The
mapping must stay acyclic; :func:`validate_layering` topologically
sorts it and raises on any cycle, and the tier-1 static-analysis gate
runs it on every test run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

__all__ = [
    "ALLOWED_IMPORTS",
    "SIM_KERNEL_MODULES",
    "node_for",
    "allowed_imports",
    "validate_layering",
]

#: Modules of the ``sim`` package that form the bottom-layer DES kernel.
SIM_KERNEL_MODULES: FrozenSet[str] = frozenset({"clock", "engine", "events"})

_PLAIN_PACKAGES = frozenset(
    {
        "trace",
        "network",
        "cluster",
        "power",
        "metrics",
        "core",
        "detect",
        "analysis",
        "devtools",
        "runner",
        "obs",
        "faults",
    }
)

#: node -> set of nodes it may import (imports within a node are free).
ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "validation": frozenset(),
    "version": frozenset(),
    # The observability layer sits just above the leaves: everything may
    # record into it, so it may depend on nothing but the leaf modules.
    "obs": frozenset({"validation", "version"}),
    "runner": frozenset({"validation", "version", "obs"}),
    "sim.kernel": frozenset({"validation", "obs"}),
    "trace": frozenset({"validation"}),
    "workloads.catalog": frozenset({"validation"}),
    # devtools reads the obs *contract* (declared counter/timer names)
    # to enforce REP011 and stamps the package version into SARIF
    # output; it still may not import the simulator proper.
    "devtools": frozenset({"validation", "version", "obs"}),
    "network": frozenset({"validation", "obs", "sim.kernel", "workloads.catalog"}),
    "cluster": frozenset(
        {"validation", "obs", "sim.kernel", "workloads.catalog", "network"}
    ),
    "power": frozenset(
        {"validation", "obs", "sim.kernel", "workloads.catalog", "network", "cluster"}
    ),
    "metrics": frozenset(
        {"validation", "obs", "workloads.catalog", "network", "cluster", "power"}
    ),
    "workloads": frozenset(
        {"validation", "obs", "sim.kernel", "trace", "workloads.catalog", "network"}
    ),
    "core": frozenset(
        {
            "validation",
            "obs",
            "sim.kernel",
            "workloads.catalog",
            "network",
            "cluster",
            "power",
        }
    ),
    # The online-detection pipeline sits beside core: it reuses core's
    # RPM/DPM actuation half and hooks the same network/cluster taps,
    # but stays below sim so schemes remain objects the facade consumes.
    "detect": frozenset(
        {
            "validation",
            "obs",
            "sim.kernel",
            "workloads.catalog",
            "network",
            "cluster",
            "power",
            "core",
        }
    ),
    "sim": frozenset(
        {
            "validation",
            "version",
            "obs",
            "sim.kernel",
            "trace",
            "workloads.catalog",
            "workloads",
            "network",
            "cluster",
            "power",
            "metrics",
            "core",
        }
    ),
    "analysis": frozenset(
        {
            "validation",
            "version",
            "obs",
            "runner",
            "sim.kernel",
            "trace",
            "workloads.catalog",
            "workloads",
            "network",
            "cluster",
            "power",
            "metrics",
            "core",
            "detect",
            "sim",
        }
    ),
    # The chaos layer drives whole simulations through the runner, so it
    # sits beside analysis at the top of the library stack.
    "faults": frozenset(
        {
            "validation",
            "version",
            "obs",
            "runner",
            "sim.kernel",
            "trace",
            "workloads.catalog",
            "workloads",
            "network",
            "cluster",
            "power",
            "metrics",
            "core",
            "detect",
            "sim",
        }
    ),
}

#: The CLI/entry-point layer may import anything (it is imported by nothing).
_ROOT_NODE = "root"


def node_for(module: str) -> Optional[str]:
    """Map a dotted module path inside :mod:`repro` to its layering node.

    Returns ``None`` for modules outside the package (or unknown
    subpackages), which the layering rule then skips.
    """
    parts = module.split(".")
    if not parts or parts[0] != "repro":
        return None
    if len(parts) == 1:
        return _ROOT_NODE
    sub = parts[1]
    if sub == "_validation":
        return "validation"
    if sub == "_version":
        return "version"
    if sub == "sim":
        if len(parts) > 2 and parts[2] in SIM_KERNEL_MODULES:
            return "sim.kernel"
        return "sim"
    if sub == "workloads":
        if len(parts) > 2 and parts[2] == "catalog":
            return "workloads.catalog"
        return "workloads"
    if sub in _PLAIN_PACKAGES:
        return sub
    # Root-level modules: repro.cli, repro.__main__, future flat modules.
    return _ROOT_NODE


def allowed_imports(node: str) -> Optional[FrozenSet[str]]:
    """Nodes that *node* may import; ``None`` means unconstrained (root)."""
    if node == _ROOT_NODE:
        return None
    return ALLOWED_IMPORTS.get(node, frozenset())


def validate_layering() -> List[str]:
    """Topologically sort :data:`ALLOWED_IMPORTS`; raise on any cycle.

    Returns the node names bottom-up, so the output doubles as a
    human-readable layer listing.
    """
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(node: str, chain: List[str]) -> None:
        mark = state.get(node)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(chain + [node])
            raise ValueError(f"layering cycle: {cycle}")
        state[node] = 0
        for dep in sorted(ALLOWED_IMPORTS.get(node, frozenset())):
            visit(dep, chain + [node])
        state[node] = 1
        order.append(node)

    for name in sorted(ALLOWED_IMPORTS):
        visit(name, [])
    return order
